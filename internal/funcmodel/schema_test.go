package funcmodel

import "testing"

// buildUniv constructs a University-shaped schema by hand (without the
// Daplex parser) to test the model in isolation.
func buildUniv() *Schema {
	fn := func(name, owner string, res FuncResult, set bool) *Function {
		return &Function{Name: name, Owner: owner, Result: res, SetValued: set}
	}
	return &Schema{
		Name: "university",
		NonEntities: []*NonEntity{
			{Name: "rank_type", Kind: NonEntityBase, Type: TypeEnum, Values: []string{"instructor", "professor"}, Length: 10},
		},
		Entities: []*Entity{
			{Name: "person", Functions: []*Function{
				fn("pname", "person", FuncResult{Scalar: TypeString, Length: 30}, false),
				fn("ssn", "person", FuncResult{Scalar: TypeInt}, false),
			}},
			{Name: "course", Functions: []*Function{
				fn("title", "course", FuncResult{Scalar: TypeString, Length: 30}, false),
				fn("taught_by", "course", FuncResult{Entity: "faculty"}, true),
			}},
			{Name: "department", Functions: []*Function{
				fn("dname", "department", FuncResult{Scalar: TypeString, Length: 20}, false),
			}},
		},
		Subtypes: []*Subtype{
			{Name: "student", Supertypes: []string{"person"}, Functions: []*Function{
				fn("advisor", "student", FuncResult{Entity: "faculty"}, false),
				fn("enrollments", "student", FuncResult{Entity: "course"}, true),
			}},
			{Name: "employee", Supertypes: []string{"person"}, Functions: []*Function{
				fn("salary", "employee", FuncResult{Scalar: TypeInt}, false),
			}},
			{Name: "faculty", Supertypes: []string{"employee"}, Functions: []*Function{
				fn("rank", "faculty", FuncResult{NonEntity: "rank_type", Scalar: TypeEnum}, false),
				fn("teaching", "faculty", FuncResult{Entity: "course"}, true),
			}},
		},
		Uniques:  []Unique{{Functions: []string{"title"}, Within: "course"}},
		Overlaps: []Overlap{{Left: []string{"student"}, Right: []string{"faculty"}}},
	}
}

func TestSchemaValidateOK(t *testing.T) {
	if err := buildUniv().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaLookups(t *testing.T) {
	s := buildUniv()
	if _, ok := s.Entity("person"); !ok {
		t.Error("Entity(person) missed")
	}
	if _, ok := s.Entity("student"); ok {
		t.Error("Entity(student) should miss — it is a subtype")
	}
	if _, ok := s.Subtype("faculty"); !ok {
		t.Error("Subtype(faculty) missed")
	}
	if !s.IsType("person") || !s.IsType("faculty") || s.IsType("nothing") {
		t.Error("IsType wrong")
	}
}

func TestSchemaAncestorsAndInheritance(t *testing.T) {
	s := buildUniv()
	anc := s.AncestorChain("faculty")
	if len(anc) != 2 || anc[0] != "employee" || anc[1] != "person" {
		t.Fatalf("ancestors = %v", anc)
	}
	inh := s.InheritedFunctions("faculty")
	want := map[string]bool{"rank": true, "teaching": true, "salary": true, "pname": true, "ssn": true}
	if len(inh) != len(want) {
		t.Fatalf("inherited = %d functions", len(inh))
	}
	for _, f := range inh {
		if !want[f.Name] {
			t.Errorf("unexpected inherited function %q", f.Name)
		}
	}
}

func TestSchemaTerminalTypes(t *testing.T) {
	s := buildUniv()
	cases := map[string]bool{
		"person":     false, // supertype of student/employee
		"employee":   false, // supertype of faculty
		"student":    true,
		"faculty":    true,
		"course":     true,
		"department": true,
	}
	for name, want := range cases {
		if got := s.IsTerminal(name); got != want {
			t.Errorf("IsTerminal(%s) = %v, want %v", name, got, want)
		}
	}
}

func TestSchemaSubtypesOf(t *testing.T) {
	s := buildUniv()
	subs := s.SubtypesOf("person")
	if len(subs) != 2 || subs[0] != "student" || subs[1] != "employee" {
		t.Errorf("SubtypesOf(person) = %v", subs)
	}
}

func TestSchemaFunctionHome(t *testing.T) {
	s := buildUniv()
	owner, f, ok := s.FunctionHome("advisor")
	if !ok || owner != "student" || f.Result.Entity != "faculty" {
		t.Errorf("FunctionHome(advisor) = %q,%v,%v", owner, f, ok)
	}
	if _, _, ok := s.FunctionHome("nosuch"); ok {
		t.Error("phantom function found")
	}
}

func TestSchemaValidateCatches(t *testing.T) {
	mutate := map[string]func(*Schema){
		"empty name":      func(s *Schema) { s.Name = "" },
		"dup names":       func(s *Schema) { s.Entities = append(s.Entities, &Entity{Name: "person"}) },
		"no supertype":    func(s *Schema) { s.Subtypes[0].Supertypes = nil },
		"bad supertype":   func(s *Schema) { s.Subtypes[0].Supertypes = []string{"ghost"} },
		"bad result":      func(s *Schema) { s.Entities[0].Functions[0].Result = FuncResult{Entity: "ghost"} },
		"bad nonentity":   func(s *Schema) { s.Subtypes[2].Functions[0].Result = FuncResult{NonEntity: "ghost"} },
		"unique unknown":  func(s *Schema) { s.Uniques[0].Within = "ghost" },
		"unique no func":  func(s *Schema) { s.Uniques[0].Functions = []string{"ghost"} },
		"overlap non-sub": func(s *Schema) { s.Overlaps[0].Left = []string{"person"} },
		"overlap empty":   func(s *Schema) { s.Overlaps[0].Left = nil },
		"dup function": func(s *Schema) {
			s.Entities[2].Functions = append(s.Entities[2].Functions,
				&Function{Name: "pname", Owner: "department", Result: FuncResult{Scalar: TypeString}})
		},
	}
	for name, f := range mutate {
		s := buildUniv()
		f(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken schema", name)
		}
	}
}

func TestScalarTypeString(t *testing.T) {
	if TypeInt.String() != "INTEGER" || TypeEnum.String() != "ENUMERATION" {
		t.Error("ScalarType.String wrong")
	}
}

func TestSchemaTypeNamesSorted(t *testing.T) {
	s := buildUniv()
	names := s.TypeNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("TypeNames not sorted: %v", names)
		}
	}
	if len(names) != 6 {
		t.Errorf("TypeNames = %v", names)
	}
}
