// Package funcmodel implements the functional data model of Sibley,
// Kershberg and Shipman as used by the MLDS Daplex language interface.
//
// A functional schema is a collection of entity types, entity subtypes,
// non-entity types, functions applied to the entity types and subtypes, and
// the uniqueness and overlap constraints over them. The structures mirror
// the thesis's shared data structures (fun_dbid_node, ent_node,
// gen_sub_node, ent_non_node, sub_non_node, der_non_node, function_node,
// overlap_node).
package funcmodel

import (
	"fmt"
	"sort"
	"strings"
)

// ScalarType classifies non-entity values, mirroring the single-character
// type flags of the thesis data structures.
type ScalarType byte

// Scalar type flags.
const (
	TypeInt    ScalarType = 'i'
	TypeFloat  ScalarType = 'f'
	TypeString ScalarType = 's'
	TypeBool   ScalarType = 'b'
	TypeEnum   ScalarType = 'n' // enumeration
)

// String returns the type's Daplex spelling.
func (t ScalarType) String() string {
	switch t {
	case TypeInt:
		return "INTEGER"
	case TypeFloat:
		return "FLOAT"
	case TypeString:
		return "STRING"
	case TypeBool:
		return "BOOLEAN"
	case TypeEnum:
		return "ENUMERATION"
	default:
		return fmt.Sprintf("scalar(%c)", byte(t))
	}
}

// NonEntityKind distinguishes the three non-entity declaration families the
// thesis tracks separately (base types, non-entity subtypes, derived types).
type NonEntityKind int

// Non-entity kinds.
const (
	NonEntityBase NonEntityKind = iota
	NonEntitySub
	NonEntityDerived
)

// NonEntity is a named non-entity type: a string, scalar, enumeration or
// constant declaration (ent_non_node / sub_non_node / der_non_node).
type NonEntity struct {
	Name     string
	Kind     NonEntityKind
	Type     ScalarType
	Length   int      // maximum value length (strings, enumerations)
	Values   []string // enumeration literals, in declaration order
	HasRange bool     // a range of values was declared
	Lo, Hi   float64  // numeric range bounds when HasRange
	Constant bool     // numeric constant declaration
	ConstVal float64
	Base     string // for sub/derived kinds: the underlying type name
}

// FuncResult describes what a function returns.
type FuncResult struct {
	Scalar    ScalarType // valid when Entity == "" and NonEntity == ""
	Length    int        // string length bound, 0 = unbounded
	Entity    string     // entity or subtype name for entity-valued functions
	NonEntity string     // named non-entity type for typed scalar functions
}

// IsEntity reports whether the function returns entities.
func (r FuncResult) IsEntity() bool { return r.Entity != "" }

// Function is one function applied to an entity type or subtype
// (function_node). SetValued marks multi-valued functions (fn_set).
type Function struct {
	Name      string
	Result    FuncResult
	SetValued bool
	Unique    bool // participates in a uniqueness constraint (fn_unique)
	Owner     string
}

// IsScalar reports whether the function returns scalar values (including
// scalar multi-valued functions).
func (f *Function) IsScalar() bool { return !f.Result.IsEntity() }

// Entity is an entity type (ent_node) with its associated functions.
type Entity struct {
	Name      string
	Functions []*Function
}

// Subtype is an entity subtype (gen_sub_node): its supertypes establish ISA
// relationships with value inheritance.
type Subtype struct {
	Name       string
	Supertypes []string // entity types and subtypes, one or more
	Functions  []*Function
}

// Unique is a uniqueness constraint: UNIQUE f1,...,fn WITHIN type.
type Unique struct {
	Functions []string
	Within    string
}

// Overlap is an overlap constraint: OVERLAP a,... WITH b,... (overlap_node).
type Overlap struct {
	Left  []string
	Right []string
}

// Schema is a complete functional database schema (fun_dbid_node).
type Schema struct {
	Name        string
	NonEntities []*NonEntity
	Entities    []*Entity
	Subtypes    []*Subtype
	Uniques     []Unique
	Overlaps    []Overlap
}

// Entity returns the named entity type.
func (s *Schema) Entity(name string) (*Entity, bool) {
	for _, e := range s.Entities {
		if e.Name == name {
			return e, true
		}
	}
	return nil, false
}

// Subtype returns the named entity subtype.
func (s *Schema) Subtype(name string) (*Subtype, bool) {
	for _, st := range s.Subtypes {
		if st.Name == name {
			return st, true
		}
	}
	return nil, false
}

// NonEntity returns the named non-entity type.
func (s *Schema) NonEntity(name string) (*NonEntity, bool) {
	for _, ne := range s.NonEntities {
		if ne.Name == name {
			return ne, true
		}
	}
	return nil, false
}

// IsType reports whether name is any entity type or subtype.
func (s *Schema) IsType(name string) bool {
	if _, ok := s.Entity(name); ok {
		return true
	}
	_, ok := s.Subtype(name)
	return ok
}

// FunctionsOf returns the functions declared directly on the named entity
// type or subtype.
func (s *Schema) FunctionsOf(name string) []*Function {
	if e, ok := s.Entity(name); ok {
		return e.Functions
	}
	if st, ok := s.Subtype(name); ok {
		return st.Functions
	}
	return nil
}

// SupertypesOf returns the declared supertypes of a subtype, or nil for an
// entity type.
func (s *Schema) SupertypesOf(name string) []string {
	if st, ok := s.Subtype(name); ok {
		return st.Supertypes
	}
	return nil
}

// AncestorChain returns every (transitive) supertype of the named type in
// breadth-first order, excluding the type itself.
func (s *Schema) AncestorChain(name string) []string {
	var out []string
	seen := map[string]bool{name: true}
	queue := append([]string(nil), s.SupertypesOf(name)...)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
		queue = append(queue, s.SupertypesOf(n)...)
	}
	return out
}

// InheritedFunctions returns the functions visible on a type: its own plus
// every ancestor's, own functions first. Subtyping implies value
// inheritance.
func (s *Schema) InheritedFunctions(name string) []*Function {
	out := append([]*Function(nil), s.FunctionsOf(name)...)
	for _, anc := range s.AncestorChain(name) {
		out = append(out, s.FunctionsOf(anc)...)
	}
	return out
}

// SubtypesOf returns the names of subtypes that list name as a direct
// supertype, in declaration order.
func (s *Schema) SubtypesOf(name string) []string {
	var out []string
	for _, st := range s.Subtypes {
		for _, sup := range st.Supertypes {
			if sup == name {
				out = append(out, st.Name)
				break
			}
		}
	}
	return out
}

// IsTerminal reports whether the named type is a terminal type: not a
// supertype to any entity subtype (en_terminal / gsn_terminal).
func (s *Schema) IsTerminal(name string) bool { return len(s.SubtypesOf(name)) == 0 }

// FindFunction locates a function by name on the named type, searching
// inherited functions too.
func (s *Schema) FindFunction(typeName, funcName string) (*Function, bool) {
	for _, f := range s.InheritedFunctions(typeName) {
		if f.Name == funcName {
			return f, true
		}
	}
	return nil, false
}

// FunctionHome returns the entity type or subtype that directly declares the
// named function, searched across the whole schema. Used by the DML
// translation, which must know whether a Daplex function belongs to the
// owner or the member record type of a transformed set.
func (s *Schema) FunctionHome(funcName string) (string, *Function, bool) {
	for _, e := range s.Entities {
		for _, f := range e.Functions {
			if f.Name == funcName {
				return e.Name, f, true
			}
		}
	}
	for _, st := range s.Subtypes {
		for _, f := range st.Functions {
			if f.Name == funcName {
				return st.Name, f, true
			}
		}
	}
	return "", nil, false
}

// Validate checks referential integrity of the schema: supertype,
// function-result, uniqueness and overlap references must all resolve, and
// names must be unique across entities, subtypes and non-entity types.
func (s *Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("funcmodel: schema has no name")
	}
	names := make(map[string]string)
	declare := func(name, what string) error {
		if name == "" {
			return fmt.Errorf("funcmodel: %s with empty name", what)
		}
		if prev, dup := names[name]; dup {
			return fmt.Errorf("funcmodel: name %q declared as both %s and %s", name, prev, what)
		}
		names[name] = what
		return nil
	}
	for _, ne := range s.NonEntities {
		if err := declare(ne.Name, "non-entity type"); err != nil {
			return err
		}
	}
	for _, e := range s.Entities {
		if err := declare(e.Name, "entity type"); err != nil {
			return err
		}
	}
	for _, st := range s.Subtypes {
		if err := declare(st.Name, "entity subtype"); err != nil {
			return err
		}
	}
	for _, st := range s.Subtypes {
		if len(st.Supertypes) == 0 {
			return fmt.Errorf("funcmodel: subtype %q has no supertype", st.Name)
		}
		for _, sup := range st.Supertypes {
			if !s.IsType(sup) {
				return fmt.Errorf("funcmodel: subtype %q names unknown supertype %q", st.Name, sup)
			}
		}
		if cyc := s.findCycle(st.Name); cyc != "" {
			return fmt.Errorf("funcmodel: subtype hierarchy cycle through %q", cyc)
		}
	}
	funcNames := make(map[string]string)
	checkFns := func(owner string, fns []*Function) error {
		for _, f := range fns {
			if f.Name == "" {
				return fmt.Errorf("funcmodel: %q declares a function with no name", owner)
			}
			if prev, dup := funcNames[f.Name]; dup {
				return fmt.Errorf("funcmodel: function %q declared on both %q and %q (function names are schema-global)", f.Name, prev, owner)
			}
			if what, clash := names[f.Name]; clash {
				return fmt.Errorf("funcmodel: function %q on %q collides with the %s of the same name", f.Name, owner, what)
			}
			funcNames[f.Name] = owner
			if f.Result.Entity != "" && !s.IsType(f.Result.Entity) {
				return fmt.Errorf("funcmodel: function %q on %q returns unknown type %q", f.Name, owner, f.Result.Entity)
			}
			if f.Result.NonEntity != "" {
				if _, ok := s.NonEntity(f.Result.NonEntity); !ok {
					return fmt.Errorf("funcmodel: function %q on %q uses unknown non-entity type %q", f.Name, owner, f.Result.NonEntity)
				}
			}
		}
		return nil
	}
	for _, e := range s.Entities {
		if err := checkFns(e.Name, e.Functions); err != nil {
			return err
		}
	}
	for _, st := range s.Subtypes {
		if err := checkFns(st.Name, st.Functions); err != nil {
			return err
		}
	}
	for _, u := range s.Uniques {
		if !s.IsType(u.Within) {
			return fmt.Errorf("funcmodel: UNIQUE WITHIN unknown type %q", u.Within)
		}
		for _, fn := range u.Functions {
			f, ok := s.FindFunction(u.Within, fn)
			if !ok {
				return fmt.Errorf("funcmodel: UNIQUE names unknown function %q of %q", fn, u.Within)
			}
			if f.Result.IsEntity() {
				return fmt.Errorf("funcmodel: UNIQUE function %q of %q must be scalar", fn, u.Within)
			}
		}
	}
	for _, o := range s.Overlaps {
		for _, side := range [][]string{o.Left, o.Right} {
			if len(side) == 0 {
				return fmt.Errorf("funcmodel: OVERLAP with empty side")
			}
			for _, n := range side {
				if _, ok := s.Subtype(n); !ok {
					return fmt.Errorf("funcmodel: OVERLAP names %q, which is not an entity subtype", n)
				}
			}
		}
	}
	return nil
}

// findCycle returns the name of a type on a supertype cycle reachable from
// start, or "".
func (s *Schema) findCycle(start string) string {
	seen := map[string]bool{}
	var walk func(n string, path map[string]bool) string
	walk = func(n string, path map[string]bool) string {
		if path[n] {
			return n
		}
		if seen[n] {
			return ""
		}
		seen[n] = true
		path[n] = true
		defer delete(path, n)
		for _, sup := range s.SupertypesOf(n) {
			if c := walk(sup, path); c != "" {
				return c
			}
		}
		return ""
	}
	return walk(start, map[string]bool{})
}

// OverlapAllowed reports whether membership in both terminal subtypes a and
// b is permitted by the schema's overlap constraints. Functional subtypes
// are disjoint unless an overlap constraint says otherwise.
func (s *Schema) OverlapAllowed(a, b string) bool {
	if a == b {
		return true
	}
	in := func(set []string, n string) bool {
		for _, x := range set {
			if x == n {
				return true
			}
		}
		return false
	}
	for _, o := range s.Overlaps {
		if (in(o.Left, a) && in(o.Right, b)) || (in(o.Left, b) && in(o.Right, a)) {
			return true
		}
	}
	return false
}

// TypeNames returns every entity type and subtype name, sorted.
func (s *Schema) TypeNames() []string {
	out := make([]string, 0, len(s.Entities)+len(s.Subtypes))
	for _, e := range s.Entities {
		out = append(out, e.Name)
	}
	for _, st := range s.Subtypes {
		out = append(out, st.Name)
	}
	sort.Strings(out)
	return out
}

// String renders a compact summary of the schema.
func (s *Schema) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "functional schema %s: %d entities, %d subtypes, %d non-entity types, %d uniqueness, %d overlap",
		s.Name, len(s.Entities), len(s.Subtypes), len(s.NonEntities), len(s.Uniques), len(s.Overlaps))
	return b.String()
}
