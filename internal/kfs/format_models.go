package kfs

import (
	"fmt"
	"sort"
	"strings"

	"mlds/internal/dapkms"
	"mlds/internal/hiekms"
	"mlds/internal/relkms"
)

// FormatRowsAuto renders Daplex rows with the print list derived from the
// rows themselves: every function name that appears, in sorted order. Used
// when the caller has no parsed PRINT clause at hand (the unified session
// API and the REPL).
func FormatRowsAuto(rows []dapkms.Row) string {
	seen := map[string]bool{}
	var fns []string
	for _, r := range rows {
		for fn := range r.Values {
			if !seen[fn] {
				seen[fn] = true
				fns = append(fns, fn)
			}
		}
	}
	sort.Strings(fns)
	return FormatRows(rows, fns)
}

// FormatResultSet renders a SQL result: an aligned column table for SELECT,
// or the affected-row count for the mutating statements.
func FormatResultSet(rs *relkms.ResultSet) string {
	if rs == nil {
		return "ok"
	}
	if len(rs.Columns) == 0 {
		return fmt.Sprintf("%d row(s) affected", rs.Count)
	}
	table := make([][]string, 0, len(rs.Rows)+1)
	table = append(table, rs.Columns)
	for _, row := range rs.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		table = append(table, cells)
	}
	out := alignTable(table)
	return out + fmt.Sprintf("\n(%d row(s))", len(rs.Rows))
}

// FormatDLI renders a DL/I call outcome: the status code, the segment made
// current, and any retrieved field values in sorted order.
func FormatDLI(out *hiekms.Outcome) string {
	if out == nil {
		return "ok"
	}
	var b strings.Builder
	status := out.Status
	if status == "" {
		status = "ok"
	}
	b.WriteString(status)
	if out.Segment != "" {
		fmt.Fprintf(&b, " %s (key %d)", out.Segment, out.Key)
	}
	if len(out.Values) > 0 {
		names := make([]string, 0, len(out.Values))
		for n := range out.Values {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "\n    %-16s = %s", n, out.Values[n])
		}
	}
	return b.String()
}
