package kfs

import (
	"strings"
	"testing"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/dapkms"
	"mlds/internal/kdb"
	"mlds/internal/kms"
	"mlds/internal/netmodel"
)

func testSchema() *netmodel.Schema {
	return &netmodel.Schema{
		Name: "t",
		Records: []*netmodel.RecordType{
			{Name: "course", Attributes: []*netmodel.Attribute{
				{Name: "title", Type: netmodel.AttrString, DupFlag: true},
				{Name: "credits", Type: netmodel.AttrInt, DupFlag: true},
			}},
		},
	}
}

func TestFormatOutcomeStates(t *testing.T) {
	s := testSchema()
	eos := &kms.Outcome{Stmt: "FIND NEXT course WITHIN s", EndOfSet: true}
	if got := FormatOutcome(eos, s); !strings.Contains(got, "END-OF-SET") {
		t.Errorf("eos = %q", got)
	}
	found := &kms.Outcome{Stmt: "FIND ANY course USING title IN course", Found: true, Record: "course", Key: 7}
	if got := FormatOutcome(found, s); !strings.Contains(got, "current course (key 7)") {
		t.Errorf("found = %q", got)
	}
	plain := &kms.Outcome{Stmt: "MOVE 'x' TO title IN course"}
	if got := FormatOutcome(plain, s); !strings.Contains(got, "ok") {
		t.Errorf("plain = %q", got)
	}
}

func TestFormatRecordValuesOrder(t *testing.T) {
	s := testSchema()
	vals := map[string]abdm.Value{
		"credits": abdm.Int(4),
		"title":   abdm.String("DB"),
		"course":  abdm.Int(9), // key attr: not in schema's item list
	}
	got := FormatRecordValues("course", vals, s)
	ti := strings.Index(got, "title")
	ci := strings.Index(got, "credits")
	ki := strings.Index(got, "course")
	if !(ti < ci && ci < ki) {
		t.Errorf("declared order not respected:\n%s", got)
	}
}

func TestFormatRows(t *testing.T) {
	rows := []dapkms.Row{
		{Key: 1, Values: map[string][]abdm.Value{
			"pname":       {abdm.String("Ann")},
			"enrollments": {abdm.Int(4), abdm.Int(5)},
		}},
		{Key: 2, Values: map[string][]abdm.Value{
			"pname": {abdm.String("Bob")},
		}},
	}
	got := FormatRows(rows, []string{"pname", "enrollments"})
	for _, want := range []string{"key", "pname", "enrollments", "'Ann'", "4, 5", "'Bob'"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
	if FormatRows(nil, []string{"x"}) != "(no entities)" {
		t.Error("empty rows format wrong")
	}
}

func TestFormatResultRecords(t *testing.T) {
	rec := abdm.NewRecord("course", abdm.Keyword{Attr: "title", Val: abdm.String("DB")})
	res := &kdb.Result{Op: abdl.Retrieve, Records: []kdb.StoredRecord{{ID: 3, Rec: rec}}}
	got := FormatResult(res)
	if !strings.Contains(got, "3: (<FILE, 'course'>") {
		t.Errorf("records = %q", got)
	}
}

func TestFormatResultCount(t *testing.T) {
	res := &kdb.Result{Op: abdl.Delete, Count: 5}
	if got := FormatResult(res); !strings.Contains(got, "5 record(s) affected") {
		t.Errorf("count = %q", got)
	}
}

func TestFormatResultGroups(t *testing.T) {
	res := &kdb.Result{
		Op: abdl.Retrieve,
		Groups: []kdb.Group{{
			By: abdm.String("CS"),
			Aggs: []kdb.AggValue{{
				Item: abdl.TargetItem{Agg: abdl.AggCount, Attr: "title"},
				Val:  abdm.Int(7),
			}},
		}},
	}
	got := FormatResult(res)
	if !strings.Contains(got, "BY 'CS': COUNT(title)=7") {
		t.Errorf("groups = %q", got)
	}
}
