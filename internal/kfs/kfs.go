// Package kfs implements the kernel formatting system: it reformats kernel
// results into the user's data model for display — network record layouts
// for the CODASYL-DML interface, entity tables for the Daplex interface, and
// raw keyword lists for direct ABDL access.
package kfs

import (
	"fmt"
	"sort"
	"strings"

	"mlds/internal/abdm"
	"mlds/internal/dapkms"
	"mlds/internal/kdb"
	"mlds/internal/kms"
	"mlds/internal/netmodel"
)

// FormatOutcome renders a DML statement outcome for the user: found/end-of-
// set status plus any GET values laid out in the record type's item order.
func FormatOutcome(out *kms.Outcome, schema *netmodel.Schema) string {
	var b strings.Builder
	switch {
	case out.EndOfSet:
		fmt.Fprintf(&b, "%s: END-OF-SET", out.Stmt)
	case out.Found:
		fmt.Fprintf(&b, "%s: current %s (key %d)", out.Stmt, out.Record, out.Key)
	default:
		fmt.Fprintf(&b, "%s: ok", out.Stmt)
	}
	if len(out.Values) > 0 {
		b.WriteString("\n")
		b.WriteString(FormatRecordValues(out.Record, out.Values, schema))
	}
	return b.String()
}

// FormatRecordValues lays the item values out in the record type's declared
// order, one "item = value" per line; items the schema does not declare
// (set attributes, the database key) follow in sorted order.
func FormatRecordValues(record string, values map[string]abdm.Value, schema *netmodel.Schema) string {
	var lines []string
	used := make(map[string]bool)
	if rec, ok := schema.Record(record); ok {
		for _, a := range rec.Attributes {
			if v, present := values[a.Name]; present {
				lines = append(lines, fmt.Sprintf("    %-16s = %s", a.Name, v))
				used[a.Name] = true
			}
		}
	}
	var rest []string
	for name := range values {
		if !used[name] {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	for _, name := range rest {
		lines = append(lines, fmt.Sprintf("    %-16s = %s", name, values[name]))
	}
	return strings.Join(lines, "\n")
}

// FormatRows renders Daplex FOR EACH results as an aligned table, one row
// per entity, multi-valued functions joined with commas.
func FormatRows(rows []dapkms.Row, print []string) string {
	if len(rows) == 0 {
		return "(no entities)"
	}
	headers := append([]string{"key"}, print...)
	table := make([][]string, 0, len(rows)+1)
	table = append(table, headers)
	for _, r := range rows {
		row := []string{fmt.Sprint(r.Key)}
		for _, fn := range print {
			var parts []string
			for _, v := range r.Values[fn] {
				parts = append(parts, v.String())
			}
			row = append(row, strings.Join(parts, ", "))
		}
		table = append(table, row)
	}
	return alignTable(table)
}

// FormatResult renders a kernel result: retrieved records as keyword lists,
// groups with their aggregates, or the affected-record count.
func FormatResult(res *kdb.Result) string {
	var b strings.Builder
	if len(res.Groups) > 0 {
		for i, g := range res.Groups {
			if i > 0 {
				b.WriteString("\n")
			}
			fmt.Fprintf(&b, "BY %s:", g.By)
			for _, a := range g.Aggs {
				fmt.Fprintf(&b, " %s=%s", a.Item, a.Val)
			}
			if len(g.Aggs) == 0 {
				fmt.Fprintf(&b, " %d record(s)", len(g.Recs))
			}
		}
		return b.String()
	}
	if len(res.Records) > 0 {
		for i, sr := range res.Records {
			if i > 0 {
				b.WriteString("\n")
			}
			fmt.Fprintf(&b, "%d: %s", sr.ID, sr.Rec)
		}
		return b.String()
	}
	fmt.Fprintf(&b, "%s: %d record(s) affected", res.Op, res.Count)
	return b.String()
}

// alignTable pads columns so every row lines up.
func alignTable(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for n, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
		if n == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteString("\n")
		}
	}
	return strings.TrimRight(b.String(), "\n")
}
