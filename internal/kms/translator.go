// Package kms implements the kernel mapping system of the CODASYL-DML
// language interface: it validates each DML statement and maps it into one
// or more ABDL requests executed through the kernel controller, maintaining
// the Currency Indicator Table along the way.
//
// The translator works against either target:
//
//   - an AB(network) database — a natively-defined network schema, where
//     every set's membership attribute lives in the member file; or
//   - an AB(functional) database — a functional schema transformed by
//     xform.FunToNet, where sets representing ISA relationships share keys
//     with their owners and sets representing Daplex functions place their
//     membership attribute by function direction (the thesis's Chapter VI
//     modifications).
package kms

import (
	"context"
	"errors"
	"fmt"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/codasyl"
	"mlds/internal/currency"
	"mlds/internal/funcmodel"
	"mlds/internal/kc"
	"mlds/internal/netmodel"
	"mlds/internal/xform"
)

// Abort conditions. They correspond to the thesis's translation rules; the
// session surfaces them to the user without terminating.
var (
	ErrNoCurrentRunUnit = errors.New("kms: no current of run-unit")
	ErrNoSetOccurrence  = errors.New("kms: no current set occurrence established")
	ErrNoBuffer         = errors.New("kms: set occurrence not yet retrieved (issue a FIND FIRST/LAST)")
	ErrNotMember        = errors.New("kms: record type is not a member of the set")
	ErrAutomaticSet     = errors.New("kms: set has automatic insertion; CONNECT/DISCONNECT not allowed")
	ErrNotConnected     = errors.New("kms: record is not connected to the set occurrence")
	ErrDuplicate        = errors.New("kms: DUPLICATES ARE NOT ALLOWED violation")
	ErrOverlap          = errors.New("kms: overlap constraint violation")
	ErrEraseOwner       = errors.New("kms: ERASE aborted: record owns a non-empty set occurrence")
	ErrEraseReferenced  = errors.New("kms: ERASE aborted: record is referenced by a database function")
	ErrEraseAll         = errors.New("kms: ERASE ALL is not translated: the CODASYL and Daplex constraints clash; use repeated ERASE statements")
)

// Outcome reports what one DML statement did.
type Outcome struct {
	Stmt     string                // the statement, as parsed
	EndOfSet bool                  // a FIND ran off the end of its set
	Found    bool                  // a FIND made a record current
	Record   string                // record type involved
	Key      currency.Key          // database key made current (FIND/STORE)
	Values   map[string]abdm.Value // GET results
	Requests []string              // ABDL requests issued, in order
}

// Translator is one user's CODASYL-DML session state against one database.
type Translator struct {
	net     *netmodel.Schema
	ab      *xform.ABSchema
	mapping *xform.Mapping    // nil for native network databases
	fun     *funcmodel.Schema // nil for native network databases
	kc      *kc.Controller

	cit        *currency.CIT
	uwa        *currency.WorkArea
	currentRec *abdm.Record    // cached content of the run-unit current
	reqCtx     context.Context // set by ExecCtx for the statement's duration
}

// NewNetwork builds a translator for a natively-defined network database.
func NewNetwork(net *netmodel.Schema, ab *xform.ABSchema, ctrl *kc.Controller) *Translator {
	return &Translator{
		net: net, ab: ab, kc: ctrl,
		cit: currency.NewCIT(), uwa: currency.NewWorkArea(),
	}
}

// NewFunctional builds a translator for a functional database accessed
// through its transformed network schema.
func NewFunctional(m *xform.Mapping, ab *xform.ABSchema, ctrl *kc.Controller) *Translator {
	return &Translator{
		net: m.Net, ab: ab, mapping: m, fun: m.Fun, kc: ctrl,
		cit: currency.NewCIT(), uwa: currency.NewWorkArea(),
	}
}

// CIT exposes the session's currency indicator table (read-mostly; tests and
// the formatting subsystem use it).
func (t *Translator) CIT() *currency.CIT { return t.cit }

// UWA exposes the session's user work area.
func (t *Translator) UWA() *currency.WorkArea { return t.uwa }

// Schema returns the (possibly transformed) network schema the session
// addresses.
func (t *Translator) Schema() *netmodel.Schema { return t.net }

// Exec validates and executes one DML statement.
func (t *Translator) Exec(st codasyl.Stmt) (*Outcome, error) {
	t.kc.StartTrace()
	defer t.kc.StopTrace()
	out := &Outcome{Stmt: st.String()}
	var err error
	switch v := st.(type) {
	case *codasyl.Move:
		err = t.execMove(v, out)
	case *codasyl.Find:
		err = t.execFind(v, out)
	case *codasyl.Get:
		err = t.execGet(v, out)
	case *codasyl.Store:
		err = t.execStore(v, out)
	case *codasyl.Connect:
		err = t.execConnect(v, out)
	case *codasyl.Disconnect:
		err = t.execDisconnect(v, out)
	case *codasyl.Modify:
		err = t.execModify(v, out)
	case *codasyl.Erase:
		err = t.execErase(v, out)
	default:
		err = fmt.Errorf("kms: unsupported statement %T", st)
	}
	out.Requests = t.kc.Trace()
	if err != nil {
		return out, err
	}
	return out, nil
}

// ExecScript runs a parsed transaction script. A PERFORM UNTIL END-OF-SET
// loop repeats its body until the body's *final* statement reports
// end-of-set — the conventional shape places the iterating FIND NEXT last,
// as the thesis's Chapter VI example does. End-of-set from earlier
// statements is recorded in the outcomes but does not terminate the loop
// (the host program inspects the status, as a COBOL run-unit would). It
// returns the outcome of every executed statement in order.
func (t *Translator) ExecScript(script codasyl.Script) ([]*Outcome, error) {
	var outs []*Outcome
	var run func(nodes []codasyl.Node) (lastEnd bool, err error)
	run = func(nodes []codasyl.Node) (bool, error) {
		lastEnd := false
		for _, n := range nodes {
			switch v := n.(type) {
			case codasyl.StmtNode:
				out, err := t.Exec(v.Stmt)
				if out != nil {
					outs = append(outs, out)
				}
				if err != nil {
					return false, fmt.Errorf("%s: %w", v.Stmt, err)
				}
				lastEnd = out.EndOfSet
			case codasyl.Loop:
				for i := 0; ; i++ {
					if i > maxLoopIterations {
						return false, fmt.Errorf("kms: PERFORM loop exceeded %d iterations", maxLoopIterations)
					}
					end, err := run(v.Body)
					if err != nil {
						return false, err
					}
					if end {
						break
					}
				}
				lastEnd = false
			}
		}
		return lastEnd, nil
	}
	_, err := run(script)
	return outs, err
}

// maxLoopIterations bounds PERFORM loops against scripts that never reach
// end-of-set.
const maxLoopIterations = 1_000_000

func (t *Translator) execMove(m *codasyl.Move, out *Outcome) error {
	rec, ok := t.net.Record(m.Record)
	if !ok {
		return fmt.Errorf("kms: MOVE names unknown record type %q", m.Record)
	}
	if _, ok := rec.Attribute(m.Item); !ok {
		return fmt.Errorf("kms: MOVE names unknown item %q of %q", m.Item, m.Record)
	}
	val, err := coerceValue(m.Value, t.attrKind(m.Item))
	if err != nil {
		return fmt.Errorf("kms: MOVE %s: %w", m.Item, err)
	}
	t.uwa.Set(m.Record, m.Item, val)
	out.Record = m.Record
	return nil
}

// attrKind reports the kernel kind of an attribute.
func (t *Translator) attrKind(attr string) abdm.Kind {
	k, _ := t.ab.Dir.AttrKind(attr)
	return k
}

// coerceValue converts a literal to the attribute's declared kind where the
// conversion is exact (int↔float); anything else must match already.
func coerceValue(v abdm.Value, want abdm.Kind) (abdm.Value, error) {
	if v.IsNull() || v.Kind() == want {
		return v, nil
	}
	switch {
	case v.Kind() == abdm.KindInt && want == abdm.KindFloat:
		return abdm.Float(float64(v.AsInt())), nil
	case v.Kind() == abdm.KindFloat && want == abdm.KindInt:
		f := v.AsFloat()
		if f == float64(int64(f)) {
			return abdm.Int(int64(f)), nil
		}
		return abdm.Value{}, fmt.Errorf("value %v not an integer", v)
	default:
		return abdm.Value{}, fmt.Errorf("value %v is %v, attribute wants %v", v, v.Kind(), want)
	}
}

// --- shared request helpers ---------------------------------------------

// filePred builds the (FILE = f) predicate.
func filePred(f string) abdm.Predicate {
	return abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String(f)}
}

// keyPred builds the (keyattr = key) predicate for a file.
func (t *Translator) keyPred(file string, key currency.Key) abdm.Predicate {
	return abdm.Predicate{Attr: t.ab.KeyOf(file), Op: abdm.OpEq, Val: abdm.Int(key)}
}

// retrieveAll runs a RETRIEVE of all attributes and returns the records.
func (t *Translator) retrieveAll(q abdm.Query) ([]*abdm.Record, error) {
	res, err := t.kcExec(abdl.NewRetrieve(q, abdl.AllAttrs))
	if err != nil {
		return nil, err
	}
	out := make([]*abdm.Record, len(res.Records))
	for i, sr := range res.Records {
		out[i] = sr.Rec
	}
	return out, nil
}

// retrieveByKey fetches every kernel record (copy) of the entity with the
// key in the file.
func (t *Translator) retrieveByKey(file string, key currency.Key) ([]*abdm.Record, error) {
	return t.retrieveAll(abdm.And(filePred(file), t.keyPred(file, key)))
}

// keyOf extracts a record's database key given its file.
func (t *Translator) keyOf(file string, rec *abdm.Record) (currency.Key, bool) {
	v, ok := rec.Get(t.ab.KeyOf(file))
	if !ok || v.Kind() != abdm.KindInt {
		return 0, false
	}
	return v.AsInt(), true
}

// dedupeByKey keeps the first kernel record per database key, preserving
// order. Multi-valued representations store several copies per entity.
func (t *Translator) dedupeByKey(file string, recs []*abdm.Record) []*abdm.Record {
	seen := make(map[currency.Key]bool)
	var out []*abdm.Record
	for _, r := range recs {
		k, ok := t.keyOf(file, r)
		if !ok {
			out = append(out, r)
			continue
		}
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

// setInfo returns the kernel placement and (for functional targets) the
// transformation provenance of a set.
func (t *Translator) setInfo(set string) (*netmodel.SetType, xform.ABSet, error) {
	st, ok := t.net.Set(set)
	if !ok {
		return nil, xform.ABSet{}, fmt.Errorf("kms: unknown set type %q", set)
	}
	aset, ok := t.ab.Sets[set]
	if !ok {
		return nil, xform.ABSet{}, fmt.Errorf("kms: set %q has no kernel placement", set)
	}
	return st, aset, nil
}

// members retrieves every member record of the set occurrence owned by
// ownerKey, deduplicated, in key order. The retrieval strategy depends on
// where the set's membership attribute lives.
func (t *Translator) members(st *netmodel.SetType, aset xform.ABSet, ownerKey currency.Key) ([]*abdm.Record, error) {
	switch aset.Place {
	case xform.PlaceNone:
		// SYSTEM-owned singular set: every record of the member file.
		recs, err := t.retrieveAll(abdm.And(filePred(st.Member)))
		if err != nil {
			return nil, err
		}
		return t.dedupeByKey(st.Member, recs), nil
	case xform.PlaceSharedKey:
		// ISA: the member record shares the owner's key.
		recs, err := t.retrieveAll(abdm.And(filePred(st.Member), t.keyPred(st.Member, ownerKey)))
		if err != nil {
			return nil, err
		}
		return t.dedupeByKey(st.Member, recs), nil
	case xform.PlaceMemberAttr, xform.PlaceLinkAttr:
		// Membership attribute in the member (or LINK) file holds the owner key.
		recs, err := t.retrieveAll(abdm.And(
			filePred(aset.File),
			abdm.Predicate{Attr: aset.Attr, Op: abdm.OpEq, Val: abdm.Int(ownerKey)},
		))
		if err != nil {
			return nil, err
		}
		return t.dedupeByKey(aset.File, recs), nil
	case xform.PlaceOwnerAttr:
		// The owner file holds one record copy per member key: an auxiliary
		// retrieve collects the keys, a second fetches the member records.
		ownerRecs, err := t.kcExec(abdl.NewRetrieve(
			abdm.And(filePred(st.Owner), t.keyPred(st.Owner, ownerKey)),
			aset.Attr,
		))
		if err != nil {
			return nil, err
		}
		var keys []currency.Key
		seen := make(map[currency.Key]bool)
		for _, sr := range ownerRecs.Records {
			if v, ok := sr.Rec.Get(aset.Attr); ok && v.Kind() == abdm.KindInt {
				if k := v.AsInt(); !seen[k] {
					seen[k] = true
					keys = append(keys, k)
				}
			}
		}
		if len(keys) == 0 {
			return nil, nil
		}
		q := make(abdm.Query, 0, len(keys))
		for _, k := range keys {
			q = append(q, abdm.Conjunction{filePred(st.Member), t.keyPred(st.Member, k)})
		}
		recs, err := t.retrieveAll(q)
		if err != nil {
			return nil, err
		}
		return t.dedupeByKey(st.Member, recs), nil
	default:
		return nil, fmt.Errorf("kms: set %q has unknown placement %v", st.Name, aset.Place)
	}
}

// makeCurrent installs a record as the current of the run-unit and of its
// record type, and updates every set currency the record participates in.
func (t *Translator) makeCurrent(record string, rec *abdm.Record) (currency.Key, error) {
	key, ok := t.keyOf(record, rec)
	if !ok {
		return 0, fmt.Errorf("kms: record of %q lacks its key attribute", record)
	}
	t.cit.SetRunUnit(record, key)
	t.currentRec = rec
	for _, st := range t.net.Sets {
		aset := t.ab.Sets[st.Name]
		if st.Owner == record {
			t.cit.SetSetCurrent(currency.SetCurrent{
				Set: st.Name, OwnerRec: record, OwnerKey: key, MemberRec: st.Member,
			})
		}
		if st.Member == record {
			switch aset.Place {
			case xform.PlaceSharedKey:
				t.cit.SetSetCurrent(currency.SetCurrent{
					Set: st.Name, OwnerRec: st.Owner, OwnerKey: key,
					MemberRec: record, MemberKey: key,
				})
			case xform.PlaceMemberAttr, xform.PlaceLinkAttr:
				if v, ok := rec.Get(aset.Attr); ok && v.Kind() == abdm.KindInt {
					t.cit.SetSetCurrent(currency.SetCurrent{
						Set: st.Name, OwnerRec: st.Owner, OwnerKey: v.AsInt(),
						MemberRec: record, MemberKey: key,
					})
				}
			case xform.PlaceNone:
				t.cit.SetSetCurrent(currency.SetCurrent{
					Set: st.Name, OwnerRec: netmodel.SystemOwner,
					MemberRec: record, MemberKey: key,
				})
			}
		}
	}
	return key, nil
}
