package kms

import (
	"fmt"

	"mlds/internal/abdm"
	"mlds/internal/codasyl"
	"mlds/internal/currency"
	"mlds/internal/netmodel"
	"mlds/internal/xform"
)

// execFind dispatches the FIND variants (Chapter VI.B).
func (t *Translator) execFind(f *codasyl.Find, out *Outcome) error {
	switch f.Kind {
	case codasyl.FindAny:
		return t.findAny(f, out)
	case codasyl.FindCurrent:
		return t.findCurrent(f, out)
	case codasyl.FindDuplicate:
		return t.findDuplicate(f, out)
	case codasyl.FindFirst, codasyl.FindLast, codasyl.FindNext, codasyl.FindPrior:
		return t.findPositional(f, out)
	case codasyl.FindOwner:
		return t.findOwner(f, out)
	case codasyl.FindWithinCurrent:
		return t.findWithinCurrent(f, out)
	default:
		return fmt.Errorf("kms: unsupported FIND variant %v", f.Kind)
	}
}

// findAny locates a record whose values for the listed items equal the
// record template in the UWA, translating to a single RETRIEVE whose first
// predicate is (FILE = record_type).
func (t *Translator) findAny(f *codasyl.Find, out *Outcome) error {
	rec, ok := t.net.Record(f.Record)
	if !ok {
		return fmt.Errorf("kms: FIND ANY names unknown record type %q", f.Record)
	}
	conj := abdm.Conjunction{filePred(f.Record)}
	for _, item := range f.Items {
		if _, ok := rec.Attribute(item); !ok {
			return fmt.Errorf("kms: FIND ANY names unknown item %q of %q", item, f.Record)
		}
		v, ok := t.uwa.Get(f.Record, item)
		if !ok {
			return fmt.Errorf("kms: UWA field %s IN %s not initialised (use MOVE)", item, f.Record)
		}
		conj = append(conj, abdm.Predicate{Attr: item, Op: abdm.OpEq, Val: v})
	}
	recs, err := t.retrieveAll(abdm.Query{conj})
	if err != nil {
		return err
	}
	recs = t.dedupeByKey(f.Record, recs)
	buf := currency.NewBuffer(recs)
	t.cit.PutBuffer("", buf)
	r, ok := buf.First()
	if !ok {
		out.EndOfSet = true
		out.Record = f.Record
		return nil
	}
	key, err := t.makeCurrent(f.Record, r)
	if err != nil {
		return err
	}
	out.Found, out.Record, out.Key = true, f.Record, key
	return nil
}

// findCurrent updates the current of the run-unit from the current record of
// a set type. Its only function is the CIT update: no ABDL is generated.
func (t *Translator) findCurrent(f *codasyl.Find, out *Outcome) error {
	st, _, err := t.setInfo(f.Set)
	if err != nil {
		return err
	}
	if st.Member != f.Record {
		return fmt.Errorf("%w: %q in set %q (member is %q)", ErrNotMember, f.Record, f.Set, st.Member)
	}
	sc, ok := t.cit.SetCurrentOf(f.Set)
	if !ok || sc.MemberKey == 0 {
		return fmt.Errorf("%w: set %q has no current record", ErrNoSetOccurrence, f.Set)
	}
	t.cit.SetRunUnit(f.Record, sc.MemberKey)
	t.currentRec = nil // fetched lazily by GET
	out.Found, out.Record, out.Key = true, f.Record, sc.MemberKey
	return nil
}

// findPositional implements FIND FIRST/LAST/NEXT/PRIOR record WITHIN set.
// FIRST and LAST (re)retrieve the set occurrence into the result buffer;
// NEXT and PRIOR walk the buffer established earlier.
func (t *Translator) findPositional(f *codasyl.Find, out *Outcome) error {
	st, aset, err := t.setInfo(f.Set)
	if err != nil {
		return err
	}
	if st.Member != f.Record {
		return fmt.Errorf("%w: %q in set %q (member is %q)", ErrNotMember, f.Record, f.Set, st.Member)
	}
	ownerKey, err := t.requireOwner(st, aset)
	if err != nil {
		return err
	}
	var buf *currency.Buffer
	switch f.Kind {
	case codasyl.FindFirst, codasyl.FindLast:
		recs, err := t.members(st, aset, ownerKey)
		if err != nil {
			return err
		}
		buf = currency.NewBuffer(recs)
		t.cit.PutBuffer(f.Set, buf)
	default:
		var ok bool
		buf, ok = t.cit.BufferOf(f.Set)
		if !ok {
			return fmt.Errorf("%w: set %q", ErrNoBuffer, f.Set)
		}
	}
	var r *abdm.Record
	var ok bool
	switch f.Kind {
	case codasyl.FindFirst:
		r, ok = buf.First()
	case codasyl.FindLast:
		r, ok = buf.Last()
	case codasyl.FindNext:
		r, ok = buf.Next()
	case codasyl.FindPrior:
		r, ok = buf.Prior()
	}
	if !ok {
		out.EndOfSet = true
		out.Record = f.Record
		return nil
	}
	key, err := t.makeCurrent(f.Record, r)
	if err != nil {
		return err
	}
	t.updateSetMember(f.Set, st, ownerKey, key)
	out.Found, out.Record, out.Key = true, f.Record, key
	return nil
}

// requireOwner resolves the owner key of the set's current occurrence.
// SYSTEM-owned sets have a single occurrence and need no currency.
func (t *Translator) requireOwner(st *netmodel.SetType, aset xform.ABSet) (currency.Key, error) {
	if aset.Place == xform.PlaceNone {
		return 0, nil
	}
	sc, ok := t.cit.SetCurrentOf(st.Name)
	if !ok {
		return 0, fmt.Errorf("%w: set %q", ErrNoSetOccurrence, st.Name)
	}
	return sc.OwnerKey, nil
}

// updateSetMember records the new current member of a set occurrence.
func (t *Translator) updateSetMember(set string, st *netmodel.SetType, ownerKey, memberKey currency.Key) {
	t.cit.SetSetCurrent(currency.SetCurrent{
		Set: set, OwnerRec: st.Owner, OwnerKey: ownerKey,
		MemberRec: st.Member, MemberKey: memberKey,
	})
}

// findDuplicate sequentially accesses records within the current set
// occurrence, locating the next buffered record whose values for the listed
// items match those of the current record of the set.
func (t *Translator) findDuplicate(f *codasyl.Find, out *Outcome) error {
	st, _, err := t.setInfo(f.Set)
	if err != nil {
		return err
	}
	if st.Member != f.Record {
		return fmt.Errorf("%w: %q in set %q (member is %q)", ErrNotMember, f.Record, f.Set, st.Member)
	}
	buf, ok := t.cit.BufferOf(f.Set)
	if !ok {
		return fmt.Errorf("%w: set %q", ErrNoBuffer, f.Set)
	}
	cur, ok := buf.Current()
	if !ok {
		return fmt.Errorf("%w: set %q has no current record", ErrNoSetOccurrence, f.Set)
	}
	want := make(map[string]abdm.Value, len(f.Items))
	for _, item := range f.Items {
		v, ok := cur.Get(item)
		if !ok {
			return fmt.Errorf("kms: FIND DUPLICATE item %q absent from current record", item)
		}
		want[item] = v
	}
	for {
		r, ok := buf.Next()
		if !ok {
			out.EndOfSet = true
			out.Record = f.Record
			return nil
		}
		match := true
		for item, v := range want {
			got, ok := r.Get(item)
			if !ok || !got.Equal(v) {
				match = false
				break
			}
		}
		if match {
			key, err := t.makeCurrent(f.Record, r)
			if err != nil {
				return err
			}
			sc, _ := t.cit.SetCurrentOf(f.Set)
			t.updateSetMember(f.Set, st, sc.OwnerKey, key)
			out.Found, out.Record, out.Key = true, f.Record, key
			return nil
		}
	}
}

// findOwner identifies the owner of the current occurrence of the set: all
// the needed information is present in the CIT, so a single RETRIEVE by the
// owner's key suffices.
func (t *Translator) findOwner(f *codasyl.Find, out *Outcome) error {
	st, aset, err := t.setInfo(f.Set)
	if err != nil {
		return err
	}
	if aset.Place == xform.PlaceNone {
		return fmt.Errorf("kms: FIND OWNER WITHIN %q: SYSTEM owns the set", f.Set)
	}
	sc, ok := t.cit.SetCurrentOf(f.Set)
	if !ok {
		return fmt.Errorf("%w: set %q", ErrNoSetOccurrence, f.Set)
	}
	recs, err := t.retrieveByKey(st.Owner, sc.OwnerKey)
	if err != nil {
		return err
	}
	recs = t.dedupeByKey(st.Owner, recs)
	if len(recs) == 0 {
		out.EndOfSet = true
		out.Record = st.Owner
		return nil
	}
	key, err := t.makeCurrent(st.Owner, recs[0])
	if err != nil {
		return err
	}
	out.Found, out.Record, out.Key = true, st.Owner, key
	return nil
}

// findWithinCurrent locates a member of the current set occurrence whose
// values match the UWA template for the listed items — FIND DUPLICATE's
// shape, but matching against user-supplied values.
func (t *Translator) findWithinCurrent(f *codasyl.Find, out *Outcome) error {
	st, aset, err := t.setInfo(f.Set)
	if err != nil {
		return err
	}
	if st.Member != f.Record {
		return fmt.Errorf("%w: %q in set %q (member is %q)", ErrNotMember, f.Record, f.Set, st.Member)
	}
	ownerKey, err := t.requireOwner(st, aset)
	if err != nil {
		return err
	}
	recs, err := t.members(st, aset, ownerKey)
	if err != nil {
		return err
	}
	// Filter by the UWA values.
	var match []*abdm.Record
	for _, r := range recs {
		ok := true
		for _, item := range f.Items {
			want, has := t.uwa.Get(f.Record, item)
			if !has {
				return fmt.Errorf("kms: UWA field %s IN %s not initialised (use MOVE)", item, f.Record)
			}
			got, present := r.Get(item)
			if !present || !got.Equal(want) {
				ok = false
				break
			}
		}
		if ok {
			match = append(match, r)
		}
	}
	buf := currency.NewBuffer(match)
	t.cit.PutBuffer(f.Set, buf)
	r, ok := buf.First()
	if !ok {
		out.EndOfSet = true
		out.Record = f.Record
		return nil
	}
	key, err := t.makeCurrent(f.Record, r)
	if err != nil {
		return err
	}
	t.updateSetMember(f.Set, st, ownerKey, key)
	out.Found, out.Record, out.Key = true, f.Record, key
	return nil
}

// execGet implements the three GET forms (Chapter VI.C): the current record
// of the run-unit (or selected items of it) moves into the UWA.
func (t *Translator) execGet(g *codasyl.Get, out *Outcome) error {
	if !t.cit.RunUnit.Valid {
		return ErrNoCurrentRunUnit
	}
	record := t.cit.RunUnit.Record
	if g.Record != "" && g.Record != record {
		return fmt.Errorf("kms: GET %s: current of run-unit is a %s record", g.Record, record)
	}
	rec := t.currentRec
	if rec == nil {
		recs, err := t.retrieveByKey(record, t.cit.RunUnit.Key)
		if err != nil {
			return err
		}
		recs = t.dedupeByKey(record, recs)
		if len(recs) == 0 {
			return fmt.Errorf("kms: current of run-unit (%s key %d) no longer exists", record, t.cit.RunUnit.Key)
		}
		rec = recs[0]
		t.currentRec = rec
	}
	out.Record = record
	out.Values = make(map[string]abdm.Value)
	if len(g.Items) == 0 {
		t.uwa.LoadRecord(record, rec)
		for _, kw := range rec.Keywords {
			if kw.Attr != abdm.FileAttr {
				out.Values[kw.Attr] = kw.Val
			}
		}
		return nil
	}
	for _, item := range g.Items {
		v, ok := rec.Get(item)
		if !ok {
			return fmt.Errorf("kms: GET names unknown item %q of %q", item, record)
		}
		t.uwa.Set(record, item, v)
		out.Values[item] = v
	}
	return nil
}
