package kms

import (
	"context"

	"mlds/internal/abdl"
	"mlds/internal/codasyl"
	"mlds/internal/kdb"
)

// ExecCtx executes one DML statement under the request context, so the
// controller and kernel attach their trace spans beneath the caller's. A
// Translator serves one run-unit (session) at a time, so storing the context
// for the duration of the statement is safe.
func (t *Translator) ExecCtx(ctx context.Context, st codasyl.Stmt) (*Outcome, error) {
	t.reqCtx = ctx
	defer func() { t.reqCtx = nil }()
	return t.Exec(st)
}

// ExecScriptCtx is ExecScript under a request context.
func (t *Translator) ExecScriptCtx(ctx context.Context, script codasyl.Script) ([]*Outcome, error) {
	t.reqCtx = ctx
	defer func() { t.reqCtx = nil }()
	return t.ExecScript(script)
}

// kcExec routes every kernel request through the session's current context.
func (t *Translator) kcExec(req *abdl.Request) (*kdb.Result, error) {
	ctx := t.reqCtx
	if ctx == nil {
		ctx = context.Background()
	}
	return t.kc.ExecCtx(ctx, req)
}
