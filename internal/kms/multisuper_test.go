package kms

// STORE of a subtype with several supertypes: all ISA set occurrences must
// agree on the entity key (the same entity seen through both branches), and
// disagreement aborts.

import (
	"strings"
	"testing"

	"mlds/internal/daplex"
	"mlds/internal/kc"
	"mlds/internal/mbds"
	"mlds/internal/xform"
)

const taDDL = `
DATABASE multi IS

ENTITY person IS
    pname : STRING(20);
END ENTITY;

SUBTYPE student OF person IS
    major : STRING(10);
END SUBTYPE;

SUBTYPE faculty OF person IS
    rank : STRING(10);
END SUBTYPE;

SUBTYPE teaching_assistant OF student, faculty IS
    hours : INTEGER;
END SUBTYPE;

OVERLAP student WITH faculty;

END DATABASE;
`

func newTASession(t *testing.T) *Translator {
	t.Helper()
	fun, err := daplex.ParseSchema(taDDL)
	if err != nil {
		t.Fatal(err)
	}
	m, err := xform.FunToNet(fun)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := xform.DeriveAB(m)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := mbds.New(ab.Dir, mbds.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return NewFunctional(m, ab, kc.New(sys))
}

func TestStoreMultiSupertypeAgreeingOwners(t *testing.T) {
	tr := newTASession(t)
	// One person who is both a student and a faculty member.
	exec(t, tr, "MOVE 'Pat' TO pname IN person")
	p := exec(t, tr, "STORE person")
	exec(t, tr, "MOVE 'CS' TO major IN student")
	s := exec(t, tr, "STORE student")
	// Re-establish the person as current so faculty_* inherits the same key.
	exec(t, tr, "MOVE 'Pat' TO pname IN person")
	exec(t, tr, "FIND ANY person USING pname IN person")
	exec(t, tr, "MOVE 'prof' TO rank IN faculty")
	f := exec(t, tr, "STORE faculty")
	if s.Key != p.Key || f.Key != p.Key {
		t.Fatalf("keys: person=%d student=%d faculty=%d", p.Key, s.Key, f.Key)
	}
	// Now both ISA owners (student and faculty currents) hold Pat's key:
	// the TA record inherits it through both branches.
	exec(t, tr, "MOVE 'Pat' TO pname IN person")
	exec(t, tr, "FIND ANY person USING pname IN person")
	exec(t, tr, "FIND FIRST student WITHIN person_student")
	exec(t, tr, "MOVE 'Pat' TO pname IN person")
	exec(t, tr, "FIND ANY person USING pname IN person")
	exec(t, tr, "FIND FIRST faculty WITHIN person_faculty")
	exec(t, tr, "MOVE 10 TO hours IN teaching_assistant")
	ta := exec(t, tr, "STORE teaching_assistant")
	if ta.Key != p.Key {
		t.Errorf("TA key %d, want %d", ta.Key, p.Key)
	}
	// The TA is findable through both ISA sets.
	via1 := exec(t, tr, "FIND FIRST teaching_assistant WITHIN student_teaching_assistant")
	if !via1.Found || via1.Key != p.Key {
		t.Errorf("via student branch = %+v", via1)
	}
	via2 := exec(t, tr, "FIND FIRST teaching_assistant WITHIN faculty_teaching_assistant")
	if !via2.Found || via2.Key != p.Key {
		t.Errorf("via faculty branch = %+v", via2)
	}
}

func TestStoreMultiSupertypeDisagreeingOwnersAborts(t *testing.T) {
	tr := newTASession(t)
	// Two different people: one a student, the other a faculty member.
	exec(t, tr, "MOVE 'Ann' TO pname IN person")
	exec(t, tr, "STORE person")
	exec(t, tr, "MOVE 'CS' TO major IN student")
	exec(t, tr, "STORE student") // student current: Ann's key
	exec(t, tr, "MOVE 'Bob' TO pname IN person")
	exec(t, tr, "STORE person")
	exec(t, tr, "MOVE 'prof' TO rank IN faculty")
	exec(t, tr, "STORE faculty") // faculty current: Bob's key
	// A TA cannot be Ann-as-student and Bob-as-faculty at once.
	exec(t, tr, "MOVE 5 TO hours IN teaching_assistant")
	err := execErr(t, tr, "STORE teaching_assistant")
	if !strings.Contains(err.Error(), "disagree") {
		t.Errorf("err = %v", err)
	}
}
