package kms

// Tests for the AB(network) target: a natively-defined network schema where
// every set's membership attribute lives in the member file (the original
// MLDS network interface of Emdi), served by the same translator.

import (
	"errors"
	"testing"

	"mlds/internal/codasyl"
	"mlds/internal/kc"
	"mlds/internal/mbds"
	"mlds/internal/netddl"
	"mlds/internal/xform"
)

const shopDDL = `
SCHEMA NAME IS shop

RECORD NAME IS dept
    02 dname TYPE IS CHARACTER 20
    02 floor TYPE IS FIXED
    DUPLICATES ARE NOT ALLOWED FOR dname

RECORD NAME IS emp
    02 ename TYPE IS CHARACTER 20
    02 pay TYPE IS FIXED

RECORD NAME IS badge
    02 code TYPE IS FIXED

SET NAME IS works_in;
    OWNER IS dept;
    MEMBER IS emp;
    INSERTION IS MANUAL;
    RETENTION IS OPTIONAL;
    SET SELECTION IS BY APPLICATION;

SET NAME IS carries;
    OWNER IS emp;
    MEMBER IS badge;
    INSERTION IS AUTOMATIC;
    RETENTION IS FIXED;
    SET SELECTION IS BY APPLICATION;
`

func newNetSession(t *testing.T) *Translator {
	t.Helper()
	net, err := netddl.Parse(shopDDL)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := xform.DeriveABNative(net)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := mbds.New(ab.Dir, mbds.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return NewNetwork(net, ab, kc.New(sys))
}

func TestNetworkStoreAndFind(t *testing.T) {
	tr := newNetSession(t)
	exec(t, tr, "MOVE 'Sales' TO dname IN dept")
	exec(t, tr, "MOVE 2 TO floor IN dept")
	out := exec(t, tr, "STORE dept")
	if !out.Found {
		t.Fatal("STORE dept failed")
	}
	exec(t, tr, "MOVE 'Sales' TO dname IN dept")
	found := exec(t, tr, "FIND ANY dept USING dname IN dept")
	if !found.Found || found.Key != out.Key {
		t.Fatalf("found = %+v, stored key %d", found, out.Key)
	}
}

func TestNetworkDuplicatesClause(t *testing.T) {
	tr := newNetSession(t)
	exec(t, tr, "MOVE 'Sales' TO dname IN dept")
	exec(t, tr, "STORE dept")
	// dname has DUPLICATES ARE NOT ALLOWED.
	exec(t, tr, "MOVE 'Sales' TO dname IN dept")
	err := execErr(t, tr, "STORE dept")
	if !errors.Is(err, ErrDuplicate) {
		t.Errorf("err = %v", err)
	}
}

func TestNetworkManualConnectDisconnect(t *testing.T) {
	tr := newNetSession(t)
	exec(t, tr, "MOVE 'Sales' TO dname IN dept")
	exec(t, tr, "STORE dept")
	exec(t, tr, "MOVE 'Ann' TO ename IN emp")
	exec(t, tr, "MOVE 900 TO pay IN emp")
	exec(t, tr, "STORE emp")
	out := exec(t, tr, "CONNECT emp TO works_in")
	if !hasRequest(out, "UPDATE") {
		t.Errorf("requests = %v", out.Requests)
	}
	owner := exec(t, tr, "FIND OWNER WITHIN works_in")
	if owner.Record != "dept" {
		t.Fatalf("owner = %+v", owner)
	}
	got := exec(t, tr, "GET dname IN dept")
	if got.Values["dname"].AsString() != "Sales" {
		t.Errorf("dname = %v", got.Values)
	}
	// Navigate back and disconnect.
	exec(t, tr, "MOVE 'Ann' TO ename IN emp")
	exec(t, tr, "FIND ANY emp USING ename IN emp")
	exec(t, tr, "DISCONNECT emp FROM works_in")
	err := execErr(t, tr, "DISCONNECT emp FROM works_in")
	if !errors.Is(err, ErrNotConnected) {
		t.Errorf("err = %v", err)
	}
}

func TestNetworkAutomaticSetStore(t *testing.T) {
	tr := newNetSession(t)
	exec(t, tr, "MOVE 'Bob' TO ename IN emp")
	exec(t, tr, "MOVE 500 TO pay IN emp")
	empOut := exec(t, tr, "STORE emp")
	// carries is automatic: STORE badge connects to the current emp.
	exec(t, tr, "MOVE 7001 TO code IN badge")
	out := exec(t, tr, "STORE badge")
	if !hasRequest(out, "<carries, "+itoa(empOut.Key)+">") {
		t.Errorf("automatic set attr missing from INSERT: %v", out.Requests)
	}
	// Members of the emp's carries set.
	first := exec(t, tr, "FIND FIRST badge WITHIN carries")
	if !first.Found || first.Key != out.Key {
		t.Fatalf("badge via set = %+v", first)
	}
	// Automatic STORE without an owner current fails.
	tr2 := newNetSession(t)
	if _, err := tr2.Exec(mustParse(t, "MOVE 1 TO code IN badge")); err != nil {
		t.Fatal(err)
	}
	st, _ := codasyl.ParseStmt("STORE badge")
	if _, err := tr2.Exec(st); !errors.Is(err, ErrNoSetOccurrence) {
		t.Errorf("err = %v", err)
	}
}

func TestNetworkFindNavigation(t *testing.T) {
	tr := newNetSession(t)
	exec(t, tr, "MOVE 'Sales' TO dname IN dept")
	exec(t, tr, "STORE dept")
	for _, e := range []struct {
		name string
		pay  string
	}{{"Ann", "900"}, {"Bob", "800"}, {"Cey", "900"}} {
		exec(t, tr, "MOVE '"+e.name+"' TO ename IN emp")
		exec(t, tr, "MOVE "+e.pay+" TO pay IN emp")
		exec(t, tr, "STORE emp")
		exec(t, tr, "CONNECT emp TO works_in")
		// Re-establish the dept as the set occurrence owner for the next
		// connect (STORE emp changed the run-unit, but set currents stand).
	}
	// Iterate members of works_in for the Sales dept.
	exec(t, tr, "MOVE 'Sales' TO dname IN dept")
	exec(t, tr, "FIND ANY dept USING dname IN dept")
	count := 0
	out := exec(t, tr, "FIND FIRST emp WITHIN works_in")
	for out.Found {
		count++
		out = exec(t, tr, "FIND NEXT emp WITHIN works_in")
		if out.EndOfSet {
			break
		}
	}
	if count != 3 {
		t.Errorf("works_in members = %d, want 3", count)
	}
	// FIND WITHIN CURRENT filters by the UWA.
	exec(t, tr, "MOVE 900 TO pay IN emp")
	wc := exec(t, tr, "FIND emp WITHIN works_in CURRENT USING pay IN emp")
	if !wc.Found {
		t.Fatal("FIND WITHIN CURRENT missed")
	}
	got := exec(t, tr, "GET pay IN emp")
	if got.Values["pay"].AsInt() != 900 {
		t.Errorf("pay = %v", got.Values)
	}
	// FIND DUPLICATE finds the second 900-pay member.
	dup := exec(t, tr, "FIND DUPLICATE WITHIN works_in USING pay IN emp")
	if !dup.Found || dup.Key == wc.Key {
		t.Errorf("duplicate = %+v (first %d)", dup, wc.Key)
	}
}

func TestNetworkEraseConstraints(t *testing.T) {
	tr := newNetSession(t)
	exec(t, tr, "MOVE 'Sales' TO dname IN dept")
	exec(t, tr, "STORE dept")
	exec(t, tr, "MOVE 'Ann' TO ename IN emp")
	exec(t, tr, "MOVE 1 TO pay IN emp")
	exec(t, tr, "STORE emp")
	exec(t, tr, "CONNECT emp TO works_in")
	// dept owns a non-empty works_in occurrence: ERASE aborts.
	exec(t, tr, "MOVE 'Sales' TO dname IN dept")
	exec(t, tr, "FIND ANY dept USING dname IN dept")
	err := execErr(t, tr, "ERASE dept")
	if !errors.Is(err, ErrEraseOwner) {
		t.Errorf("err = %v", err)
	}
	// Disconnect the member; then the dept can be erased.
	exec(t, tr, "MOVE 'Ann' TO ename IN emp")
	exec(t, tr, "FIND ANY emp USING ename IN emp")
	exec(t, tr, "DISCONNECT emp FROM works_in")
	exec(t, tr, "MOVE 'Sales' TO dname IN dept")
	exec(t, tr, "FIND ANY dept USING dname IN dept")
	exec(t, tr, "ERASE dept")
	exec(t, tr, "MOVE 'Sales' TO dname IN dept")
	gone := exec(t, tr, "FIND ANY dept USING dname IN dept")
	if !gone.EndOfSet {
		t.Error("erased dept still findable")
	}
}

func mustParse(t *testing.T, line string) codasyl.Stmt {
	t.Helper()
	st, err := codasyl.ParseStmt(line)
	if err != nil {
		t.Fatal(err)
	}
	return st
}
