package kms

import (
	"fmt"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/codasyl"
	"mlds/internal/currency"
	"mlds/internal/netmodel"
	"mlds/internal/xform"
)

// execStore creates a new record occurrence from the UWA template and makes
// it the current of the run-unit (Chapter VI.G). The mapping enforces the
// duplicate condition, the overlap constraints, and automatic set insertion.
func (t *Translator) execStore(s *codasyl.Store, out *Outcome) error {
	rec, ok := t.net.Record(s.Record)
	if !ok {
		return fmt.Errorf("kms: STORE names unknown record type %q", s.Record)
	}

	// Resolve the new record's database key and its automatic connections.
	key, autoAttrs, err := t.storeKeyAndAutoSets(s.Record)
	if err != nil {
		return err
	}

	// Duplicate condition: a RETRIEVE per uniqueness group determines
	// whether an equal record already exists.
	if err := t.checkDuplicates(s.Record, rec); err != nil {
		return err
	}

	// Overlap constraints (functional targets only).
	if err := t.checkOverlap(s.Record, key); err != nil {
		return err
	}

	// Build the keyword list: FILE, key, scalar items from the UWA, then the
	// set attributes carried by this file.
	kws := abdm.NewRecord(s.Record)
	kws.Set(t.ab.KeyOf(s.Record), abdm.Int(key))
	for _, a := range rec.Attributes {
		if v, ok := t.uwa.Get(s.Record, a.Name); ok {
			kws.Set(a.Name, v)
		} else {
			kws.Set(a.Name, abdm.Null())
		}
	}
	for attr, val := range autoAttrs {
		kws.Set(attr, val)
	}
	// Remaining set attributes of this file start out null (manual sets).
	if tmpl, ok := t.ab.Templates[s.Record]; ok {
		for _, attr := range tmpl {
			if !kws.Has(attr) {
				kws.Set(attr, abdm.Null())
			}
		}
	}
	if _, err := t.kcExec(abdl.NewInsert(kws)); err != nil {
		return err
	}
	if _, err := t.makeCurrent(s.Record, kws); err != nil {
		return err
	}
	out.Found, out.Record, out.Key = true, s.Record, key
	return nil
}

// storeKeyAndAutoSets resolves a STOREd record's database key and the set
// attributes its automatic memberships require. A record transformed from an
// entity subtype inherits the key of the current owner of each of its ISA
// sets (value inheritance: the subtype record and its supertype record are
// the same entity); any other record receives a fresh key. Native automatic
// sets connect to the current occurrence via the member-side attribute.
func (t *Translator) storeKeyAndAutoSets(record string) (currency.Key, map[string]abdm.Value, error) {
	auto := make(map[string]abdm.Value)
	var key currency.Key
	for _, st := range t.net.Sets {
		if st.Member != record || st.Insertion != netmodel.InsertAutomatic || st.SystemOwned() {
			continue
		}
		sc, ok := t.cit.SetCurrentOf(st.Name)
		if !ok {
			return 0, nil, fmt.Errorf("%w: automatic set %q (set selection is by application: establish the owner first)", ErrNoSetOccurrence, st.Name)
		}
		aset := t.ab.Sets[st.Name]
		switch aset.Place {
		case xform.PlaceSharedKey:
			if key != 0 && key != sc.OwnerKey {
				return 0, nil, fmt.Errorf("kms: STORE %s: ISA owners disagree on the entity key (%d vs %d)", record, key, sc.OwnerKey)
			}
			key = sc.OwnerKey
		case xform.PlaceMemberAttr:
			auto[aset.Attr] = abdm.Int(sc.OwnerKey)
		}
	}
	if key == 0 {
		key = t.kc.NextKey()
	}
	return key, auto, nil
}

// checkDuplicates forms the RETRIEVE requests that enforce DUPLICATES ARE
// NOT ALLOWED. For functional targets the groups come from the schema's
// uniqueness constraints; for native targets the record's no-duplicate items
// form one group. Groups with any uninitialised value are skipped — the
// kernel stores NULL there and NULL never collides.
func (t *Translator) checkDuplicates(record string, rec *netmodel.RecordType) error {
	var groups [][]string
	if t.fun != nil {
		for _, u := range t.fun.Uniques {
			if u.Within == record {
				groups = append(groups, u.Functions)
			}
		}
	} else if nd := rec.NoDupAttrs(); len(nd) > 0 {
		groups = append(groups, nd)
	}
	for _, group := range groups {
		conj := abdm.Conjunction{filePred(record)}
		complete := true
		for _, attr := range group {
			v, ok := t.uwa.Get(record, attr)
			if !ok || v.IsNull() {
				complete = false
				break
			}
			conj = append(conj, abdm.Predicate{Attr: attr, Op: abdm.OpEq, Val: v})
		}
		if !complete {
			continue
		}
		res, err := t.kcExec(abdl.NewRetrieve(abdm.Query{conj}, t.ab.KeyOf(record)))
		if err != nil {
			return err
		}
		if len(res.Records) > 0 {
			return fmt.Errorf("%w: %s values %v already present", ErrDuplicate, record, group)
		}
	}
	return nil
}

// checkOverlap verifies that storing a record of a terminal subtype under an
// entity key does not violate the schema's overlap constraints: functional
// subtypes are disjoint unless an overlap was declared.
func (t *Translator) checkOverlap(record string, key currency.Key) error {
	if t.fun == nil {
		return nil
	}
	if _, isSub := t.fun.Subtype(record); !isSub || !t.fun.IsTerminal(record) {
		return nil
	}
	for _, st := range t.fun.Subtypes {
		if st.Name == record || !t.fun.IsTerminal(st.Name) {
			continue
		}
		res, err := t.kcExec(abdl.NewRetrieve(
			abdm.And(filePred(st.Name), t.keyPred(st.Name, key)),
			t.ab.KeyOf(st.Name),
		))
		if err != nil {
			return err
		}
		if len(res.Records) > 0 && !t.fun.OverlapAllowed(record, st.Name) {
			return fmt.Errorf("%w: entity %d already belongs to subtype %q", ErrOverlap, key, st.Name)
		}
	}
	return nil
}

// execConnect manually inserts the current of the run-unit into the current
// occurrences of the named sets (Chapter VI.D).
func (t *Translator) execConnect(c *codasyl.Connect, out *Outcome) error {
	runKey, err := t.requireRunUnit(c.Record)
	if err != nil {
		return err
	}
	for _, set := range c.Sets {
		st, aset, err := t.setInfo(set)
		if err != nil {
			return err
		}
		if st.Insertion == netmodel.InsertAutomatic {
			return fmt.Errorf("%w: set %q", ErrAutomaticSet, set)
		}
		if st.Member != c.Record {
			return fmt.Errorf("%w: %q in set %q (member is %q)", ErrNotMember, c.Record, set, st.Member)
		}
		sc, ok := t.cit.SetCurrentOf(set)
		if !ok {
			return fmt.Errorf("%w: set %q", ErrNoSetOccurrence, set)
		}
		switch aset.Place {
		case xform.PlaceMemberAttr, xform.PlaceLinkAttr:
			// The membership information resides in the member record: one
			// UPDATE pointing it at the owner.
			req := abdl.NewUpdate(
				abdm.And(filePred(aset.File), t.keyPred(aset.File, runKey)),
				abdl.Modifier{Attr: aset.Attr, Val: abdm.Int(sc.OwnerKey)},
			)
			if _, err := t.kcExec(req); err != nil {
				return err
			}
		case xform.PlaceOwnerAttr:
			if err := t.connectOwnerSide(st, aset, sc.OwnerKey, runKey); err != nil {
				return err
			}
		default:
			return fmt.Errorf("kms: set %q cannot be CONNECTed (placement %v)", set, aset.Place)
		}
		t.updateSetMember(set, st, sc.OwnerKey, runKey)
	}
	t.currentRec = nil
	out.Record, out.Key = c.Record, runKey
	return nil
}

// connectOwnerSide handles the four Chapter VI.D.2.a cases: the membership
// information resides in the owner record. If the owner still has a null
// occurrence of the set attribute the null is replaced; otherwise a new
// record copy is inserted, duplicating the owner's other attribute-value
// pairs.
func (t *Translator) connectOwnerSide(st *netmodel.SetType, aset xform.ABSet, ownerKey, runKey currency.Key) error {
	copies, err := t.retrieveByKey(st.Owner, ownerKey)
	if err != nil {
		return err
	}
	if len(copies) == 0 {
		return fmt.Errorf("kms: owner %s with key %d does not exist", st.Owner, ownerKey)
	}
	hasNull := false
	for _, r := range copies {
		v, ok := r.Get(aset.Attr)
		if ok && v.Kind() == abdm.KindInt && v.AsInt() == runKey {
			return nil // already connected: idempotent
		}
		if !ok || v.IsNull() {
			hasNull = true
		}
	}
	if hasNull {
		// Cases (1) and (2): replace the null value(s) in place.
		req := abdl.NewUpdate(
			abdm.And(
				filePred(st.Owner),
				t.keyPred(st.Owner, ownerKey),
				abdm.Predicate{Attr: aset.Attr, Op: abdm.OpEq, Val: abdm.Null()},
			),
			abdl.Modifier{Attr: aset.Attr, Val: abdm.Int(runKey)},
		)
		_, err := t.kcExec(req)
		return err
	}
	// Cases (3) and (4): insert a copy of the owner record whose set
	// attribute holds the new member's key.
	cp := copies[0].Clone()
	cp.Set(aset.Attr, abdm.Int(runKey))
	_, err = t.kcExec(abdl.NewInsert(cp))
	return err
}

// execDisconnect detaches the current of the run-unit from the named sets;
// the record remains in the database (Chapter VI.E).
func (t *Translator) execDisconnect(d *codasyl.Disconnect, out *Outcome) error {
	runKey, err := t.requireRunUnit(d.Record)
	if err != nil {
		return err
	}
	for _, set := range d.Sets {
		st, aset, err := t.setInfo(set)
		if err != nil {
			return err
		}
		if st.Insertion == netmodel.InsertAutomatic {
			return fmt.Errorf("%w: set %q", ErrAutomaticSet, set)
		}
		if st.Member != d.Record {
			return fmt.Errorf("%w: %q in set %q (member is %q)", ErrNotMember, d.Record, set, st.Member)
		}
		switch aset.Place {
		case xform.PlaceMemberAttr, xform.PlaceLinkAttr:
			if err := t.disconnectMemberSide(st, aset, runKey); err != nil {
				return err
			}
		case xform.PlaceOwnerAttr:
			sc, ok := t.cit.SetCurrentOf(set)
			if !ok {
				return fmt.Errorf("%w: set %q", ErrNoSetOccurrence, set)
			}
			if err := t.disconnectOwnerSide(st, aset, sc.OwnerKey, runKey); err != nil {
				return err
			}
		default:
			return fmt.Errorf("kms: set %q cannot be DISCONNECTed (placement %v)", set, aset.Place)
		}
	}
	t.currentRec = nil
	out.Record, out.Key = d.Record, runKey
	return nil
}

// disconnectMemberSide nulls the member record's set attribute: by the
// schema transformation this is always a singleton function set.
func (t *Translator) disconnectMemberSide(st *netmodel.SetType, aset xform.ABSet, runKey currency.Key) error {
	copies, err := t.retrieveByKey(aset.File, runKey)
	if err != nil {
		return err
	}
	connected := false
	for _, r := range copies {
		if v, ok := r.Get(aset.Attr); ok && !v.IsNull() {
			connected = true
			break
		}
	}
	if !connected {
		return fmt.Errorf("%w: %s key %d in set %q", ErrNotConnected, aset.File, runKey, st.Name)
	}
	req := abdl.NewUpdate(
		abdm.And(filePred(aset.File), t.keyPred(aset.File, runKey)),
		abdl.Modifier{Attr: aset.Attr, Val: abdm.Null()},
	)
	_, err = t.kcExec(req)
	return err
}

// disconnectOwnerSide handles function sets whose information resides in the
// owner record. A singleton set occurrence has its value nulled out; a set
// with multiple members has the matching record copies deleted.
func (t *Translator) disconnectOwnerSide(st *netmodel.SetType, aset xform.ABSet, ownerKey, runKey currency.Key) error {
	copies, err := t.retrieveByKey(st.Owner, ownerKey)
	if err != nil {
		return err
	}
	matching, others := 0, 0
	for _, r := range copies {
		v, ok := r.Get(aset.Attr)
		switch {
		case ok && v.Kind() == abdm.KindInt && v.AsInt() == runKey:
			matching++
		default:
			others++
		}
	}
	if matching == 0 {
		return fmt.Errorf("%w: %s key %d in set %q", ErrNotConnected, st.Member, runKey, st.Name)
	}
	qual := abdm.And(
		filePred(st.Owner),
		t.keyPred(st.Owner, ownerKey),
		abdm.Predicate{Attr: aset.Attr, Op: abdm.OpEq, Val: abdm.Int(runKey)},
	)
	if others > 0 {
		// The function set has multiple members: delete the matching copies.
		_, err := t.kcExec(abdl.NewDelete(qual))
		return err
	}
	// Singleton: null out the value, keeping the record.
	_, err = t.kcExec(abdl.NewUpdate(qual, abdl.Modifier{Attr: aset.Attr, Val: abdm.Null()}))
	return err
}

// execModify alters the current record of the run-unit: the whole record or
// selected items (Chapter VI.F). One UPDATE is issued per modified field.
func (t *Translator) execModify(m *codasyl.Modify, out *Outcome) error {
	runKey, err := t.requireRunUnit(m.Record)
	if err != nil {
		return err
	}
	rec, _ := t.net.Record(m.Record)
	items := m.Items
	if len(items) == 0 {
		// Whole-record MODIFY: every item with a UWA value.
		for _, a := range rec.Attributes {
			if _, ok := t.uwa.Get(m.Record, a.Name); ok {
				items = append(items, a.Name)
			}
		}
		if len(items) == 0 {
			return fmt.Errorf("kms: MODIFY %s: no UWA fields initialised", m.Record)
		}
	}
	for _, item := range items {
		if _, ok := rec.Attribute(item); !ok {
			return fmt.Errorf("kms: MODIFY names unknown item %q of %q", item, m.Record)
		}
		v, ok := t.uwa.Get(m.Record, item)
		if !ok {
			return fmt.Errorf("kms: UWA field %s IN %s not initialised (use MOVE)", item, m.Record)
		}
		req := abdl.NewUpdate(
			abdm.And(filePred(m.Record), t.keyPred(m.Record, runKey)),
			abdl.Modifier{Attr: item, Val: v},
		)
		if _, err := t.kcExec(req); err != nil {
			return err
		}
	}
	t.currentRec = nil
	out.Record, out.Key = m.Record, runKey
	return nil
}

// execErase deletes the current of the run-unit (Chapter VI.H), enforcing
// both the CODASYL constraint (the record may not own a non-empty set
// occurrence) and the Daplex constraint (the entity may not be referenced by
// a database function).
func (t *Translator) execErase(e *codasyl.Erase, out *Outcome) error {
	if e.All {
		return ErrEraseAll
	}
	runKey, err := t.requireRunUnit(e.Record)
	if err != nil {
		return err
	}
	// CODASYL constraint: sets owned by this record type must have no
	// members connected to this occurrence.
	for _, st := range t.net.Sets {
		if st.Owner != e.Record {
			continue
		}
		aset := t.ab.Sets[st.Name]
		var q abdm.Query
		var targetFile string
		switch aset.Place {
		case xform.PlaceSharedKey:
			targetFile = st.Member
			q = abdm.And(filePred(st.Member), t.keyPred(st.Member, runKey))
		case xform.PlaceMemberAttr, xform.PlaceLinkAttr:
			targetFile = aset.File
			q = abdm.And(filePred(aset.File),
				abdm.Predicate{Attr: aset.Attr, Op: abdm.OpEq, Val: abdm.Int(runKey)})
		case xform.PlaceOwnerAttr:
			targetFile = st.Owner
			q = abdm.And(filePred(st.Owner), t.keyPred(st.Owner, runKey),
				abdm.Predicate{Attr: aset.Attr, Op: abdm.OpNe, Val: abdm.Null()})
		default:
			continue
		}
		res, err := t.kcExec(abdl.NewRetrieve(q, t.ab.KeyOf(targetFile)))
		if err != nil {
			return err
		}
		if len(res.Records) > 0 {
			return fmt.Errorf("%w: set %q has %d connected member record(s)", ErrEraseOwner, st.Name, len(res.Records))
		}
	}
	// Daplex constraint: the entity may not be referenced by a function —
	// i.e. appear as the stored member key of an owner-side function set.
	for _, st := range t.net.Sets {
		if st.Member != e.Record {
			continue
		}
		aset := t.ab.Sets[st.Name]
		if aset.Place != xform.PlaceOwnerAttr {
			continue
		}
		res, err := t.kcExec(abdl.NewRetrieve(
			abdm.And(filePred(st.Owner),
				abdm.Predicate{Attr: aset.Attr, Op: abdm.OpEq, Val: abdm.Int(runKey)}),
			t.ab.KeyOf(st.Owner),
		))
		if err != nil {
			return err
		}
		if len(res.Records) > 0 {
			return fmt.Errorf("%w: function %q references it", ErrEraseReferenced, st.Name)
		}
	}
	if _, err := t.kcExec(abdl.NewDelete(abdm.And(filePred(e.Record), t.keyPred(e.Record, runKey)))); err != nil {
		return err
	}
	t.cit.InvalidateCurrent(e.Record, runKey)
	t.currentRec = nil
	out.Record, out.Key = e.Record, runKey
	return nil
}

// requireRunUnit checks that the current of the run-unit exists and is of
// the expected record type, returning its key.
func (t *Translator) requireRunUnit(record string) (currency.Key, error) {
	if !t.cit.RunUnit.Valid {
		return 0, ErrNoCurrentRunUnit
	}
	if t.cit.RunUnit.Record != record {
		return 0, fmt.Errorf("kms: current of run-unit is a %s record, not %s", t.cit.RunUnit.Record, record)
	}
	return t.cit.RunUnit.Key, nil
}
