package kms

import (
	"errors"
	"strings"
	"testing"

	"mlds/internal/abdm"
	"mlds/internal/codasyl"
	"mlds/internal/kc"
	"mlds/internal/univgen"
)

// newSession loads a small University database into a fresh kernel and
// returns a functional-target translator over it.
func newSession(t *testing.T) *Translator {
	t.Helper()
	db, err := univgen.Generate(univgen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := db.NewKernel(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	if _, err := db.Load(sys); err != nil {
		t.Fatal(err)
	}
	ctrl := kc.New(sys)
	ctrl.SeedKeys(db.Instance.MaxKey())
	return NewFunctional(db.Mapping, db.AB, ctrl)
}

func exec(t *testing.T, tr *Translator, line string) *Outcome {
	t.Helper()
	st, err := codasyl.ParseStmt(line)
	if err != nil {
		t.Fatalf("parse %q: %v", line, err)
	}
	out, err := tr.Exec(st)
	if err != nil {
		t.Fatalf("exec %q: %v", line, err)
	}
	return out
}

func execErr(t *testing.T, tr *Translator, line string) error {
	t.Helper()
	st, err := codasyl.ParseStmt(line)
	if err != nil {
		t.Fatalf("parse %q: %v", line, err)
	}
	_, err = tr.Exec(st)
	if err == nil {
		t.Fatalf("exec %q: expected error", line)
	}
	return err
}

func hasRequest(out *Outcome, substr string) bool {
	for _, r := range out.Requests {
		if strings.Contains(r, substr) {
			return true
		}
	}
	return false
}

// --- FIND ANY (VI.B.1) ----------------------------------------------------

func TestFindAnyTranslation(t *testing.T) {
	tr := newSession(t)
	exec(t, tr, "MOVE 'Advanced Database' TO title IN course")
	out := exec(t, tr, "FIND ANY course USING title IN course")
	if !out.Found || out.Record != "course" {
		t.Fatalf("outcome = %+v", out)
	}
	// The translation is a single RETRIEVE whose first predicate is FILE.
	if len(out.Requests) != 1 {
		t.Fatalf("requests = %v", out.Requests)
	}
	want := "RETRIEVE ((FILE = 'course') AND (title = 'Advanced Database')) (all attributes)"
	if out.Requests[0] != want {
		t.Errorf("request = %q, want %q", out.Requests[0], want)
	}
	if !tr.CIT().RunUnit.Valid || tr.CIT().RunUnit.Record != "course" {
		t.Error("run-unit current not set")
	}
}

func TestFindAnyMultipleItems(t *testing.T) {
	tr := newSession(t)
	exec(t, tr, "MOVE 'Advanced Database' TO title IN course")
	exec(t, tr, "MOVE 'Fall' TO semester IN course")
	out := exec(t, tr, "FIND ANY course USING title, semester IN course")
	if !out.Found {
		t.Fatal("not found")
	}
	if !hasRequest(out, "(semester = 'Fall')") {
		t.Errorf("requests = %v", out.Requests)
	}
}

func TestFindAnyNotFoundSetsEndOfSet(t *testing.T) {
	tr := newSession(t)
	exec(t, tr, "MOVE 'No Such Course' TO title IN course")
	out := exec(t, tr, "FIND ANY course USING title IN course")
	if out.Found || !out.EndOfSet {
		t.Errorf("outcome = %+v", out)
	}
}

func TestFindAnyRequiresUWA(t *testing.T) {
	tr := newSession(t)
	err := execErr(t, tr, "FIND ANY course USING title IN course")
	if !strings.Contains(err.Error(), "MOVE") {
		t.Errorf("err = %v", err)
	}
}

// --- GET (VI.C) -------------------------------------------------------------

func TestGetForms(t *testing.T) {
	tr := newSession(t)
	exec(t, tr, "MOVE 'Advanced Database' TO title IN course")
	exec(t, tr, "FIND ANY course USING title IN course")
	out := exec(t, tr, "GET")
	if v, ok := out.Values["title"]; !ok || v.AsString() != "Advanced Database" {
		t.Errorf("GET values = %v", out.Values)
	}
	out = exec(t, tr, "GET course")
	if _, ok := out.Values["credits"]; !ok {
		t.Errorf("GET course values = %v", out.Values)
	}
	out = exec(t, tr, "GET title, credits IN course")
	if len(out.Values) != 2 {
		t.Errorf("GET items values = %v", out.Values)
	}
	if v, _ := tr.UWA().Get("course", "title"); v.AsString() != "Advanced Database" {
		t.Error("GET did not load the UWA")
	}
}

func TestGetWrongRecordType(t *testing.T) {
	tr := newSession(t)
	exec(t, tr, "MOVE 'Advanced Database' TO title IN course")
	exec(t, tr, "FIND ANY course USING title IN course")
	err := execErr(t, tr, "GET student")
	if !strings.Contains(err.Error(), "current of run-unit") {
		t.Errorf("err = %v", err)
	}
}

func TestGetWithoutCurrent(t *testing.T) {
	tr := newSession(t)
	err := execErr(t, tr, "GET")
	if !errors.Is(err, ErrNoCurrentRunUnit) {
		t.Errorf("err = %v", err)
	}
}

// --- FIND FIRST/NEXT/LAST/PRIOR (VI.B.4) ------------------------------------

func TestFindPositionalOverSystemSet(t *testing.T) {
	tr := newSession(t)
	// The SYSTEM-owned set of course holds every course occurrence.
	out := exec(t, tr, "FIND FIRST course WITHIN system_course")
	if !out.Found {
		t.Fatal("FIND FIRST found nothing")
	}
	count := 1
	for {
		out = exec(t, tr, "FIND NEXT course WITHIN system_course")
		if out.EndOfSet {
			break
		}
		count++
	}
	if count != univgen.SmallConfig().Courses {
		t.Errorf("iterated %d courses, want %d", count, univgen.SmallConfig().Courses)
	}
}

func TestFindFirstLastPrior(t *testing.T) {
	tr := newSession(t)
	first := exec(t, tr, "FIND FIRST course WITHIN system_course")
	last := exec(t, tr, "FIND LAST course WITHIN system_course")
	if first.Key == last.Key {
		t.Error("first and last should differ")
	}
	prior := exec(t, tr, "FIND PRIOR course WITHIN system_course")
	if !prior.Found || prior.Key == last.Key {
		t.Errorf("prior = %+v", prior)
	}
}

func TestFindNextWithoutFirst(t *testing.T) {
	tr := newSession(t)
	err := execErr(t, tr, "FIND NEXT course WITHIN system_course")
	if !errors.Is(err, ErrNoBuffer) {
		t.Errorf("err = %v", err)
	}
}

func TestFindPositionalNotMember(t *testing.T) {
	tr := newSession(t)
	err := execErr(t, tr, "FIND FIRST course WITHIN advisor")
	if !errors.Is(err, ErrNotMember) {
		t.Errorf("err = %v", err)
	}
}

// TestFindMembersOfOwnerAttrSet iterates a one-to-many multi-valued function
// set (enrollments), whose membership attribute lives in the owner file —
// the two-ARR translation path.
func TestFindMembersOfOwnerAttrSet(t *testing.T) {
	tr := newSession(t)
	exec(t, tr, "MOVE 'Student 0000' TO pname IN person")
	exec(t, tr, "FIND ANY person USING pname IN person")
	// The person current establishes nothing for enrollments (owned by
	// student); find the student record via the ISA set.
	out := exec(t, tr, "FIND FIRST student WITHIN person_student")
	if !out.Found {
		t.Fatal("student not found via ISA set")
	}
	out = exec(t, tr, "FIND FIRST course WITHIN enrollments")
	if !out.Found {
		t.Fatal("no enrolled course found")
	}
	// The owner-attr path issues two retrieves: owner copies, then members.
	if len(out.Requests) != 2 {
		t.Errorf("requests = %v", out.Requests)
	}
	count := 1
	for {
		o := exec(t, tr, "FIND NEXT course WITHIN enrollments")
		if o.EndOfSet {
			break
		}
		count++
	}
	if count != univgen.SmallConfig().EnrollPerStudent {
		t.Errorf("enrolled courses = %d, want %d", count, univgen.SmallConfig().EnrollPerStudent)
	}
}

// TestFindMembersOfISASet exercises the shared-key translation: members of
// person_student are student records sharing the person's key.
func TestFindMembersOfISASet(t *testing.T) {
	tr := newSession(t)
	exec(t, tr, "MOVE 'Faculty 000' TO pname IN person")
	exec(t, tr, "FIND ANY person USING pname IN person")
	// A faculty person has no student record: end of set.
	out := exec(t, tr, "FIND FIRST student WITHIN person_student")
	if !out.EndOfSet {
		t.Errorf("faculty person yielded a student: %+v", out)
	}
	out = exec(t, tr, "FIND FIRST employee WITHIN person_employee")
	if !out.Found {
		t.Error("faculty person has no employee record")
	}
	if out.Key != tr.CIT().RunUnit.Key {
		t.Error("run-unit not updated")
	}
}

// TestFindMembersOfMemberAttrSet iterates a single-valued function set
// (advisor): students advised by the current faculty.
func TestFindMembersOfMemberAttrSet(t *testing.T) {
	tr := newSession(t)
	exec(t, tr, "MOVE 'Faculty 000' TO pname IN person")
	exec(t, tr, "FIND ANY person USING pname IN person")
	exec(t, tr, "FIND FIRST employee WITHIN person_employee")
	exec(t, tr, "FIND FIRST faculty WITHIN employee_faculty")
	// Now faculty is current; it owns the advisor set.
	out := exec(t, tr, "FIND FIRST student WITHIN advisor")
	if !out.Found {
		t.Fatal("no advisee found")
	}
	// 18 students round-robin over 6 faculty = 3 advisees each.
	count := 1
	for {
		o := exec(t, tr, "FIND NEXT student WITHIN advisor")
		if o.EndOfSet {
			break
		}
		count++
	}
	if count != 3 {
		t.Errorf("advisees = %d, want 3", count)
	}
}

// TestFindMembersOfLinkSet iterates a many-to-many set: LINK_1 records of a
// faculty's teaching set.
func TestFindMembersOfLinkSet(t *testing.T) {
	tr := newSession(t)
	exec(t, tr, "MOVE 'Faculty 001' TO pname IN person")
	exec(t, tr, "FIND ANY person USING pname IN person")
	exec(t, tr, "FIND FIRST employee WITHIN person_employee")
	exec(t, tr, "FIND FIRST faculty WITHIN employee_faculty")
	out := exec(t, tr, "FIND FIRST LINK_1 WITHIN teaching")
	if !out.Found {
		t.Fatal("no teaching link found")
	}
	// The link's taught_by attribute leads to the course.
	owner := exec(t, tr, "FIND OWNER WITHIN taught_by")
	if !owner.Found || owner.Record != "course" {
		t.Fatalf("owner via taught_by = %+v", owner)
	}
	count := 1
	exec(t, tr, "FIND FIRST LINK_1 WITHIN teaching") // reposition after FIND OWNER
	for {
		o := exec(t, tr, "FIND NEXT LINK_1 WITHIN teaching")
		if o.EndOfSet {
			break
		}
		count++
	}
	if count != univgen.SmallConfig().TeachPerFaculty {
		t.Errorf("teaching links = %d, want %d", count, univgen.SmallConfig().TeachPerFaculty)
	}
}

// --- FIND OWNER (VI.B.5) ------------------------------------------------------

func TestFindOwner(t *testing.T) {
	tr := newSession(t)
	exec(t, tr, "MOVE 'Student 0001' TO pname IN person")
	exec(t, tr, "FIND ANY person USING pname IN person")
	exec(t, tr, "FIND FIRST student WITHIN person_student")
	out := exec(t, tr, "FIND OWNER WITHIN advisor")
	if !out.Found || out.Record != "faculty" {
		t.Fatalf("owner = %+v", out)
	}
	// The translation is a single RETRIEVE by the owner's key.
	if len(out.Requests) != 1 || !strings.Contains(out.Requests[0], "(FILE = 'faculty')") {
		t.Errorf("requests = %v", out.Requests)
	}
}

func TestFindOwnerOfSystemSet(t *testing.T) {
	tr := newSession(t)
	err := execErr(t, tr, "FIND OWNER WITHIN system_course")
	if !strings.Contains(err.Error(), "SYSTEM") {
		t.Errorf("err = %v", err)
	}
}

// --- FIND CURRENT (VI.B.2) ----------------------------------------------------

func TestFindCurrent(t *testing.T) {
	tr := newSession(t)
	exec(t, tr, "MOVE 'Student 0002' TO pname IN person")
	exec(t, tr, "FIND ANY person USING pname IN person")
	exec(t, tr, "FIND FIRST student WITHIN person_student")
	studentKey := tr.CIT().RunUnit.Key
	// Change the run-unit elsewhere.
	exec(t, tr, "MOVE 'Advanced Database' TO title IN course")
	exec(t, tr, "FIND ANY course USING title IN course")
	// FIND CURRENT restores the set's current member as run-unit, with no
	// ABDL generated.
	out := exec(t, tr, "FIND CURRENT student WITHIN person_student")
	if !out.Found || out.Key != studentKey {
		t.Fatalf("outcome = %+v, want key %d", out, studentKey)
	}
	if len(out.Requests) != 0 {
		t.Errorf("FIND CURRENT issued ABDL: %v", out.Requests)
	}
}

// --- FIND DUPLICATE (VI.B.3) ----------------------------------------------------

func TestFindDuplicate(t *testing.T) {
	tr := newSession(t)
	// Iterate courses; semester cycles over 4 values, 12 courses → 3 each.
	exec(t, tr, "FIND FIRST course WITHIN system_course")
	count := 1
	for {
		st, _ := codasyl.ParseStmt("FIND DUPLICATE WITHIN system_course USING semester IN course")
		out, err := tr.Exec(st)
		if err != nil {
			t.Fatal(err)
		}
		if out.EndOfSet {
			break
		}
		count++
	}
	if count != 3 {
		t.Errorf("same-semester duplicates = %d, want 3", count)
	}
}

// --- FIND WITHIN CURRENT (VI.B.6) ---------------------------------------------

func TestFindWithinCurrent(t *testing.T) {
	tr := newSession(t)
	exec(t, tr, "MOVE 'Faculty 000' TO pname IN person")
	exec(t, tr, "FIND ANY person USING pname IN person")
	exec(t, tr, "FIND FIRST employee WITHIN person_employee")
	exec(t, tr, "FIND FIRST faculty WITHIN employee_faculty")
	// Advisees of this faculty with a specific major.
	exec(t, tr, "MOVE 'Computer Science' TO major IN student")
	out := exec(t, tr, "FIND student WITHIN advisor CURRENT USING major IN student")
	if !out.Found {
		t.Fatal("no CS advisee found")
	}
	got := exec(t, tr, "GET major IN student")
	if got.Values["major"].AsString() != "Computer Science" {
		t.Errorf("major = %v", got.Values["major"])
	}
}

// --- PERFORM loop script (the thesis's Chapter VI example) --------------------

func TestScriptCSMajors(t *testing.T) {
	tr := newSession(t)
	script, err := codasyl.ParseScript(`
MOVE 'Computer Science' TO major IN student
FIND ANY student USING major IN student
PERFORM UNTIL END-OF-SET
    GET student
    FIND NEXT student WITHIN system_student
END-PERFORM
`)
	// system_student does not exist (student is a subtype): expect an error
	// exercising the unknown-set path.
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.ExecScript(script); err == nil {
		t.Fatal("expected unknown-set error")
	}

	// The working formulation iterates the person system set's students.
	script, err = codasyl.ParseScript(`
MOVE 'Computer Science' TO major IN student
FIND ANY student USING major IN student
PERFORM UNTIL END-OF-SET
    GET student
    FIND DUPLICATE WITHIN system_person USING major IN student
END-PERFORM
`)
	if err != nil {
		t.Fatal(err)
	}
	_ = script // statement-level variant below is the supported idiom

	// Supported idiom: FIND ANY buffers all matches; re-FIND with DUPLICATE
	// over the run-unit buffer is modelled by repeated FIND ANY + counting
	// via set iteration instead. Count CS students by iterating the student
	// file through the person_student hierarchy.
	count := 0
	exec(t, tr, "FIND FIRST person WITHIN system_person")
	for {
		stu, _ := codasyl.ParseStmt("FIND FIRST student WITHIN person_student")
		out, err := tr.Exec(stu)
		if err != nil {
			t.Fatal(err)
		}
		if out.Found {
			g := exec(t, tr, "GET major IN student")
			if g.Values["major"].AsString() == "Computer Science" {
				count++
			}
		}
		nxt, _ := codasyl.ParseStmt("FIND NEXT person WITHIN system_person")
		out, err = tr.Exec(nxt)
		if err != nil {
			t.Fatal(err)
		}
		if out.EndOfSet {
			break
		}
	}
	if count != 6 { // 18 students, majors cycle over 3
		t.Errorf("CS students = %d, want 6", count)
	}
}

// --- STORE (VI.G) ---------------------------------------------------------------

func TestStoreEntityType(t *testing.T) {
	tr := newSession(t)
	exec(t, tr, "MOVE 'New Person' TO pname IN person")
	exec(t, tr, "MOVE 999999999 TO ssn IN person")
	out := exec(t, tr, "STORE person")
	if !out.Found || out.Key == 0 {
		t.Fatalf("outcome = %+v", out)
	}
	if !hasRequest(out, "INSERT (<FILE, 'person'>") {
		t.Errorf("requests = %v", out.Requests)
	}
	// The new record is the current of the run-unit and findable.
	got := exec(t, tr, "GET pname IN person")
	if got.Values["pname"].AsString() != "New Person" {
		t.Errorf("GET after STORE = %v", got.Values)
	}
}

func TestStoreSubtypeInheritsKey(t *testing.T) {
	tr := newSession(t)
	exec(t, tr, "MOVE 'New Person' TO pname IN person")
	exec(t, tr, "MOVE 999999998 TO ssn IN person")
	personOut := exec(t, tr, "STORE person")
	exec(t, tr, "MOVE 'Mathematics' TO major IN student")
	exec(t, tr, "MOVE 3.9 TO gpa IN student")
	out := exec(t, tr, "STORE student")
	if out.Key != personOut.Key {
		t.Errorf("student key %d != person key %d (ISA value inheritance)", out.Key, personOut.Key)
	}
}

func TestStoreSubtypeWithoutOwner(t *testing.T) {
	tr := newSession(t)
	exec(t, tr, "MOVE 'Lost' TO major IN student")
	err := execErr(t, tr, "STORE student")
	if !errors.Is(err, ErrNoSetOccurrence) {
		t.Errorf("err = %v", err)
	}
}

func TestStoreDuplicateRejected(t *testing.T) {
	tr := newSession(t)
	// course uniqueness: title + semester.
	exec(t, tr, "MOVE 'Advanced Database' TO title IN course")
	exec(t, tr, "MOVE 'Fall' TO semester IN course")
	exec(t, tr, "MOVE 3 TO credits IN course")
	err := execErr(t, tr, "STORE course")
	if !errors.Is(err, ErrDuplicate) {
		t.Errorf("err = %v", err)
	}
	// Different semester: allowed.
	exec(t, tr, "MOVE 'Winter2' TO semester IN course")
	out := exec(t, tr, "STORE course")
	if !out.Found {
		t.Error("non-duplicate STORE failed")
	}
}

func TestStoreOverlapConstraint(t *testing.T) {
	tr := newSession(t)
	// Make an existing faculty's employee record current, then try to store
	// a support_staff record for the same entity: faculty/support_staff
	// overlap is NOT declared.
	exec(t, tr, "MOVE 'Faculty 000' TO pname IN person")
	exec(t, tr, "FIND ANY person USING pname IN person")
	exec(t, tr, "FIND FIRST employee WITHIN person_employee")
	err := execErr(t, tr, "STORE support_staff")
	if !errors.Is(err, ErrOverlap) {
		t.Errorf("err = %v", err)
	}
	// student/faculty overlap IS declared: storing a student record for the
	// same person is legal.
	exec(t, tr, "MOVE 'Faculty 000' TO pname IN person")
	exec(t, tr, "FIND ANY person USING pname IN person")
	exec(t, tr, "MOVE 'Physics' TO major IN student")
	out := exec(t, tr, "STORE student")
	if !out.Found {
		t.Error("declared overlap rejected")
	}
}

// --- CONNECT (VI.D) -----------------------------------------------------------

func TestConnectMemberSide(t *testing.T) {
	tr := newSession(t)
	// Current owner: a faculty (advisor set).
	exec(t, tr, "MOVE 'Faculty 002' TO pname IN person")
	exec(t, tr, "FIND ANY person USING pname IN person")
	exec(t, tr, "FIND FIRST employee WITHIN person_employee")
	exec(t, tr, "FIND FIRST faculty WITHIN employee_faculty")
	advisorKey := tr.CIT().RunUnit.Key
	// New student without an advisor.
	exec(t, tr, "MOVE 'Connect Me' TO pname IN person")
	exec(t, tr, "MOVE 999999997 TO ssn IN person")
	exec(t, tr, "STORE person")
	exec(t, tr, "MOVE 'Physics' TO major IN student")
	exec(t, tr, "STORE student")
	out := exec(t, tr, "CONNECT student TO advisor")
	if !hasRequest(out, "UPDATE") || !hasRequest(out, "(advisor = "+itoa(advisorKey)+")") {
		t.Errorf("requests = %v", out.Requests)
	}
	owner := exec(t, tr, "FIND OWNER WITHIN advisor")
	if owner.Key != advisorKey {
		t.Errorf("owner after connect = %d, want %d", owner.Key, advisorKey)
	}
}

func TestConnectOwnerSideInsertsCopy(t *testing.T) {
	tr := newSession(t)
	// New course.
	exec(t, tr, "MOVE 'Fresh Course' TO title IN course")
	exec(t, tr, "MOVE 'Fall' TO semester IN course")
	exec(t, tr, "MOVE 4 TO credits IN course")
	exec(t, tr, "STORE course")
	// Existing student with a full enrollments set (no nulls).
	exec(t, tr, "MOVE 'Student 0003' TO pname IN person")
	exec(t, tr, "FIND ANY person USING pname IN person")
	exec(t, tr, "FIND FIRST student WITHIN person_student")
	// Run-unit must be the course (the member being connected).
	exec(t, tr, "MOVE 'Fresh Course' TO title IN course")
	out := exec(t, tr, "FIND ANY course USING title IN course")
	courseKey := out.Key
	cOut := exec(t, tr, "CONNECT course TO enrollments")
	if !hasRequest(cOut, "INSERT") {
		t.Errorf("owner-side connect with full set should INSERT a copy: %v", cOut.Requests)
	}
	// Enrollment count grew by one.
	count := 0
	exec(t, tr, "FIND FIRST course WITHIN enrollments")
	sawNew := false
	for {
		cur := tr.CIT().RunUnit
		if cur.Valid && cur.Key == courseKey {
			sawNew = true
		}
		o := exec(t, tr, "FIND NEXT course WITHIN enrollments")
		count++
		if o.EndOfSet {
			break
		}
	}
	if count != univgen.SmallConfig().EnrollPerStudent+1 {
		t.Errorf("enrollments after connect = %d", count)
	}
	if !sawNew {
		t.Error("new course not among enrollments")
	}
}

func TestConnectOwnerSideFillsNull(t *testing.T) {
	tr := newSession(t)
	// New student (enrollments NULL) and an existing course.
	exec(t, tr, "MOVE 'Null Student' TO pname IN person")
	exec(t, tr, "MOVE 999999996 TO ssn IN person")
	exec(t, tr, "STORE person")
	exec(t, tr, "MOVE 'Mathematics' TO major IN student")
	exec(t, tr, "STORE student")
	exec(t, tr, "MOVE 'Advanced Database' TO title IN course")
	exec(t, tr, "FIND ANY course USING title IN course")
	out := exec(t, tr, "CONNECT course TO enrollments")
	// Null occurrence present: UPDATE, not INSERT.
	if hasRequest(out, "INSERT") {
		t.Errorf("expected in-place UPDATE of the null occurrence: %v", out.Requests)
	}
	if !hasRequest(out, "(enrollments = NULL)") {
		t.Errorf("expected NULL-qualified update: %v", out.Requests)
	}
}

func TestConnectAutomaticSetRejected(t *testing.T) {
	tr := newSession(t)
	exec(t, tr, "MOVE 'Student 0000' TO pname IN person")
	exec(t, tr, "FIND ANY person USING pname IN person")
	exec(t, tr, "FIND FIRST student WITHIN person_student")
	err := execErr(t, tr, "CONNECT student TO person_student")
	if !errors.Is(err, ErrAutomaticSet) {
		t.Errorf("err = %v", err)
	}
}

// --- DISCONNECT (VI.E) ----------------------------------------------------------

func TestDisconnectMemberSide(t *testing.T) {
	tr := newSession(t)
	exec(t, tr, "MOVE 'Student 0004' TO pname IN person")
	exec(t, tr, "FIND ANY person USING pname IN person")
	exec(t, tr, "FIND FIRST student WITHIN person_student")
	out := exec(t, tr, "DISCONNECT student FROM advisor")
	if !hasRequest(out, "(advisor = NULL)") {
		t.Errorf("requests = %v", out.Requests)
	}
	// Disconnecting again is an error.
	err := execErr(t, tr, "DISCONNECT student FROM advisor")
	if !errors.Is(err, ErrNotConnected) {
		t.Errorf("err = %v", err)
	}
}

func TestDisconnectOwnerSideMultiple(t *testing.T) {
	tr := newSession(t)
	// Student with several enrollments: disconnecting one course deletes the
	// matching record copies.
	exec(t, tr, "MOVE 'Student 0005' TO pname IN person")
	exec(t, tr, "FIND ANY person USING pname IN person")
	exec(t, tr, "FIND FIRST student WITHIN person_student")
	exec(t, tr, "FIND FIRST course WITHIN enrollments")
	out := exec(t, tr, "DISCONNECT course FROM enrollments")
	if !hasRequest(out, "DELETE") {
		t.Errorf("multi-member disconnect should DELETE copies: %v", out.Requests)
	}
	count := 0
	o := exec(t, tr, "FIND FIRST course WITHIN enrollments")
	if o.Found {
		count = 1
		for {
			o = exec(t, tr, "FIND NEXT course WITHIN enrollments")
			if o.EndOfSet {
				break
			}
			count++
		}
	}
	if count != univgen.SmallConfig().EnrollPerStudent-1 {
		t.Errorf("enrollments after disconnect = %d", count)
	}
}

// --- MODIFY (VI.F) --------------------------------------------------------------

func TestModifyItems(t *testing.T) {
	tr := newSession(t)
	exec(t, tr, "MOVE 'Advanced Database' TO title IN course")
	exec(t, tr, "FIND ANY course USING title IN course")
	exec(t, tr, "MOVE 5 TO credits IN course")
	out := exec(t, tr, "MODIFY credits IN course")
	if len(out.Requests) != 1 || !strings.Contains(out.Requests[0], "(credits = 5)") {
		t.Errorf("requests = %v", out.Requests)
	}
	got := exec(t, tr, "GET credits IN course")
	if got.Values["credits"].AsInt() != 5 {
		t.Errorf("credits after modify = %v", got.Values)
	}
}

func TestModifyWholeRecordOneUpdatePerField(t *testing.T) {
	tr := newSession(t)
	exec(t, tr, "MOVE 'Advanced Database' TO title IN course")
	exec(t, tr, "FIND ANY course USING title IN course")
	exec(t, tr, "MOVE 'Renamed Course' TO title IN course")
	exec(t, tr, "MOVE 2 TO credits IN course")
	out := exec(t, tr, "MODIFY course")
	// The UPDATE is repeated for each field to be modified.
	updates := 0
	for _, r := range out.Requests {
		if strings.HasPrefix(r, "UPDATE") {
			updates++
		}
	}
	if updates < 2 {
		t.Errorf("whole-record modify issued %d updates: %v", updates, out.Requests)
	}
}

func TestModifyRequiresCurrent(t *testing.T) {
	tr := newSession(t)
	err := execErr(t, tr, "MODIFY credits IN course")
	if !errors.Is(err, ErrNoCurrentRunUnit) {
		t.Errorf("err = %v", err)
	}
}

// --- ERASE (VI.H) ---------------------------------------------------------------

func TestEraseUnreferencedRecord(t *testing.T) {
	tr := newSession(t)
	exec(t, tr, "MOVE 'Doomed Course' TO title IN course")
	exec(t, tr, "MOVE 'Spring' TO semester IN course")
	exec(t, tr, "MOVE 1 TO credits IN course")
	exec(t, tr, "STORE course")
	out := exec(t, tr, "ERASE course")
	if !hasRequest(out, "DELETE") {
		t.Errorf("requests = %v", out.Requests)
	}
	if tr.CIT().RunUnit.Valid {
		t.Error("run-unit current survived ERASE")
	}
	exec(t, tr, "MOVE 'Doomed Course' TO title IN course")
	gone := exec(t, tr, "FIND ANY course USING title IN course")
	if !gone.EndOfSet {
		t.Error("erased course still findable")
	}
}

func TestEraseReferencedCourseAborts(t *testing.T) {
	tr := newSession(t)
	// Course 0 is enrolled in by students: the Daplex constraint aborts.
	exec(t, tr, "MOVE 'Advanced Database' TO title IN course")
	exec(t, tr, "FIND ANY course USING title IN course")
	err := execErr(t, tr, "ERASE course")
	if !errors.Is(err, ErrEraseReferenced) && !errors.Is(err, ErrEraseOwner) {
		t.Errorf("err = %v", err)
	}
}

func TestEraseOwnerWithMembersAborts(t *testing.T) {
	tr := newSession(t)
	// A faculty with advisees owns a non-empty advisor occurrence.
	exec(t, tr, "MOVE 'Faculty 000' TO pname IN person")
	exec(t, tr, "FIND ANY person USING pname IN person")
	exec(t, tr, "FIND FIRST employee WITHIN person_employee")
	exec(t, tr, "FIND FIRST faculty WITHIN employee_faculty")
	err := execErr(t, tr, "ERASE faculty")
	if !errors.Is(err, ErrEraseOwner) {
		t.Errorf("err = %v", err)
	}
}

func TestEraseAllNotTranslated(t *testing.T) {
	tr := newSession(t)
	exec(t, tr, "MOVE 'Advanced Database' TO title IN course")
	exec(t, tr, "FIND ANY course USING title IN course")
	err := execErr(t, tr, "ERASE ALL course")
	if !errors.Is(err, ErrEraseAll) {
		t.Errorf("err = %v", err)
	}
}

// --- MOVE validation ---------------------------------------------------------

func TestMoveValidation(t *testing.T) {
	tr := newSession(t)
	if err := execErr(t, tr, "MOVE 'x' TO nosuch IN course"); !strings.Contains(err.Error(), "unknown item") {
		t.Errorf("err = %v", err)
	}
	if err := execErr(t, tr, "MOVE 'x' TO title IN nosuchrec"); !strings.Contains(err.Error(), "unknown record") {
		t.Errorf("err = %v", err)
	}
	// Kind coercion: integer literal into a float attribute.
	exec(t, tr, "MOVE 3 TO gpa IN student")
	if v, _ := tr.UWA().Get("student", "gpa"); v.Kind() != abdm.KindFloat {
		t.Errorf("gpa kind = %v", v.Kind())
	}
	// String into an integer attribute fails.
	if err := execErr(t, tr, "MOVE 'four' TO credits IN course"); !strings.Contains(err.Error(), "wants") {
		t.Errorf("err = %v", err)
	}
}

func itoa(k int64) string {
	return abdm.Int(k).String()
}

func TestFindAnyWithoutUsing(t *testing.T) {
	tr := newSession(t)
	out := exec(t, tr, "FIND ANY course")
	if !out.Found || out.Record != "course" {
		t.Fatalf("outcome = %+v", out)
	}
	if out.Requests[0] != "RETRIEVE ((FILE = 'course')) (all attributes)" {
		t.Errorf("request = %q", out.Requests[0])
	}
}
