// Package codasyl implements the CODASYL-DML subset of the MLDS network
// language interface: the FIND variants, GET, STORE, CONNECT, DISCONNECT,
// MODIFY and ERASE statements, plus the host-language MOVE assignment and a
// PERFORM UNTIL loop so the thesis's example transactions run as written.
package codasyl

import (
	"fmt"
	"strings"

	"mlds/internal/abdm"
)

// Stmt is one CODASYL-DML statement.
type Stmt interface {
	fmt.Stringer
	stmt()
}

// FindKind distinguishes the FIND statement variants.
type FindKind int

// FIND variants.
const (
	FindAny           FindKind = iota // FIND ANY r USING i1,...,in IN r
	FindCurrent                       // FIND CURRENT r WITHIN s
	FindDuplicate                     // FIND DUPLICATE WITHIN s USING i1,... IN r
	FindFirst                         // FIND FIRST r WITHIN s
	FindLast                          // FIND LAST r WITHIN s
	FindNext                          // FIND NEXT r WITHIN s
	FindPrior                         // FIND PRIOR r WITHIN s
	FindOwner                         // FIND OWNER WITHIN s
	FindWithinCurrent                 // FIND r WITHIN s CURRENT USING i1,... IN r
)

var findNames = [...]string{
	"ANY", "CURRENT", "DUPLICATE", "FIRST", "LAST", "NEXT", "PRIOR", "OWNER", "WITHIN CURRENT",
}

// String names the variant.
func (k FindKind) String() string {
	if int(k) < len(findNames) {
		return findNames[k]
	}
	return fmt.Sprintf("find(%d)", int(k))
}

// Find is a FIND statement: it identifies a record and updates the currency
// indicator table; it never transfers data to the user.
type Find struct {
	Kind   FindKind
	Record string   // record type (empty for FIND OWNER)
	Set    string   // set type (empty for FIND ANY)
	Items  []string // USING items
}

func (*Find) stmt() {}

// String renders the statement in DML syntax.
func (f *Find) String() string {
	switch f.Kind {
	case FindAny:
		if len(f.Items) == 0 {
			return "FIND ANY " + f.Record
		}
		return fmt.Sprintf("FIND ANY %s USING %s IN %s", f.Record, strings.Join(f.Items, ", "), f.Record)
	case FindCurrent:
		return fmt.Sprintf("FIND CURRENT %s WITHIN %s", f.Record, f.Set)
	case FindDuplicate:
		return fmt.Sprintf("FIND DUPLICATE WITHIN %s USING %s IN %s", f.Set, strings.Join(f.Items, ", "), f.Record)
	case FindOwner:
		return fmt.Sprintf("FIND OWNER WITHIN %s", f.Set)
	case FindWithinCurrent:
		return fmt.Sprintf("FIND %s WITHIN %s CURRENT USING %s IN %s", f.Record, f.Set, strings.Join(f.Items, ", "), f.Record)
	default:
		return fmt.Sprintf("FIND %s %s WITHIN %s", f.Kind, f.Record, f.Set)
	}
}

// Get is a GET statement: it moves a previously-found record (or selected
// items of it) into the user work area.
type Get struct {
	Record string   // optional record type
	Items  []string // optional item list (requires Record)
}

func (*Get) stmt() {}

// String renders the statement.
func (g *Get) String() string {
	switch {
	case len(g.Items) > 0:
		return fmt.Sprintf("GET %s IN %s", strings.Join(g.Items, ", "), g.Record)
	case g.Record != "":
		return "GET " + g.Record
	default:
		return "GET"
	}
}

// Store is a STORE statement: create a new record occurrence from the user
// work area and make it the current of the run-unit.
type Store struct {
	Record string
}

func (*Store) stmt() {}

// String renders the statement.
func (s *Store) String() string { return "STORE " + s.Record }

// Connect manually inserts the current of the run-unit into the current
// occurrences of the named sets.
type Connect struct {
	Record string
	Sets   []string
}

func (*Connect) stmt() {}

// String renders the statement.
func (c *Connect) String() string {
	return fmt.Sprintf("CONNECT %s TO %s", c.Record, strings.Join(c.Sets, ", "))
}

// Disconnect detaches the current of the run-unit from the named sets; the
// record remains in the database.
type Disconnect struct {
	Record string
	Sets   []string
}

func (*Disconnect) stmt() {}

// String renders the statement.
func (d *Disconnect) String() string {
	return fmt.Sprintf("DISCONNECT %s FROM %s", d.Record, strings.Join(d.Sets, ", "))
}

// Modify alters the current record of the run-unit: the whole record, or the
// named items only.
type Modify struct {
	Record string
	Items  []string // empty = whole record
}

func (*Modify) stmt() {}

// String renders the statement.
func (m *Modify) String() string {
	if len(m.Items) > 0 {
		return fmt.Sprintf("MODIFY %s IN %s", strings.Join(m.Items, ", "), m.Record)
	}
	return "MODIFY " + m.Record
}

// Erase deletes the current of the run-unit (or, with All, its whole
// hierarchy — rejected by this implementation per Chapter VI.H.2).
type Erase struct {
	Record string
	All    bool
}

func (*Erase) stmt() {}

// String renders the statement.
func (e *Erase) String() string {
	if e.All {
		return "ERASE ALL " + e.Record
	}
	return "ERASE " + e.Record
}

// Move is the host-language assignment initialising a user-work-area field:
// MOVE literal TO item IN record.
type Move struct {
	Value  abdm.Value
	Item   string
	Record string
}

func (*Move) stmt() {}

// String renders the statement.
func (m *Move) String() string {
	return fmt.Sprintf("MOVE %s TO %s IN %s", m.Value, m.Item, m.Record)
}

// Node is one element of a transaction script: a statement or a loop.
type Node interface{ node() }

// StmtNode wraps a statement.
type StmtNode struct{ Stmt Stmt }

func (StmtNode) node() {}

// Loop is PERFORM UNTIL END-OF-SET ... END-PERFORM: the body repeats until a
// FIND inside it runs off the end of its set (or fails to find a record).
type Loop struct{ Body []Node }

func (Loop) node() {}

// Script is a parsed CODASYL-DML transaction.
type Script []Node

// Statements flattens the script, ignoring loop structure. Useful for
// statement-level analysis.
func (s Script) Statements() []Stmt {
	var out []Stmt
	var walk func(nodes []Node)
	walk = func(nodes []Node) {
		for _, n := range nodes {
			switch v := n.(type) {
			case StmtNode:
				out = append(out, v.Stmt)
			case Loop:
				walk(v.Body)
			}
		}
	}
	walk(s)
	return out
}
