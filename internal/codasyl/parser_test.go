package codasyl

import (
	"testing"

	"mlds/internal/abdm"
)

func mustStmt(t *testing.T, line string) Stmt {
	t.Helper()
	st, err := ParseStmt(line)
	if err != nil {
		t.Fatalf("ParseStmt(%q): %v", line, err)
	}
	return st
}

func TestParseFindAny(t *testing.T) {
	st := mustStmt(t, "FIND ANY course USING title IN course")
	f, ok := st.(*Find)
	if !ok || f.Kind != FindAny || f.Record != "course" || len(f.Items) != 1 || f.Items[0] != "title" {
		t.Fatalf("parsed %+v", st)
	}
	st = mustStmt(t, "FIND ANY course USING title, semester IN course")
	f = st.(*Find)
	if len(f.Items) != 2 || f.Items[1] != "semester" {
		t.Errorf("items = %v", f.Items)
	}
	if _, err := ParseStmt("FIND ANY course USING title IN person"); err == nil {
		t.Error("mismatched IN record accepted")
	}
}

func TestParseFindCurrent(t *testing.T) {
	f := mustStmt(t, "FIND CURRENT student WITHIN person_student").(*Find)
	if f.Kind != FindCurrent || f.Record != "student" || f.Set != "person_student" {
		t.Fatalf("parsed %+v", f)
	}
}

func TestParseFindDuplicate(t *testing.T) {
	f := mustStmt(t, "FIND DUPLICATE WITHIN advisor USING major IN student").(*Find)
	if f.Kind != FindDuplicate || f.Set != "advisor" || f.Record != "student" || f.Items[0] != "major" {
		t.Fatalf("parsed %+v", f)
	}
}

func TestParseFindPositional(t *testing.T) {
	cases := map[string]FindKind{
		"FIND FIRST person WITHIN person_student": FindFirst,
		"FIND LAST person WITHIN person_student":  FindLast,
		"FIND NEXT student WITHIN person_student": FindNext,
		"FIND PRIOR student WITHIN advisor":       FindPrior,
	}
	for line, kind := range cases {
		f := mustStmt(t, line).(*Find)
		if f.Kind != kind {
			t.Errorf("%q parsed as %v, want %v", line, f.Kind, kind)
		}
		if f.Set == "" || f.Record == "" {
			t.Errorf("%q lost record/set: %+v", line, f)
		}
	}
}

func TestParseFindOwner(t *testing.T) {
	f := mustStmt(t, "FIND OWNER WITHIN advisor").(*Find)
	if f.Kind != FindOwner || f.Set != "advisor" || f.Record != "" {
		t.Fatalf("parsed %+v", f)
	}
}

func TestParseFindWithinCurrent(t *testing.T) {
	f := mustStmt(t, "FIND student WITHIN advisor CURRENT USING major, gpa IN student").(*Find)
	if f.Kind != FindWithinCurrent || f.Record != "student" || f.Set != "advisor" || len(f.Items) != 2 {
		t.Fatalf("parsed %+v", f)
	}
}

func TestParseGetForms(t *testing.T) {
	if g := mustStmt(t, "GET").(*Get); g.Record != "" || len(g.Items) != 0 {
		t.Errorf("bare GET = %+v", g)
	}
	if g := mustStmt(t, "GET student").(*Get); g.Record != "student" || len(g.Items) != 0 {
		t.Errorf("GET record = %+v", g)
	}
	g := mustStmt(t, "GET major, gpa IN student").(*Get)
	if g.Record != "student" || len(g.Items) != 2 {
		t.Errorf("GET items = %+v", g)
	}
	if _, err := ParseStmt("GET a, b"); err == nil {
		t.Error("GET item list without IN accepted")
	}
}

func TestParseStoreConnectDisconnect(t *testing.T) {
	if s := mustStmt(t, "STORE course").(*Store); s.Record != "course" {
		t.Errorf("STORE = %+v", s)
	}
	c := mustStmt(t, "CONNECT student TO advisor, enrollments").(*Connect)
	if c.Record != "student" || len(c.Sets) != 2 {
		t.Errorf("CONNECT = %+v", c)
	}
	d := mustStmt(t, "DISCONNECT student FROM advisor").(*Disconnect)
	if d.Record != "student" || d.Sets[0] != "advisor" {
		t.Errorf("DISCONNECT = %+v", d)
	}
}

func TestParseModify(t *testing.T) {
	if m := mustStmt(t, "MODIFY course").(*Modify); m.Record != "course" || len(m.Items) != 0 {
		t.Errorf("MODIFY record = %+v", m)
	}
	m := mustStmt(t, "MODIFY title, credits IN course").(*Modify)
	if m.Record != "course" || len(m.Items) != 2 {
		t.Errorf("MODIFY items = %+v", m)
	}
}

func TestParseErase(t *testing.T) {
	if e := mustStmt(t, "ERASE course").(*Erase); e.All || e.Record != "course" {
		t.Errorf("ERASE = %+v", e)
	}
	if e := mustStmt(t, "ERASE ALL course").(*Erase); !e.All {
		t.Errorf("ERASE ALL = %+v", e)
	}
}

func TestParseMove(t *testing.T) {
	m := mustStmt(t, "MOVE 'Advanced Database' TO title IN course").(*Move)
	if m.Item != "title" || m.Record != "course" || m.Value.AsString() != "Advanced Database" {
		t.Fatalf("MOVE = %+v", m)
	}
	m = mustStmt(t, "MOVE 4 TO credits IN course").(*Move)
	if m.Value.Kind() != abdm.KindInt || m.Value.AsInt() != 4 {
		t.Errorf("MOVE int = %+v", m)
	}
	m = mustStmt(t, "MOVE 3.5 TO gpa IN student").(*Move)
	if m.Value.Kind() != abdm.KindFloat {
		t.Errorf("MOVE float = %+v", m)
	}
	// A quoted numeral stays a string.
	m = mustStmt(t, "MOVE '42' TO title IN course").(*Move)
	if m.Value.Kind() != abdm.KindString {
		t.Errorf("quoted numeral = %v", m.Value.Kind())
	}
}

func TestParseStatementErrors(t *testing.T) {
	bad := []string{
		"",
		"FROB x",
		"FIND",
		"FIND ANY",
		"FIND ANY course USING",
		"FIND ANY course USING title",
		"FIND CURRENT student",
		"FIND student WITHIN advisor USING major IN student", // missing CURRENT
		"STORE",
		"CONNECT student advisor",
		"DISCONNECT student TO advisor",
		"MODIFY a, b",
		"ERASE",
		"MOVE TO x IN y",
		"MOVE 'unterminated TO x IN y",
		"GET major, gpa IN student extra",
	}
	for _, line := range bad {
		if _, err := ParseStmt(line); err == nil {
			t.Errorf("ParseStmt(%q) accepted", line)
		}
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	lines := []string{
		"FIND ANY course USING title IN course",
		"FIND CURRENT student WITHIN person_student",
		"FIND DUPLICATE WITHIN advisor USING major IN student",
		"FIND FIRST person WITHIN person_student",
		"FIND OWNER WITHIN advisor",
		"FIND student WITHIN advisor CURRENT USING major IN student",
		"GET",
		"GET student",
		"GET major, gpa IN student",
		"STORE course",
		"CONNECT student TO advisor",
		"DISCONNECT student FROM advisor, enrollments",
		"MODIFY course",
		"MODIFY title IN course",
		"ERASE course",
		"ERASE ALL course",
		"MOVE 'Advanced Database' TO title IN course",
	}
	for _, line := range lines {
		st := mustStmt(t, line)
		again := mustStmt(t, st.String())
		if st.String() != again.String() {
			t.Errorf("round trip unstable: %q -> %q -> %q", line, st, again)
		}
	}
}

func TestParseScriptWithLoop(t *testing.T) {
	src := `
-- locate CS students (thesis Chapter VI.B.4 example)
MOVE 'Computer Science' TO major IN student
FIND ANY student USING major IN student
FIND FIRST person WITHIN person_student
PERFORM UNTIL END-OF-SET
    GET student
    FIND NEXT student WITHIN person_student
END-PERFORM
`
	script, err := ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(script) != 4 {
		t.Fatalf("top-level nodes = %d", len(script))
	}
	loop, ok := script[3].(Loop)
	if !ok || len(loop.Body) != 2 {
		t.Fatalf("loop = %+v", script[3])
	}
	if got := len(script.Statements()); got != 5 {
		t.Errorf("flattened statements = %d, want 5", got)
	}
}

func TestParseScriptErrors(t *testing.T) {
	cases := map[string]string{
		"dangling loop":    "PERFORM UNTIL END-OF-SET\nGET",
		"stray end":        "GET\nEND-PERFORM",
		"empty":            "\n-- nothing\n",
		"bad stmt in loop": "PERFORM UNTIL X\nFROB\nEND-PERFORM",
	}
	for name, src := range cases {
		if _, err := ParseScript(src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseNestedLoops(t *testing.T) {
	src := `
FIND FIRST person WITHIN person_student
PERFORM UNTIL END-OF-SET
    FIND FIRST course WITHIN enrollments
    PERFORM UNTIL END-OF-SET
        GET course
        FIND NEXT course WITHIN enrollments
    END-PERFORM
    FIND NEXT student WITHIN person_student
END-PERFORM
`
	script, err := ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	outer := script[1].(Loop)
	if len(outer.Body) != 3 {
		t.Fatalf("outer body = %d", len(outer.Body))
	}
	if _, ok := outer.Body[1].(Loop); !ok {
		t.Error("nested loop lost")
	}
}

func TestParseFindAnyBare(t *testing.T) {
	f := mustStmt(t, "FIND ANY course").(*Find)
	if f.Kind != FindAny || f.Record != "course" || len(f.Items) != 0 {
		t.Fatalf("parsed %+v", f)
	}
	if f.String() != "FIND ANY course" {
		t.Errorf("String = %q", f.String())
	}
}
