package codasyl

import "testing"

// FuzzParseStmt: the DML statement parser must never panic; accepted
// statements must round-trip through their String form.
func FuzzParseStmt(f *testing.F) {
	for _, seed := range []string{
		"FIND ANY course USING title, semester IN course",
		"FIND ANY course",
		"FIND CURRENT student WITHIN person_student",
		"FIND DUPLICATE WITHIN s USING a IN r",
		"FIND FIRST a WITHIN b",
		"FIND OWNER WITHIN s",
		"FIND r WITHIN s CURRENT USING a, b IN r",
		"GET a, b IN r",
		"STORE r",
		"CONNECT r TO s1, s2",
		"DISCONNECT r FROM s",
		"MODIFY a IN r",
		"ERASE ALL r",
		"MOVE 'it''s' TO a IN r",
		"MOVE -42 TO a IN r",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		st, err := ParseStmt(line)
		if err != nil {
			return
		}
		text := st.String()
		again, err := ParseStmt(text)
		if err != nil {
			t.Fatalf("canonical text rejected: %q: %v", text, err)
		}
		if again.String() != text {
			t.Fatalf("canonical text unstable: %q -> %q", text, again.String())
		}
	})
}

// FuzzParseScript: loop structure parsing must never panic.
func FuzzParseScript(f *testing.F) {
	f.Add("GET\nPERFORM UNTIL END-OF-SET\nGET\nEND-PERFORM\n")
	f.Add("PERFORM UNTIL X\nPERFORM UNTIL Y\nGET\nEND-PERFORM\nEND-PERFORM")
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = ParseScript(src)
	})
}
