package codasyl

import (
	"fmt"
	"strings"

	"mlds/internal/abdm"
)

// ParseScript parses a CODASYL-DML transaction script: one statement per
// line, with optional PERFORM UNTIL END-OF-SET ... END-PERFORM loops. Blank
// lines and lines beginning with "--" or "*" are ignored.
func ParseScript(src string) (Script, error) {
	lines := strings.Split(src, "\n")
	pos := 0
	var parseBlock func(inLoop bool) ([]Node, error)
	parseBlock = func(inLoop bool) ([]Node, error) {
		var nodes []Node
		for pos < len(lines) {
			ln := pos
			line := strings.TrimSpace(lines[pos])
			pos++
			if line == "" || strings.HasPrefix(line, "--") || strings.HasPrefix(line, "*") {
				continue
			}
			upper := strings.ToUpper(line)
			switch {
			case strings.HasPrefix(upper, "PERFORM"):
				body, err := parseBlock(true)
				if err != nil {
					return nil, err
				}
				nodes = append(nodes, Loop{Body: body})
			case upper == "END-PERFORM" || upper == "END PERFORM":
				if !inLoop {
					return nil, fmt.Errorf("codasyl: line %d: END-PERFORM without PERFORM", ln+1)
				}
				return nodes, nil
			default:
				st, err := ParseStmt(line)
				if err != nil {
					return nil, fmt.Errorf("codasyl: line %d: %w", ln+1, err)
				}
				nodes = append(nodes, StmtNode{Stmt: st})
			}
		}
		if inLoop {
			return nil, fmt.Errorf("codasyl: missing END-PERFORM")
		}
		return nodes, nil
	}
	nodes, err := parseBlock(false)
	if err != nil {
		return nil, err
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("codasyl: empty transaction")
	}
	return Script(nodes), nil
}

// ParseStmt parses a single CODASYL-DML statement.
func ParseStmt(line string) (Stmt, error) {
	toks, err := tokenize(line)
	if err != nil {
		return nil, err
	}
	if len(toks) == 0 {
		return nil, fmt.Errorf("empty statement")
	}
	p := &stmtParser{toks: toks}
	st, err := p.parse()
	if err != nil {
		return nil, err
	}
	if !p.done() {
		return nil, fmt.Errorf("trailing input after statement: %q", p.peek())
	}
	return st, nil
}

// wordTok is a lexical token: a bare word, a quoted literal, or punctuation.
type wordTok struct {
	text   string
	quoted bool
}

func tokenize(line string) ([]wordTok, error) {
	var out []wordTok
	i := 0
	for i < len(line) {
		c := line[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == ',':
			out = append(out, wordTok{text: ","})
			i++
		case c == '\'':
			i++
			var b strings.Builder
			for {
				if i >= len(line) {
					return nil, fmt.Errorf("unterminated string literal")
				}
				if line[i] == '\'' {
					if i+1 < len(line) && line[i+1] == '\'' {
						b.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				b.WriteByte(line[i])
				i++
			}
			out = append(out, wordTok{text: b.String(), quoted: true})
		default:
			start := i
			for i < len(line) && line[i] != ' ' && line[i] != '\t' && line[i] != ',' {
				i++
			}
			out = append(out, wordTok{text: line[start:i]})
		}
	}
	return out, nil
}

type stmtParser struct {
	toks []wordTok
	pos  int
}

func (p *stmtParser) done() bool { return p.pos >= len(p.toks) }

func (p *stmtParser) peek() string {
	if p.done() {
		return ""
	}
	return p.toks[p.pos].text
}

// eat consumes the next token if it equals the keyword (case-insensitive,
// unquoted).
func (p *stmtParser) eat(word string) bool {
	if p.done() || p.toks[p.pos].quoted || !strings.EqualFold(p.toks[p.pos].text, word) {
		return false
	}
	p.pos++
	return true
}

func (p *stmtParser) expect(word string) error {
	if !p.eat(word) {
		return fmt.Errorf("expected %q, found %q", word, p.peek())
	}
	return nil
}

func (p *stmtParser) name(what string) (string, error) {
	if p.done() || p.toks[p.pos].text == "," {
		return "", fmt.Errorf("expected %s", what)
	}
	t := p.toks[p.pos]
	p.pos++
	return t.text, nil
}

// nameList parses name [, name]*.
func (p *stmtParser) nameList(what string) ([]string, error) {
	var out []string
	for {
		n, err := p.name(what)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
		if !p.done() && p.toks[p.pos].text == "," {
			p.pos++
			continue
		}
		return out, nil
	}
}

func (p *stmtParser) parse() (Stmt, error) {
	switch {
	case p.eat("FIND"):
		return p.parseFind()
	case p.eat("GET"):
		return p.parseGet()
	case p.eat("STORE"):
		rec, err := p.name("record type")
		if err != nil {
			return nil, err
		}
		return &Store{Record: rec}, nil
	case p.eat("CONNECT"):
		rec, err := p.name("record type")
		if err != nil {
			return nil, err
		}
		if err := p.expect("TO"); err != nil {
			return nil, err
		}
		sets, err := p.nameList("set type")
		if err != nil {
			return nil, err
		}
		return &Connect{Record: rec, Sets: sets}, nil
	case p.eat("DISCONNECT"):
		rec, err := p.name("record type")
		if err != nil {
			return nil, err
		}
		if err := p.expect("FROM"); err != nil {
			return nil, err
		}
		sets, err := p.nameList("set type")
		if err != nil {
			return nil, err
		}
		return &Disconnect{Record: rec, Sets: sets}, nil
	case p.eat("MODIFY"):
		names, err := p.nameList("record type or item")
		if err != nil {
			return nil, err
		}
		if p.eat("IN") {
			rec, err := p.name("record type")
			if err != nil {
				return nil, err
			}
			return &Modify{Record: rec, Items: names}, nil
		}
		if len(names) != 1 {
			return nil, fmt.Errorf("MODIFY with an item list requires IN record_type")
		}
		return &Modify{Record: names[0]}, nil
	case p.eat("ERASE"):
		all := p.eat("ALL")
		rec, err := p.name("record type")
		if err != nil {
			return nil, err
		}
		return &Erase{Record: rec, All: all}, nil
	case p.eat("MOVE"):
		return p.parseMove()
	default:
		return nil, fmt.Errorf("unknown statement %q", p.peek())
	}
}

func (p *stmtParser) parseFind() (Stmt, error) {
	switch {
	case p.eat("ANY"):
		rec, err := p.name("record type")
		if err != nil {
			return nil, err
		}
		// The USING clause is optional: bare FIND ANY locates any record of
		// the type.
		if p.done() {
			return &Find{Kind: FindAny, Record: rec}, nil
		}
		if err := p.expect("USING"); err != nil {
			return nil, err
		}
		items, err := p.nameList("item")
		if err != nil {
			return nil, err
		}
		if err := p.expect("IN"); err != nil {
			return nil, err
		}
		rec2, err := p.name("record type")
		if err != nil {
			return nil, err
		}
		if rec2 != rec {
			return nil, fmt.Errorf("FIND ANY: USING ... IN %s does not match record type %s", rec2, rec)
		}
		return &Find{Kind: FindAny, Record: rec, Items: items}, nil
	case p.eat("CURRENT"):
		rec, err := p.name("record type")
		if err != nil {
			return nil, err
		}
		if err := p.expect("WITHIN"); err != nil {
			return nil, err
		}
		set, err := p.name("set type")
		if err != nil {
			return nil, err
		}
		return &Find{Kind: FindCurrent, Record: rec, Set: set}, nil
	case p.eat("DUPLICATE"):
		if err := p.expect("WITHIN"); err != nil {
			return nil, err
		}
		set, err := p.name("set type")
		if err != nil {
			return nil, err
		}
		if err := p.expect("USING"); err != nil {
			return nil, err
		}
		items, err := p.nameList("item")
		if err != nil {
			return nil, err
		}
		if err := p.expect("IN"); err != nil {
			return nil, err
		}
		rec, err := p.name("record type")
		if err != nil {
			return nil, err
		}
		return &Find{Kind: FindDuplicate, Record: rec, Set: set, Items: items}, nil
	case p.eat("OWNER"):
		if err := p.expect("WITHIN"); err != nil {
			return nil, err
		}
		set, err := p.name("set type")
		if err != nil {
			return nil, err
		}
		return &Find{Kind: FindOwner, Set: set}, nil
	case p.eat("FIRST"), p.eat("LAST"), p.eat("NEXT"), p.eat("PRIOR"):
		kind := map[string]FindKind{
			"FIRST": FindFirst, "LAST": FindLast, "NEXT": FindNext, "PRIOR": FindPrior,
		}[strings.ToUpper(p.toks[p.pos-1].text)]
		rec, err := p.name("record type")
		if err != nil {
			return nil, err
		}
		if err := p.expect("WITHIN"); err != nil {
			return nil, err
		}
		set, err := p.name("set type")
		if err != nil {
			return nil, err
		}
		return &Find{Kind: kind, Record: rec, Set: set}, nil
	default:
		// FIND record WITHIN set CURRENT USING items IN record
		rec, err := p.name("record type")
		if err != nil {
			return nil, err
		}
		if err := p.expect("WITHIN"); err != nil {
			return nil, err
		}
		set, err := p.name("set type")
		if err != nil {
			return nil, err
		}
		if err := p.expect("CURRENT"); err != nil {
			return nil, err
		}
		if err := p.expect("USING"); err != nil {
			return nil, err
		}
		items, err := p.nameList("item")
		if err != nil {
			return nil, err
		}
		if err := p.expect("IN"); err != nil {
			return nil, err
		}
		if _, err := p.name("record type"); err != nil {
			return nil, err
		}
		return &Find{Kind: FindWithinCurrent, Record: rec, Set: set, Items: items}, nil
	}
}

func (p *stmtParser) parseGet() (Stmt, error) {
	if p.done() {
		return &Get{}, nil
	}
	names, err := p.nameList("record type or item")
	if err != nil {
		return nil, err
	}
	if p.eat("IN") {
		rec, err := p.name("record type")
		if err != nil {
			return nil, err
		}
		return &Get{Record: rec, Items: names}, nil
	}
	if len(names) != 1 {
		return nil, fmt.Errorf("GET with an item list requires IN record_type")
	}
	return &Get{Record: names[0]}, nil
}

func (p *stmtParser) parseMove() (Stmt, error) {
	if p.done() {
		return nil, fmt.Errorf("MOVE requires a value")
	}
	t := p.toks[p.pos]
	p.pos++
	var val abdm.Value
	if t.quoted {
		val = abdm.String(t.text)
	} else {
		val = abdm.InferValue(t.text)
	}
	if err := p.expect("TO"); err != nil {
		return nil, err
	}
	item, err := p.name("item")
	if err != nil {
		return nil, err
	}
	if err := p.expect("IN"); err != nil {
		return nil, err
	}
	rec, err := p.name("record type")
	if err != nil {
		return nil, err
	}
	return &Move{Value: val, Item: item, Record: rec}, nil
}
