package mbds

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
)

// retrieveNames fetches every employee name in the system, deduplicated by
// the merge path exactly as a client would see it.
func nameCounts(t *testing.T, s *System) map[string]int {
	t.Helper()
	res, err := s.Exec(abdl.NewRetrieve(nil, abdl.AllAttrs))
	if err != nil {
		t.Fatalf("retrieve: %v", err)
	}
	out := make(map[string]int)
	for _, sr := range res.Records {
		v, _ := sr.Rec.Get("name")
		out[v.AsString()]++
	}
	return out
}

// checkExact asserts the system holds exactly the n loadEmployees records,
// each once.
func checkExact(t *testing.T, s *System, n int) {
	t.Helper()
	names := nameCounts(t, s)
	if len(names) != n {
		t.Fatalf("retrieve sees %d distinct records, want %d", len(names), n)
	}
	for name, c := range names {
		if c != 1 {
			t.Fatalf("record %q returned %d times, want 1", name, c)
		}
	}
}

// TestAddBackendJoins: a joined backend advances the epoch and takes a share
// of new inserts, without disturbing existing data.
func TestAddBackendJoins(t *testing.T) {
	s := newSystem(t, 2)
	loadEmployees(t, s, 40)
	e0 := s.MembershipEpoch()
	pos, err := s.AddBackend()
	if err != nil {
		t.Fatal(err)
	}
	if pos != 2 || s.Backends() != 3 {
		t.Fatalf("joined at position %d with %d backends, want 2 and 3", pos, s.Backends())
	}
	if e := s.MembershipEpoch(); e != e0+1 {
		t.Fatalf("epoch %d after join, want %d", e, e0+1)
	}
	for i := 40; i < 70; i++ {
		rec := abdm.NewRecord("employee",
			abdm.Keyword{Attr: "name", Val: abdm.String(fmt.Sprintf("emp%04d", i))},
			abdm.Keyword{Attr: "dept", Val: abdm.String("CS")},
			abdm.Keyword{Attr: "salary", Val: abdm.Int(1)})
		if _, err := s.Exec(abdl.NewInsert(rec)); err != nil {
			t.Fatal(err)
		}
	}
	if sizes := s.PartitionSizes(); sizes[2] == 0 {
		t.Fatalf("new backend took no inserts: %v", sizes)
	}
	checkExact(t, s, 70)
}

// TestRebalanceFillsNewBackend: after Rebalance the joined backend holds its
// modulus share of existing keys and reads stay exact.
func TestRebalanceFillsNewBackend(t *testing.T) {
	s := newSystem(t, 2)
	loadEmployees(t, s, 60)
	pos, err := s.AddBackend()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Rebalance(pos); err != nil {
		t.Fatal(err)
	}
	sizes := s.PartitionSizes()
	if sizes[pos] < 10 {
		t.Fatalf("rebalance moved too little onto the new backend: %v", sizes)
	}
	if total := sizes[0] + sizes[1] + sizes[2]; total != 60 {
		t.Fatalf("rebalance changed the copy count: %v sums to %d, want 60", sizes, total)
	}
	checkExact(t, s, 60)
	if st := s.MigrationStats(); st.Keys == 0 || st.Bytes == 0 {
		t.Fatalf("migration counters not advanced: %+v", st)
	}
}

// TestDrainBackendPreservesData: draining moves every record — and its MVCC
// history — off the backend before retiring it.
func TestDrainBackendPreservesData(t *testing.T) {
	s := newSystem(t, 3)
	loadEmployees(t, s, 60)
	e0 := s.MembershipEpoch()
	if err := s.DrainBackend(1); err != nil {
		t.Fatal(err)
	}
	if s.Backends() != 2 {
		t.Fatalf("%d backends after drain, want 2", s.Backends())
	}
	if e := s.MembershipEpoch(); e <= e0 {
		t.Fatalf("epoch did not advance across drain: %d -> %d", e0, e)
	}
	if got := s.Len(); got != 60 {
		t.Fatalf("Len = %d after drain, want 60", got)
	}
	checkExact(t, s, 60)
	// Draining the last backend is refused.
	if err := s.DrainBackend(0); err != nil {
		t.Fatal(err)
	}
	if err := s.DrainBackend(0); err == nil {
		t.Fatal("draining the last backend succeeded")
	}
}

// TestDrainUnderLiveWrites: a drain under a concurrent insert workload loses
// no requests and no records — the ISSUE's zero-failed-requests criterion.
func TestDrainUnderLiveWrites(t *testing.T) {
	s := newSystem(t, 3)
	loadEmployees(t, s, 30)

	var wg sync.WaitGroup
	var failures, inserted atomic.Int64
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rec := abdm.NewRecord("employee",
					abdm.Keyword{Attr: "name", Val: abdm.String(fmt.Sprintf("live-%d-%d", w, i))},
					abdm.Keyword{Attr: "dept", Val: abdm.String("EE")},
					abdm.Keyword{Attr: "salary", Val: abdm.Int(int64(i))})
				if _, err := s.Exec(abdl.NewInsert(rec)); err != nil {
					failures.Add(1)
					return
				}
				inserted.Add(1)
			}
		}(w)
	}

	if err := s.DrainBackend(2); err != nil {
		t.Fatal(err)
	}
	if err := s.DrainBackend(1); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	if f := failures.Load(); f != 0 {
		t.Fatalf("%d requests failed during the drains", f)
	}
	want := 30 + int(inserted.Load())
	checkExact(t, s, want)
	if got := s.Len(); got != want {
		t.Fatalf("Len = %d after drains, want %d", got, want)
	}
}

// TestRemoveBackendPromotes: with one replica, losing a backend outright
// loses no committed record — its keys are promoted to the ring successor and
// the replication factor is restored in the background.
func TestRemoveBackendPromotes(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Replicas = 1
	s, err := New(testDir(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	loadEmployees(t, s, 60)
	if got := s.Len(); got != 120 {
		t.Fatalf("Len = %d with one replica, want 120", got)
	}

	if err := s.RemoveBackend(1); err != nil {
		t.Fatal(err)
	}
	checkExact(t, s, 60)
	if st := s.MigrationStats(); st.Promotions != 1 {
		t.Fatalf("promotions = %d, want 1", st.Promotions)
	}
	// Background re-replication restores two copies of every record.
	deadline := time.Now().Add(10 * time.Second)
	for s.Len() != 120 {
		if time.Now().After(deadline) {
			t.Fatalf("replication factor not restored: Len = %d, want 120 (sizes %v)",
				s.Len(), s.PartitionSizes())
		}
		time.Sleep(10 * time.Millisecond)
	}
	checkExact(t, s, 60)
}

// TestFailoverMonitorPromotes: a backend whose breaker sticks open past
// FailoverAfter is removed automatically and reads keep answering exactly.
func TestFailoverMonitorPromotes(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Replicas = 1
	cfg.FaultInjection = true
	cfg.BreakerThreshold = 2
	cfg.MaxRetries = 0
	cfg.ProbePeriod = time.Hour // no half-open probes: the breaker stays open
	cfg.FailoverAfter = 50 * time.Millisecond
	cfg.FailoverCheck = 10 * time.Millisecond
	s, err := New(testDir(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	loadEmployees(t, s, 40)

	s.Fault(2).Fail(true)
	// Trip the breaker: broadcasts fail against backend 2 but succeed
	// overall (one replica tolerates one down backend).
	for i := 0; i < 3; i++ {
		if _, err := s.Exec(abdl.NewRetrieve(nil, abdl.AllAttrs)); err != nil {
			t.Fatalf("degraded read failed: %v", err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Backends() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("failover monitor never removed the dead backend (health %v)", s.Health())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := s.MigrationStats(); st.Promotions != 1 {
		t.Fatalf("promotions = %d, want 1", st.Promotions)
	}
	checkExact(t, s, 40)
}

// TestPlacedMapBounded: the sticky-placement map grows with replicated
// inserts and shrinks when aborts and watermark GC remove whole chains.
func TestPlacedMapBounded(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Replicas = 1
	s, err := New(testDir(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	// An aborted insert: its only history is the aborted transaction, so the
	// MVCC-ABORT broadcast empties the chain and evicts the placement.
	ins := abdl.NewInsert(abdm.NewRecord("employee",
		abdm.Keyword{Attr: "name", Val: abdm.String("ghost")},
		abdm.Keyword{Attr: "dept", Val: abdm.String("CS")},
		abdm.Keyword{Attr: "salary", Val: abdm.Int(1)}))
	ins.TxnID = 77
	if _, err := s.Exec(ins); err != nil {
		t.Fatal(err)
	}
	if s.PlacedKeys() != 1 {
		t.Fatalf("PlacedKeys = %d after replicated insert, want 1", s.PlacedKeys())
	}
	if _, err := s.Exec(&abdl.Request{Kind: abdl.MvccAbort, TxnID: 77}); err != nil {
		t.Fatal(err)
	}
	if s.PlacedKeys() != 0 {
		t.Fatalf("PlacedKeys = %d after abort emptied the chain, want 0", s.PlacedKeys())
	}

	// A committed insert-then-delete: once the watermark passes the delete,
	// GC removes the tombstone-terminated chain and evicts the placement.
	loadEmployees(t, s, 10)
	if s.PlacedKeys() != 10 {
		t.Fatalf("PlacedKeys = %d after 10 replicated inserts, want 10", s.PlacedKeys())
	}
	del := abdl.NewDelete(abdm.And(abdm.Predicate{
		Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("employee")}))
	del.TxnID = 78
	if _, err := s.Exec(del); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(&abdl.Request{Kind: abdl.MvccCommit, TxnID: 78, MvccEpoch: 50}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(&abdl.Request{Kind: abdl.MvccGC, MvccEpoch: 51}); err != nil {
		t.Fatal(err)
	}
	if s.PlacedKeys() != 0 {
		t.Fatalf("PlacedKeys = %d after GC pruned every chain, want 0", s.PlacedKeys())
	}
}

// TestDrainWithReplicas: draining under replication keeps every key at full
// copy count on the survivors.
func TestDrainWithReplicas(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Replicas = 1
	s, err := New(testDir(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	loadEmployees(t, s, 40)
	if got := s.Len(); got != 80 {
		t.Fatalf("Len = %d, want 80", got)
	}
	if err := s.DrainBackend(1); err != nil {
		t.Fatal(err)
	}
	checkExact(t, s, 40)
	if got := s.Len(); got != 80 {
		t.Fatalf("Len = %d after drain, want 80 (sizes %v)", got, s.PartitionSizes())
	}
}
