package mbds

import (
	"fmt"
	"testing"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
)

func employee(i int) *abdm.Record {
	return abdm.NewRecord("employee",
		abdm.Keyword{Attr: "name", Val: abdm.String(fmt.Sprintf("emp%03d", i))},
		abdm.Keyword{Attr: "dept", Val: abdm.String([]string{"CS", "EE"}[i%2])},
		abdm.Keyword{Attr: "salary", Val: abdm.Int(int64(1000 + i))})
}

func TestExecBatchBulkInsertAndRetrieve(t *testing.T) {
	s := newSystem(t, 3)
	reqs := make([]*abdl.Request, 0, 31)
	for i := 0; i < 30; i++ {
		reqs = append(reqs, abdl.NewInsert(employee(i)))
	}
	q := abdm.And(abdm.Predicate{Attr: "dept", Op: abdm.OpEq, Val: abdm.String("CS")})
	reqs = append(reqs, abdl.NewRetrieve(q, abdl.AllAttrs))

	results, simt, err := s.ExecBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(reqs) {
		t.Fatalf("batch returned %d results for %d requests", len(results), len(reqs))
	}
	for i := 0; i < 30; i++ {
		if results[i].Count != 1 {
			t.Fatalf("insert %d: Count = %d, want 1", i, results[i].Count)
		}
	}
	if got := len(results[30].Records); got != 15 {
		t.Fatalf("batched retrieve saw %d CS employees, want 15", got)
	}
	if s.Len() != 30 {
		t.Fatalf("system holds %d records, want 30", s.Len())
	}
	if simt <= 0 {
		t.Fatalf("simulated batch time = %v, want > 0", simt)
	}

	// The batched round pays bus latency once and overlaps the backends'
	// disk work, so it must undercut running the same requests one at a time.
	seq := newSystem(t, 3)
	var seqTotal time.Duration
	for i := 0; i < 30; i++ {
		_, st, err := seq.ExecTimed(abdl.NewInsert(employee(i)))
		if err != nil {
			t.Fatal(err)
		}
		seqTotal += st
	}
	_, st, err := seq.ExecTimed(abdl.NewRetrieve(q, abdl.AllAttrs))
	if err != nil {
		t.Fatal(err)
	}
	seqTotal += st
	if simt >= seqTotal {
		t.Fatalf("batched sim time %v did not beat sequential %v", simt, seqTotal)
	}
}

func TestExecBatchMatchesSequentialResults(t *testing.T) {
	seq := newSystem(t, 3)
	bat := newSystem(t, 3)
	var reqs []*abdl.Request
	for i := 0; i < 20; i++ {
		reqs = append(reqs, abdl.NewInsert(employee(i)))
	}
	for _, req := range reqs {
		if _, err := seq.Exec(req); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := bat.ExecBatch(reqs); err != nil {
		t.Fatal(err)
	}

	q := abdm.And(abdm.Predicate{Attr: "salary", Op: abdm.OpGe, Val: abdm.Int(1010)})
	probe := abdl.NewRetrieve(q, "name", "salary")
	a, err := seq.Exec(probe)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bat.Exec(probe)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatalf("sequential load answers %d records, batched load %d", len(a.Records), len(b.Records))
	}
	// Batched inserts execute concurrently across backends, so database keys
	// (and with them result order) may differ — compare the answer as a set.
	got := make(map[string]bool)
	want := make(map[string]bool)
	for i := range a.Records {
		v, _ := a.Records[i].Rec.Get("name")
		want[v.AsString()] = true
		v, _ = b.Records[i].Rec.Get("name")
		got[v.AsString()] = true
	}
	for n := range want {
		if !got[n] {
			t.Fatalf("batched load is missing %q", n)
		}
	}
}

func TestExecBatchMixedMutations(t *testing.T) {
	s := newSystem(t, 2)
	loadEmployees(t, s, 10)
	q := func(name string) abdm.Query {
		return abdm.And(abdm.Predicate{Attr: "name", Op: abdm.OpEq, Val: abdm.String(name)})
	}
	reqs := []*abdl.Request{
		abdl.NewUpdate(q("emp0001"), abdl.Modifier{Attr: "salary", Val: abdm.Int(9999)}),
		abdl.NewDelete(q("emp0002")),
		abdl.NewRetrieve(q("emp0001"), abdl.AllAttrs),
	}
	results, _, err := s.ExecBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Count != 1 {
		t.Fatalf("batched update affected %d records, want 1", results[0].Count)
	}
	if results[1].Count != 1 {
		t.Fatalf("batched delete affected %d records, want 1", results[1].Count)
	}
	if len(results[2].Records) != 1 {
		t.Fatalf("batched retrieve saw %d records, want 1", len(results[2].Records))
	}
	// Requests execute in order within each backend's sub-batch, so the
	// retrieve observes the earlier update.
	if v, _ := results[2].Records[0].Rec.Get("salary"); v.AsInt() != 9999 {
		t.Fatalf("batched retrieve saw salary %d, want the batched update's 9999", v.AsInt())
	}
	if s.Len() != 9 {
		t.Fatalf("system holds %d records after batched delete, want 9", s.Len())
	}
}

func TestExecBatchReplicatedInserts(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Replicas = 1
	s, err := New(testDir(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	var reqs []*abdl.Request
	for i := 0; i < 12; i++ {
		reqs = append(reqs, abdl.NewInsert(employee(i)))
	}
	results, _, err := s.ExecBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Count != 1 {
			t.Fatalf("replicated insert %d: Count = %d, want 1 logical record", i, res.Count)
		}
	}
	// Each record lands on 2 backends.
	if s.Len() != 24 {
		t.Fatalf("copies across backends = %d, want 24", s.Len())
	}
	// Reads dedup the copies.
	res, err := s.Exec(abdl.NewRetrieve(nil, abdl.AllAttrs))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 12 {
		t.Fatalf("deduped retrieve saw %d records, want 12", len(res.Records))
	}
}

func TestExecBatchValidatesUpfront(t *testing.T) {
	s := newSystem(t, 2)
	loadEmployees(t, s, 4)
	reqs := []*abdl.Request{
		abdl.NewDelete(abdm.And(abdm.Predicate{Attr: "name", Op: abdm.OpEq, Val: abdm.String("emp000")})),
		{Kind: abdl.Delete}, // invalid: no query
	}
	if _, _, err := s.ExecBatch(reqs); err == nil {
		t.Fatal("batch with an invalid request succeeded")
	}
	// Upfront validation rejects the whole batch before anything executes.
	if s.Len() != 4 {
		t.Fatalf("invalid batch still mutated the store: Len = %d, want 4", s.Len())
	}
}

func TestExecBatchClosed(t *testing.T) {
	s := newSystem(t, 1)
	s.Close()
	if _, _, err := s.ExecBatch([]*abdl.Request{abdl.NewInsert(employee(0))}); err != ErrClosed {
		t.Fatalf("ExecBatch on closed system: %v, want ErrClosed", err)
	}
}

func TestExecBatchEmpty(t *testing.T) {
	s := newSystem(t, 2)
	results, simt, err := s.ExecBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 || simt != 0 {
		t.Fatalf("empty batch: %d results, %v sim time", len(results), simt)
	}
}

func TestExecBatchSerialAblation(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Serial = true
	cfg.MsgLatency = time.Millisecond
	s, err := New(testDir(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	var reqs []*abdl.Request
	for i := 0; i < 8; i++ {
		reqs = append(reqs, abdl.NewInsert(employee(i)))
	}
	results, _, err := s.ExecBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 || s.Len() != 8 {
		t.Fatalf("serial batch: %d results, %d records", len(results), s.Len())
	}
}
