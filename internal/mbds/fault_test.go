package mbds

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/kdb"
)

// faultyConfig is the test policy: fault injection on, tight deadlines,
// fast retries and probes so breaker transitions happen within the test.
func faultyConfig(n, replicas int) Config {
	cfg := DefaultConfig(n)
	cfg.FaultInjection = true
	cfg.Replicas = replicas
	cfg.RequestTimeout = 100 * time.Millisecond
	cfg.MaxRetries = 2
	cfg.RetryBackoff = time.Millisecond
	cfg.BreakerThreshold = 3
	cfg.ProbePeriod = time.Millisecond
	return cfg
}

func newFaultySystem(t *testing.T, n, replicas int) *System {
	t.Helper()
	s, err := New(testDir(t), faultyConfig(n, replicas))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// retrieveNames returns the sorted employee names a full retrieve sees.
func retrieveNames(t *testing.T, s *System) []string {
	t.Helper()
	res, err := s.Exec(abdl.NewRetrieve(abdm.And(
		abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("employee")},
	), "name"))
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(res.Records))
	for _, sr := range res.Records {
		v, _ := sr.Rec.Get("name")
		names = append(names, v.AsString())
	}
	sort.Strings(names)
	return names
}

// recoverBackend clears backend i's fault and drives a probe until the
// breaker closes again.
func recoverBackend(t *testing.T, s *System, i int) {
	t.Helper()
	s.Fault(i).SetPlan(nil)
	for attempt := 0; attempt < 50; attempt++ {
		time.Sleep(2 * time.Millisecond)
		retrieveNames(t, s)
		if s.Health()[i].Up {
			return
		}
	}
	t.Fatalf("backend %d did not recover: %v", i, s.Health()[i])
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFaultyExecutorSelection(t *testing.T) {
	dir := testDir(t)
	store := kdb.NewStore(dir.Clone())
	f := NewFaultyExecutor(store)
	probe := abdl.NewRetrieve(nil, abdl.AllAttrs)

	// Healthy by default.
	if _, err := f.Exec(probe); err != nil {
		t.Fatalf("healthy exec: %v", err)
	}

	// Every 3rd request fails.
	f.SetPlan(&FaultPlan{Mode: FaultErr, EveryN: 3})
	var failed int
	for i := 0; i < 9; i++ {
		if _, err := f.Exec(probe); err != nil {
			var inj *InjectedError
			if !errors.As(err, &inj) {
				t.Fatalf("unexpected error type: %v", err)
			}
			failed++
		}
	}
	if failed != 3 || f.Injected() != 3 {
		t.Fatalf("EveryN=3 over 9 requests: failed=%d injected=%d", failed, f.Injected())
	}

	// Fraction selection is deterministic under a fixed seed.
	countFor := func(seed uint64) int {
		g := NewFaultyExecutor(store)
		g.SetPlan(&FaultPlan{Mode: FaultDrop, Fraction: 0.5, Seed: seed})
		n := 0
		for i := 0; i < 200; i++ {
			if _, err := g.Exec(probe); err != nil {
				n++
			}
		}
		return n
	}
	a, b := countFor(42), countFor(42)
	if a != b {
		t.Fatalf("same seed, different injections: %d vs %d", a, b)
	}
	if a < 60 || a > 140 {
		t.Fatalf("fraction 0.5 injected %d/200", a)
	}

	// Delay mode executes the request after the pause.
	f.SetPlan(&FaultPlan{Mode: FaultDelay, EveryN: 1, Delay: time.Millisecond})
	start := time.Now()
	if _, err := f.Exec(probe); err != nil {
		t.Fatalf("delay exec: %v", err)
	}
	if time.Since(start) < time.Millisecond {
		t.Error("delay fault did not delay")
	}
}

func TestBroadcastToleratesErroringBackend(t *testing.T) {
	s := newFaultySystem(t, 4, 1)
	loadEmployees(t, s, 60)
	healthy := retrieveNames(t, s)
	if len(healthy) != 60 {
		t.Fatalf("healthy retrieve = %d records", len(healthy))
	}

	s.Fault(1).Fail(true)
	degraded := retrieveNames(t, s)
	if !equalStrings(healthy, degraded) {
		t.Fatalf("degraded retrieve differs: %d vs %d records", len(healthy), len(degraded))
	}

	// Aggregates must be computed over deduplicated records.
	agg, err := s.Exec(&abdl.Request{
		Kind:  abdl.Retrieve,
		Query: abdm.And(abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("employee")}),
		Target: []abdl.TargetItem{
			{Agg: abdl.AggCount, Attr: "name"},
			{Agg: abdl.AggAvg, Attr: "salary"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := agg.Groups[0].Aggs[0].Val.AsInt(); got != 60 {
		t.Errorf("degraded COUNT = %d, want 60", got)
	}
	wantAvg := 30000.0 + 100*59.0/2
	if got := agg.Groups[0].Aggs[1].Val.AsFloat(); got != wantAvg {
		t.Errorf("degraded AVG = %v, want %v", got, wantAvg)
	}

	// Group-by must dedup group members too.
	byDept, err := s.Exec(abdl.NewRetrieve(abdm.And(
		abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("employee")},
	), abdl.AllAttrs).WithBy("dept"))
	if err != nil {
		t.Fatal(err)
	}
	if len(byDept.Groups) != 4 {
		t.Fatalf("degraded groups = %d", len(byDept.Groups))
	}
	for _, g := range byDept.Groups {
		if len(g.Recs) != 15 {
			t.Errorf("degraded group %v has %d records, want 15", g.By, len(g.Recs))
		}
	}
	recoverBackend(t, s, 1)
}

func TestBroadcastHangingBackendDeadline(t *testing.T) {
	s := newFaultySystem(t, 3, 1)
	loadEmployees(t, s, 30)
	healthy := retrieveNames(t, s)

	s.Fault(2).SetPlan(&FaultPlan{Mode: FaultHang, EveryN: 1})
	start := time.Now()
	degraded := retrieveNames(t, s)
	elapsed := time.Since(start)
	if !equalStrings(healthy, degraded) {
		t.Fatalf("retrieve with hung backend lost records: %d vs %d", len(healthy), len(degraded))
	}
	// One deadline per attempt, MaxRetries+1 attempts, plus slack.
	if limit := 3 * 4 * 100 * time.Millisecond; elapsed > limit {
		t.Errorf("hung-backend retrieve took %v, want < %v", elapsed, limit)
	}
	recoverBackend(t, s, 2)
}

func TestFlappingBackendRetriesRecover(t *testing.T) {
	s := newFaultySystem(t, 4, 1)
	loadEmployees(t, s, 40)
	healthy := retrieveNames(t, s)

	// Backend 0 drops ~40% of requests, deterministically.
	s.Fault(0).SetPlan(&FaultPlan{Mode: FaultDrop, Fraction: 0.4, Seed: 7})
	for i := 0; i < 30; i++ {
		got := retrieveNames(t, s)
		if !equalStrings(healthy, got) {
			t.Fatalf("iteration %d: flapping backend lost records: %d vs %d", i, len(healthy), len(got))
		}
	}

	// Inserts keep succeeding while backend 0 flaps: every record has a
	// healthy replica holder.
	for i := 0; i < 20; i++ {
		rec := abdm.NewRecord("employee",
			abdm.Keyword{Attr: "name", Val: abdm.String(fmt.Sprintf("flap%02d", i))},
			abdm.Keyword{Attr: "dept", Val: abdm.String("CS")},
			abdm.Keyword{Attr: "salary", Val: abdm.Int(1)},
		)
		if _, err := s.Exec(abdl.NewInsert(rec)); err != nil {
			t.Fatalf("insert %d during flapping: %v", i, err)
		}
	}
	recoverBackend(t, s, 0)
	if got := retrieveNames(t, s); len(got) != 60 {
		t.Fatalf("after flapping: %d records, want 60", len(got))
	}
	h := s.Health()[0]
	if h.Retries == 0 {
		t.Error("flapping produced no retries")
	}
}

func TestReplicaInvariantWithDownBackends(t *testing.T) {
	// The MBDS transparency invariant, extended: identical results with up
	// to Replicas backends forced down.
	t.Run("replicas=1 any single backend down", func(t *testing.T) {
		s := newFaultySystem(t, 4, 1)
		loadEmployees(t, s, 80)
		healthy := retrieveNames(t, s)
		for down := 0; down < 4; down++ {
			s.Fault(down).Fail(true)
			if got := retrieveNames(t, s); !equalStrings(healthy, got) {
				t.Fatalf("backend %d down: %d records, want %d", down, len(got), len(healthy))
			}
			recoverBackend(t, s, down)
		}
	})
	t.Run("replicas=2 any backend pair down", func(t *testing.T) {
		s := newFaultySystem(t, 5, 2)
		loadEmployees(t, s, 50)
		healthy := retrieveNames(t, s)
		for _, pair := range [][2]int{{0, 1}, {1, 3}, {2, 4}} {
			s.Fault(pair[0]).Fail(true)
			s.Fault(pair[1]).Fail(true)
			if got := retrieveNames(t, s); !equalStrings(healthy, got) {
				t.Fatalf("backends %v down: %d records, want %d", pair, len(got), len(healthy))
			}
			recoverBackend(t, s, pair[0])
			recoverBackend(t, s, pair[1])
		}
	})
}

func TestInsertsDuringDowntimeSurvive(t *testing.T) {
	s := newFaultySystem(t, 3, 1)
	loadEmployees(t, s, 12)

	s.Fault(1).Fail(true)
	for i := 0; i < 9; i++ {
		rec := abdm.NewRecord("employee",
			abdm.Keyword{Attr: "name", Val: abdm.String(fmt.Sprintf("down%02d", i))},
			abdm.Keyword{Attr: "dept", Val: abdm.String("EE")},
			abdm.Keyword{Attr: "salary", Val: abdm.Int(int64(i))},
		)
		if _, err := s.Exec(abdl.NewInsert(rec)); err != nil {
			t.Fatalf("insert %d with backend down: %v", i, err)
		}
	}
	if got := retrieveNames(t, s); len(got) != 21 {
		t.Fatalf("degraded retrieve after inserts = %d, want 21", len(got))
	}
	recoverBackend(t, s, 1)
	// The recovered backend missed the downtime inserts; the surviving
	// copies still answer for them.
	if got := retrieveNames(t, s); len(got) != 21 {
		t.Fatalf("post-recovery retrieve = %d, want 21", len(got))
	}
}

func TestReplicatedWriteCountsAreLogical(t *testing.T) {
	s := newFaultySystem(t, 3, 1)
	loadEmployees(t, s, 30)
	// Each record exists on two backends; counts must not double.
	upd, err := s.Exec(abdl.NewUpdate(abdm.And(
		abdm.Predicate{Attr: "dept", Op: abdm.OpEq, Val: abdm.String("CS")},
	), abdl.Modifier{Attr: "salary", Val: abdm.Int(1)}))
	if err != nil {
		t.Fatal(err)
	}
	if upd.Count != 8 {
		t.Fatalf("replicated update Count = %d, want 8", upd.Count)
	}
	del, err := s.Exec(abdl.NewDelete(abdm.And(
		abdm.Predicate{Attr: "salary", Op: abdm.OpEq, Val: abdm.Int(1)},
	)))
	if err != nil {
		t.Fatal(err)
	}
	if del.Count != 8 {
		t.Fatalf("replicated delete Count = %d, want 8", del.Count)
	}
	if got := retrieveNames(t, s); len(got) != 22 {
		t.Fatalf("after delete: %d records, want 22", len(got))
	}
}

func TestHealthDownAndRecovery(t *testing.T) {
	s := newFaultySystem(t, 3, 1)
	loadEmployees(t, s, 15)

	for _, h := range s.Health() {
		if !h.Up {
			t.Fatalf("backend %d down before any fault", h.ID)
		}
	}
	s.Fault(2).Fail(true)
	retrieveNames(t, s) // MaxRetries+1 failures >= BreakerThreshold: opens
	h := s.Health()[2]
	if h.Up {
		t.Fatalf("breaker did not open: %+v", h)
	}
	if h.DownSince.IsZero() || h.Failures == 0 || h.LastError == "" {
		t.Errorf("down health not populated: %+v", h)
	}
	recoverBackend(t, s, 2)
	h = s.Health()[2]
	if !h.Up || !h.DownSince.IsZero() {
		t.Errorf("recovered health wrong: %+v", h)
	}
}

func TestDeadlineInsertNotRetried(t *testing.T) {
	// Without replication an INSERT is not idempotent: after a missed
	// deadline (the request may still execute) it must NOT be resent.
	cfg := faultyConfig(1, 0)
	cfg.RequestTimeout = 20 * time.Millisecond
	s, err := New(testDir(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	s.Fault(0).SetPlan(&FaultPlan{Mode: FaultHang, EveryN: 1})
	rec := abdm.NewRecord("employee",
		abdm.Keyword{Attr: "name", Val: abdm.String("x")},
		abdm.Keyword{Attr: "dept", Val: abdm.String("CS")},
		abdm.Keyword{Attr: "salary", Val: abdm.Int(1)})
	_, err = s.Exec(abdl.NewInsert(rec))
	var dl *DeadlineError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlineError", err)
	}
	if h := s.Health()[0]; h.Retries != 0 {
		t.Errorf("non-idempotent insert was retried %d times", h.Retries)
	}
	s.Fault(0).SetPlan(nil)
}

func TestSnapshotSurfacesLostPartition(t *testing.T) {
	boom := errors.New("partition unreadable")
	execs := []Executor{
		failingExec{err: boom},
		failingExec{err: boom},
	}
	s, err := NewWithExecutors(testDir(t), DefaultConfig(2), execs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	if _, err := s.Snapshot(); err == nil {
		t.Fatal("snapshot silently dropped an unreadable partition")
	}
}

type failingExec struct{ err error }

func (f failingExec) Exec(*abdl.Request) (*kdb.Result, error) { return nil, f.err }

func TestCloseExecConcurrentNoPanic(t *testing.T) {
	// Exec racing Close must return ErrClosed (or complete), never panic.
	for round := 0; round < 20; round++ {
		s, err := New(testDir(t), DefaultConfig(4))
		if err != nil {
			t.Fatal(err)
		}
		loadEmployees(t, s, 8)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					_, err := s.Exec(abdl.NewRetrieve(abdm.And(
						abdm.Predicate{Attr: "dept", Op: abdm.OpEq, Val: abdm.String("CS")},
					), "name"))
					if err != nil {
						if !errors.Is(err, ErrClosed) {
							t.Errorf("concurrent exec: %v", err)
						}
						return
					}
				}
			}()
		}
		s.Close()
		wg.Wait()
	}
}
