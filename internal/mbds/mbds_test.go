package mbds

import (
	"fmt"
	"testing"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/kdb"
)

func testDir(t *testing.T) *abdm.Directory {
	t.Helper()
	d := abdm.NewDirectory()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(d.DefineAttr("name", abdm.KindString))
	must(d.DefineAttr("dept", abdm.KindString))
	must(d.DefineAttr("salary", abdm.KindInt))
	must(d.DefineFile("employee", []string{"name", "dept", "salary"}))
	return d
}

func newSystem(t *testing.T, n int) *System {
	t.Helper()
	s, err := New(testDir(t), DefaultConfig(n))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func loadEmployees(t *testing.T, s *System, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		rec := abdm.NewRecord("employee",
			abdm.Keyword{Attr: "name", Val: abdm.String(fmt.Sprintf("emp%04d", i))},
			abdm.Keyword{Attr: "dept", Val: abdm.String([]string{"CS", "EE", "ME", "CE"}[i%4])},
			abdm.Keyword{Attr: "salary", Val: abdm.Int(int64(30000 + 100*i))},
		)
		if _, err := s.Exec(abdl.NewInsert(rec)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSystemNewValidation(t *testing.T) {
	if _, err := New(testDir(t), Config{Backends: 0}); err == nil {
		t.Error("zero backends accepted")
	}
}

func TestSystemInsertDistribution(t *testing.T) {
	s := newSystem(t, 4)
	loadEmployees(t, s, 100)
	if s.Len() != 100 {
		t.Fatalf("Len = %d", s.Len())
	}
	sizes := s.PartitionSizes()
	for i, n := range sizes {
		if n != 25 {
			t.Errorf("backend %d holds %d records, want 25 (round robin)", i, n)
		}
	}
}

func TestSystemHashPlacementDeterministic(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Placement = HashKeywords
	a, err := New(testDir(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(testDir(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	rec := abdm.NewRecord("employee",
		abdm.Keyword{Attr: "name", Val: abdm.String("x")},
		abdm.Keyword{Attr: "dept", Val: abdm.String("CS")},
		abdm.Keyword{Attr: "salary", Val: abdm.Int(1)})
	if _, err := a.Exec(abdl.NewInsert(rec)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Exec(abdl.NewInsert(rec)); err != nil {
		t.Fatal(err)
	}
	for i := range a.PartitionSizes() {
		if a.PartitionSizes()[i] != b.PartitionSizes()[i] {
			t.Fatal("hash placement differs between identical systems")
		}
	}
}

func TestSystemRetrieveMergesPartitions(t *testing.T) {
	s := newSystem(t, 4)
	loadEmployees(t, s, 80)
	res, err := s.Exec(abdl.NewRetrieve(abdm.And(
		abdm.Predicate{Attr: "dept", Op: abdm.OpEq, Val: abdm.String("CS")},
	), abdl.AllAttrs))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 20 {
		t.Fatalf("CS employees = %d, want 20", len(res.Records))
	}
	// Results must be ordered by database key after merging.
	for i := 1; i < len(res.Records); i++ {
		if res.Records[i-1].ID >= res.Records[i].ID {
			t.Fatal("merged results not ordered by ID")
		}
	}
}

func TestSystemResultsInvariantAcrossBackendCounts(t *testing.T) {
	// The same logical database must answer identically for any backend
	// count — the core MBDS transparency property.
	counts := []int{1, 2, 3, 5, 8}
	var want []string
	for _, n := range counts {
		s := newSystem(t, n)
		loadEmployees(t, s, 60)
		res, err := s.Exec(abdl.NewRetrieve(abdm.And(
			abdm.Predicate{Attr: "salary", Op: abdm.OpGe, Val: abdm.Int(33000)},
		), "name"))
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		for _, sr := range res.Records {
			v, _ := sr.Rec.Get("name")
			got = append(got, v.AsString())
		}
		// Sort-insensitive comparison: IDs differ across placements.
		gotSet := make(map[string]bool)
		for _, g := range got {
			gotSet[g] = true
		}
		if want == nil {
			for g := range gotSet {
				want = append(want, g)
			}
			continue
		}
		if len(gotSet) != len(want) {
			t.Fatalf("backend count %d: %d results, want %d", n, len(gotSet), len(want))
		}
		for _, w := range want {
			if !gotSet[w] {
				t.Fatalf("backend count %d: missing %q", n, w)
			}
		}
	}
}

func TestSystemDeleteUpdateSpanPartitions(t *testing.T) {
	s := newSystem(t, 3)
	loadEmployees(t, s, 30)
	upd, err := s.Exec(abdl.NewUpdate(abdm.And(
		abdm.Predicate{Attr: "dept", Op: abdm.OpEq, Val: abdm.String("CS")},
	), abdl.Modifier{Attr: "salary", Val: abdm.Int(1)}))
	if err != nil {
		t.Fatal(err)
	}
	if upd.Count != 8 {
		t.Fatalf("updated %d, want 8", upd.Count)
	}
	del, err := s.Exec(abdl.NewDelete(abdm.And(
		abdm.Predicate{Attr: "salary", Op: abdm.OpEq, Val: abdm.Int(1)},
	)))
	if err != nil {
		t.Fatal(err)
	}
	if del.Count != 8 {
		t.Fatalf("deleted %d, want 8", del.Count)
	}
	if s.Len() != 22 {
		t.Errorf("Len = %d, want 22", s.Len())
	}
}

func TestSystemAggregateAcrossPartitions(t *testing.T) {
	s := newSystem(t, 4)
	loadEmployees(t, s, 40) // salaries 30000..33900 step 100
	res, err := s.Exec(&abdl.Request{
		Kind:  abdl.Retrieve,
		Query: abdm.And(abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("employee")}),
		Target: []abdl.TargetItem{
			{Agg: abdl.AggCount, Attr: "name"},
			{Agg: abdl.AggAvg, Attr: "salary"},
			{Agg: abdl.AggMax, Attr: "salary"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("groups = %d", len(res.Groups))
	}
	aggs := res.Groups[0].Aggs
	if aggs[0].Val.AsInt() != 40 {
		t.Errorf("COUNT = %v", aggs[0].Val)
	}
	wantAvg := 30000.0 + 100*39.0/2
	if aggs[1].Val.AsFloat() != wantAvg {
		t.Errorf("AVG = %v, want %v (must not average partial averages)", aggs[1].Val, wantAvg)
	}
	if aggs[2].Val.AsInt() != 33900 {
		t.Errorf("MAX = %v", aggs[2].Val)
	}
}

func TestSystemGroupByAcrossPartitions(t *testing.T) {
	s := newSystem(t, 3)
	loadEmployees(t, s, 24)
	res, err := s.Exec(abdl.NewRetrieve(abdm.And(
		abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("employee")},
	), abdl.AllAttrs).WithBy("dept"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 4 {
		t.Fatalf("groups = %d, want 4", len(res.Groups))
	}
	for _, g := range res.Groups {
		if len(g.Recs) != 6 {
			t.Errorf("group %v has %d records, want 6", g.By, len(g.Recs))
		}
	}
}

func TestSystemResponseTimeReciprocal(t *testing.T) {
	// MBDS claim 1: fixed database, more backends => response time drops
	// near-reciprocally.
	const dbSize = 512
	times := make(map[int]time.Duration)
	for _, n := range []int{1, 2, 4, 8} {
		s := newSystem(t, n)
		loadEmployees(t, s, dbSize)
		_, rt, err := s.ExecTimed(abdl.NewRetrieve(abdm.And(
			abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("employee")},
		), "name"))
		if err != nil {
			t.Fatal(err)
		}
		times[n] = rt
	}
	if !(times[1] > times[2] && times[2] > times[4] && times[4] > times[8]) {
		t.Errorf("response times not decreasing: %v", times)
	}
	// Near-reciprocal: doubling backends should cut at least 30% of the time.
	for _, pair := range [][2]int{{1, 2}, {2, 4}, {4, 8}} {
		a, b := times[pair[0]], times[pair[1]]
		if float64(b) > 0.7*float64(a) {
			t.Errorf("backends %d->%d: %v -> %v, expected near-halving", pair[0], pair[1], a, b)
		}
	}
}

func TestSystemCapacityInvariance(t *testing.T) {
	// MBDS claim 2: database grows proportionally with backends =>
	// response time invariant.
	base := 256
	var times []time.Duration
	for _, n := range []int{1, 2, 4} {
		s := newSystem(t, n)
		loadEmployees(t, s, base*n)
		_, rt, err := s.ExecTimed(abdl.NewRetrieve(abdm.And(
			abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("employee")},
		), "name"))
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, rt)
	}
	for i := 1; i < len(times); i++ {
		ratio := float64(times[i]) / float64(times[0])
		if ratio > 1.25 || ratio < 0.75 {
			t.Errorf("capacity growth broke invariance: times %v", times)
		}
	}
}

func TestSystemTransaction(t *testing.T) {
	s := newSystem(t, 2)
	tx := abdl.Transaction{
		abdl.NewInsert(abdm.NewRecord("employee",
			abdm.Keyword{Attr: "name", Val: abdm.String("a")},
			abdm.Keyword{Attr: "dept", Val: abdm.String("CS")},
			abdm.Keyword{Attr: "salary", Val: abdm.Int(10)})),
		abdl.NewInsert(abdm.NewRecord("employee",
			abdm.Keyword{Attr: "name", Val: abdm.String("b")},
			abdm.Keyword{Attr: "dept", Val: abdm.String("CS")},
			abdm.Keyword{Attr: "salary", Val: abdm.Int(20)})),
		abdl.NewRetrieve(abdm.And(
			abdm.Predicate{Attr: "dept", Op: abdm.OpEq, Val: abdm.String("CS")},
		), abdl.AllAttrs),
	}
	results, rt, err := s.ExecTransaction(tx)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 || len(results[2].Records) != 2 {
		t.Fatalf("transaction results wrong: %v", results)
	}
	if rt <= 0 {
		t.Error("simulated transaction time should be positive")
	}
}

func TestSystemGetByID(t *testing.T) {
	s := newSystem(t, 3)
	loadEmployees(t, s, 9)
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 9 {
		t.Fatalf("snapshot = %d", len(snap))
	}
	rec, ok := s.GetByID(snap[4].ID)
	if !ok || !rec.Equal(snap[4].Rec) {
		t.Error("GetByID mismatch")
	}
	if _, ok := s.GetByID(12345); ok {
		t.Error("phantom ID found")
	}
}

func TestSystemUniqueKeysAcrossBackends(t *testing.T) {
	s := newSystem(t, 4)
	loadEmployees(t, s, 50)
	seen := make(map[abdm.RecordID]bool)
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range snap {
		if seen[sr.ID] {
			t.Fatalf("database key %d assigned twice", sr.ID)
		}
		seen[sr.ID] = true
	}
}

func TestSystemClosed(t *testing.T) {
	s := newSystem(t, 1)
	s.Close()
	s.Close() // idempotent
	if _, err := s.Exec(abdl.NewRetrieve(nil, abdl.AllAttrs)); err != ErrClosed {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

func TestSystemSerialSlowerShape(t *testing.T) {
	// The serial-dispatch ablation must still return correct results.
	cfg := DefaultConfig(4)
	cfg.Serial = true
	s, err := New(testDir(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	loadEmployees(t, s, 20)
	res, err := s.Exec(abdl.NewRetrieve(abdm.And(
		abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("employee")},
	), abdl.AllAttrs))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 20 {
		t.Errorf("serial dispatch lost records: %d", len(res.Records))
	}
}

func TestSystemConcurrentClients(t *testing.T) {
	s := newSystem(t, 4)
	loadEmployees(t, s, 40)
	errs := make(chan error, 16)
	for c := 0; c < 16; c++ {
		go func(c int) {
			for i := 0; i < 20; i++ {
				_, err := s.Exec(abdl.NewRetrieve(abdm.And(
					abdm.Predicate{Attr: "dept", Op: abdm.OpEq, Val: abdm.String("CS")},
				), "name"))
				if err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(c)
	}
	for c := 0; c < 16; c++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

var _ = kdb.DefaultDiskModel // keep kdb import referenced if tests shrink
