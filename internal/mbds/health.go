package mbds

import (
	"errors"
	"fmt"
	"time"

	"mlds/internal/abdl"
)

// BackendHealth is one backend's state as reported by System.Health.
type BackendHealth struct {
	ID          int
	Up          bool      // false while the circuit breaker is open
	Consecutive int       // consecutive transient failures
	Attempts    uint64    // request attempts (including retries)
	Failures    uint64    // failed attempts
	Retries     uint64    // attempts beyond the first per request
	LastError   string    // most recent failure, "" if none
	DownSince   time.Time // when the breaker opened (zero if up)
}

// String renders one health line.
func (h BackendHealth) String() string {
	state := "up"
	if !h.Up {
		state = "DOWN since " + h.DownSince.Format("15:04:05.000")
	}
	s := fmt.Sprintf("backend %d: %s, %d attempts, %d failures, %d retries",
		h.ID, state, h.Attempts, h.Failures, h.Retries)
	if h.LastError != "" {
		s += ", last error: " + h.LastError
	}
	return s
}

// health is a backend's failure tracker: a consecutive-failure circuit
// breaker with periodic half-open probes.
type health struct {
	up        bool
	consec    int
	attempts  uint64
	failures  uint64
	retries   uint64
	lastErr   string
	downSince time.Time
	lastProbe time.Time
}

// admit decides whether a request may be sent to the backend. A down
// backend admits one probe per ProbePeriod (half-open breaker); otherwise
// the request is rejected without touching the backend.
func (b *backend) admit(cfg Config) (probing, ok bool) {
	b.hmu.Lock()
	defer b.hmu.Unlock()
	if b.health.up {
		return false, true
	}
	now := time.Now()
	if cfg.ProbePeriod <= 0 || now.Sub(b.health.lastProbe) >= cfg.ProbePeriod {
		b.health.lastProbe = now
		return true, true
	}
	return false, false
}

// noteSuccess records a successful attempt, closing the breaker.
func (b *backend) noteSuccess() {
	b.hmu.Lock()
	defer b.hmu.Unlock()
	b.health.attempts++
	b.health.consec = 0
	if !b.health.up {
		b.health.up = true
		b.health.downSince = time.Time{}
	}
}

// noteFailure records a failed attempt. Only transient failures count
// toward the breaker: a validation error is the request's fault, not the
// backend's.
func (b *backend) noteFailure(err error, cfg Config) {
	b.hmu.Lock()
	defer b.hmu.Unlock()
	b.health.attempts++
	b.health.failures++
	b.health.lastErr = err.Error()
	if !transient(err) {
		return
	}
	b.health.consec++
	if b.health.up && cfg.BreakerThreshold > 0 && b.health.consec >= cfg.BreakerThreshold {
		b.health.up = false
		b.health.downSince = time.Now()
		b.health.lastProbe = time.Now()
		b.metrics.trips.Inc()
	}
}

// noteRetry counts one retry attempt.
func (b *backend) noteRetry() {
	b.hmu.Lock()
	b.health.retries++
	b.hmu.Unlock()
}

// snapshotHealth copies the tracker state.
func (b *backend) snapshotHealth() BackendHealth {
	b.hmu.Lock()
	defer b.hmu.Unlock()
	return BackendHealth{
		ID:          b.id,
		Up:          b.health.up,
		Consecutive: b.health.consec,
		Attempts:    b.health.attempts,
		Failures:    b.health.failures,
		Retries:     b.health.retries,
		LastError:   b.health.lastErr,
		DownSince:   b.health.downSince,
	}
}

// Health reports every backend's current state in view order: up/down,
// failure and retry counts, and the most recent error. Each entry's ID is
// the backend's stable id, which can diverge from its view position after
// membership changes.
func (s *System) Health() []BackendHealth {
	view := s.viewSnap()
	out := make([]BackendHealth, len(view))
	for i, b := range view {
		out[i] = b.snapshotHealth()
	}
	return out
}

// DeadlineError reports a backend that did not answer within
// Config.RequestTimeout. The request may still execute after the deadline
// (the backend is slow, not provably dead), so only idempotent requests are
// retried after one.
type DeadlineError struct {
	Backend int
	Timeout time.Duration
}

// Error describes the missed deadline.
func (e *DeadlineError) Error() string {
	return fmt.Sprintf("mbds: backend %d missed the %v request deadline", e.Backend, e.Timeout)
}

// Transient marks the failure as retryable.
func (e *DeadlineError) Transient() bool { return true }

// MaybeApplied reports that the request may have executed anyway.
func (e *DeadlineError) MaybeApplied() bool { return true }

// BackendDownError reports a request skipped because the backend's circuit
// breaker is open.
type BackendDownError struct {
	Backend int
	Last    string // the failure that opened the breaker
}

// Error describes the open breaker.
func (e *BackendDownError) Error() string {
	s := fmt.Sprintf("mbds: backend %d is down (circuit open)", e.Backend)
	if e.Last != "" {
		s += ": " + e.Last
	}
	return s
}

// Transient marks the failure as retryable (the backend may recover).
func (e *BackendDownError) Transient() bool { return true }

// transient reports whether err is a recoverable backend failure — one
// worth retrying and one that should count toward the circuit breaker.
// Errors opt in by implementing Transient() bool (injected faults, missed
// deadlines, unreachable remote backends).
func transient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// maybeApplied reports whether the request behind err may have executed on
// the backend despite the failure. Retrying such a request is only safe
// when it is idempotent.
func maybeApplied(err error) bool {
	var m interface{ MaybeApplied() bool }
	return errors.As(err, &m) && m.MaybeApplied()
}

// idempotent reports whether re-executing the request cannot change the
// outcome: everything except an INSERT that allocates a fresh database key.
// (DELETE and UPDATE qualify records by query and assign absolute values;
// a replica-pinned INSERT overwrites its own key.)
func idempotent(req *abdl.Request) bool {
	return req.Kind != abdl.Insert || req.ForceID != 0
}
