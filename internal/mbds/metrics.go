package mbds

import (
	"strconv"

	"mlds/internal/obs"
)

// sysMetrics is the controller-level handle set, resolved once at system
// construction. Every handle is nil when no registry is configured, and the
// obs types no-op on nil, so the hot path never tests whether metrics are on.
type sysMetrics struct {
	requests *obs.Counter   // kernel requests by database
	batches  *obs.Counter   // batched rounds executed by the controller
	dedup    *obs.Counter   // records removed by replica dedup
	simSec   *obs.Histogram // simulated response time per request
	wallSec  *obs.Histogram // wall-clock time per request

	// Elastic membership and live migration.
	membershipEpoch *obs.Gauge   // current placement-view epoch
	placedKeys      *obs.Gauge   // sticky-placement map size
	migKeys         *obs.Counter // records copied by migrations
	migBytes        *obs.Counter // approximate bytes copied by migrations
	migCatchup      *obs.Counter // catch-up log entries replayed at flips
	promotions      *obs.Counter // replica-successor promotions (failovers)
}

// backendMetrics is one backend's handle set.
type backendMetrics struct {
	requests *obs.Counter // attempts sent to this backend (retries included)
	failures *obs.Counter // failed attempts
	retries  *obs.Counter // attempts beyond the first per request
	trips    *obs.Counter // circuit-breaker openings
	queue    *obs.Gauge   // requests currently in flight on the bus
}

// initMetrics resolves the system's metric handles from Config.Metrics,
// labelling each series with the database name. With a nil registry every
// handle stays nil (no-op).
func (s *System) initMetrics() {
	reg := s.cfg.Metrics
	db := obs.L("db", s.cfg.DBName)
	s.metrics = sysMetrics{
		requests: reg.Counter("mlds_kernel_requests_total",
			"ABDL requests executed by the kernel controller", db),
		batches: reg.Counter("mlds_kernel_batches_total",
			"batched kernel rounds executed by the controller", db),
		dedup: reg.Counter("mlds_replica_dedup_hits_total",
			"replica copies removed by controller-side dedup", db),
		simSec: reg.Histogram("mlds_kernel_sim_seconds",
			"simulated kernel response time per request", nil, db),
		wallSec: reg.Histogram("mlds_kernel_wall_seconds",
			"wall-clock kernel time per request", nil, db),
		membershipEpoch: reg.Gauge("mlds_membership_epoch",
			"current backend placement-view epoch", db),
		placedKeys: reg.Gauge("mlds_placed_keys",
			"entries in the sticky-placement map", db),
		migKeys: reg.Counter("mlds_migration_keys_total",
			"records copied by live partition migrations", db),
		migBytes: reg.Counter("mlds_migration_bytes_total",
			"approximate bytes copied by live partition migrations", db),
		migCatchup: reg.Counter("mlds_migration_catchup_entries_total",
			"catch-up log entries captured during live migrations", db),
		promotions: reg.Counter("mlds_promotions_total",
			"replica-successor promotions after backend loss", db),
	}
}

// initBackendMetrics resolves one backend's metric handles, labelled with
// its stable id. Called at construction and again for every added backend.
func (s *System) initBackendMetrics(b *backend) {
	reg := s.cfg.Metrics
	db := obs.L("db", s.cfg.DBName)
	be := obs.L("backend", strconv.Itoa(b.id))
	b.metrics = backendMetrics{
		requests: reg.Counter("mlds_backend_requests_total",
			"request attempts sent to each backend", db, be),
		failures: reg.Counter("mlds_backend_failures_total",
			"failed request attempts per backend", db, be),
		retries: reg.Counter("mlds_backend_retries_total",
			"retry attempts per backend", db, be),
		trips: reg.Counter("mlds_backend_breaker_trips_total",
			"circuit-breaker openings per backend", db, be),
		queue: reg.Gauge("mlds_backend_queue_depth",
			"requests in flight on each backend's bus channel", db, be),
	}
	// Paged-backend memory accounting: how many record bodies the demand-paged
	// store holds in RAM, and how many pages the buffer pool keeps resident.
	// Read at exposition time — the store owns both figures. Remote backends
	// (store == nil) expose theirs from their own process.
	if st := b.store; st != nil && st.Backed() {
		reg.GaugeFunc("mlds_backing_resident_records",
			"record bodies materialised in RAM by each paged backend", func() float64 {
				return float64(st.ResidentRecords())
			}, db, be)
		reg.GaugeFunc("mlds_backing_pool_pages",
			"buffer-pool pages resident in each paged backend", func() float64 {
				stats, _, _ := st.BackingStats()
				return float64(stats.Resident)
			}, db, be)
	}
}
