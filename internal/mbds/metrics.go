package mbds

import (
	"strconv"

	"mlds/internal/obs"
)

// sysMetrics is the controller-level handle set, resolved once at system
// construction. Every handle is nil when no registry is configured, and the
// obs types no-op on nil, so the hot path never tests whether metrics are on.
type sysMetrics struct {
	requests *obs.Counter   // kernel requests by database
	batches  *obs.Counter   // batched rounds executed by the controller
	dedup    *obs.Counter   // records removed by replica dedup
	simSec   *obs.Histogram // simulated response time per request
	wallSec  *obs.Histogram // wall-clock time per request
}

// backendMetrics is one backend's handle set.
type backendMetrics struct {
	requests *obs.Counter // attempts sent to this backend (retries included)
	failures *obs.Counter // failed attempts
	retries  *obs.Counter // attempts beyond the first per request
	trips    *obs.Counter // circuit-breaker openings
	queue    *obs.Gauge   // requests currently in flight on the bus
}

// initMetrics resolves the system's and every backend's metric handles from
// Config.Metrics, labelling each series with the database name and backend
// id. With a nil registry every handle stays nil (no-op).
func (s *System) initMetrics() {
	reg := s.cfg.Metrics
	db := obs.L("db", s.cfg.DBName)
	s.metrics = sysMetrics{
		requests: reg.Counter("mlds_kernel_requests_total",
			"ABDL requests executed by the kernel controller", db),
		batches: reg.Counter("mlds_kernel_batches_total",
			"batched kernel rounds executed by the controller", db),
		dedup: reg.Counter("mlds_replica_dedup_hits_total",
			"replica copies removed by controller-side dedup", db),
		simSec: reg.Histogram("mlds_kernel_sim_seconds",
			"simulated kernel response time per request", nil, db),
		wallSec: reg.Histogram("mlds_kernel_wall_seconds",
			"wall-clock kernel time per request", nil, db),
	}
	for _, b := range s.backends {
		be := obs.L("backend", strconv.Itoa(b.id))
		b.metrics = backendMetrics{
			requests: reg.Counter("mlds_backend_requests_total",
				"request attempts sent to each backend", db, be),
			failures: reg.Counter("mlds_backend_failures_total",
				"failed request attempts per backend", db, be),
			retries: reg.Counter("mlds_backend_retries_total",
				"retry attempts per backend", db, be),
			trips: reg.Counter("mlds_backend_breaker_trips_total",
				"circuit-breaker openings per backend", db, be),
			queue: reg.Gauge("mlds_backend_queue_depth",
				"requests in flight on each backend's bus channel", db, be),
		}
	}
}
