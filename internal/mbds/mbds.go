// Package mbds implements the Multi-Backend Database System (MBDS), the
// kernel database system of MLDS.
//
// MBDS uses a software multiple-backend approach: a controller (the master)
// supervises transaction execution while N backends (the slaves) hold
// disjoint partitions of the database on their own disks and execute every
// request in parallel. The controller broadcasts each request over the
// communication bus, collects the partial results, and merges them.
//
// This implementation runs the controller and the backends as goroutines
// joined by channels (the bus). Each backend charges its work to a synthetic
// disk model; the controller's simulated response time for a request is the
// bus overhead plus the *maximum* backend time — the backends work in
// parallel — which is what produces the paper's two performance claims:
// response time falls near-reciprocally as backends are added at fixed
// database size, and stays invariant when the database grows proportionally
// with the backends.
//
// The controller additionally hardens the bus against backend failure:
// per-request deadlines, bounded retries with exponential backoff for
// transient failures, a per-backend circuit breaker with half-open probing
// (surfaced by Health), and replicated record placement (Config.Replicas)
// under which broadcasts tolerate down backends and still return complete,
// deduplicated results — degraded-mode reads.
package mbds

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/kdb"
	"mlds/internal/obs"
)

// Placement selects how INSERTed records are distributed across backends.
type Placement int

// Placement policies.
const (
	// RoundRobin spreads each file's records evenly in arrival order — the
	// paper's cluster-spreading data placement, with the file as the
	// cluster. Keeping a cursor per file (rather than one global cursor)
	// prevents correlated insert patterns from phase-locking a file's
	// records onto a subset of the backends.
	RoundRobin Placement = iota
	// HashKeywords places each record by a hash of its keyword content, so
	// identical logical databases land identically regardless of load order.
	HashKeywords
)

// Config configures an MBDS instance.
type Config struct {
	Backends   int           // number of backends (>= 1)
	Disk       kdb.DiskModel // per-backend disk model
	Placement  Placement     // record placement policy
	MsgLatency time.Duration // simulated bus latency per message hop
	Serial     bool          // ablation: dispatch to backends one at a time
	NoIndexes  bool          // ablation: backends scan instead of indexing

	// Fault tolerance. Replicas > 0 makes INSERT write each record to its
	// primary backend plus that many successor backends under one database
	// key; broadcasts then tolerate up to Replicas failed backends and
	// return complete results with controller-side dedup (degraded mode).
	Replicas         int           // extra copies of each record (0 = none)
	RequestTimeout   time.Duration // per-backend request deadline (0 = none)
	MaxRetries       int           // retries per request on transient failures
	RetryBackoff     time.Duration // base retry backoff, doubling per retry
	BreakerThreshold int           // consecutive transient failures that open the breaker (0 = never)
	ProbePeriod      time.Duration // how often a down backend is probed (0 = every request)
	FaultInjection   bool          // wrap each executor in a FaultyExecutor (see System.Fault)

	// Elastic membership. FailoverAfter > 0 starts a monitor that removes a
	// backend whose circuit breaker has been open for at least that long,
	// promoting replica successors to primary for its keys (see
	// System.RemoveBackend). FailoverCheck is the monitor's poll period
	// (default FailoverAfter / 4).
	FailoverAfter time.Duration
	FailoverCheck time.Duration

	// Observability. With a registry the system records per-database and
	// per-backend request, retry, breaker-trip, dedup and queue-depth
	// series labelled db=DBName; nil disables metrics at zero cost.
	Metrics *obs.Registry
	DBName  string

	// StoreOpener, when set, builds each local backend's store in place of
	// kdb.NewStore — e.g. kdb.CreateBacked/OpenBacked for a paged on-disk
	// partition. It receives the backend's position and the base options the
	// system would have used (disk model, shared key allocator, index
	// policy); implementations should pass them through.
	StoreOpener func(pos int, dir *abdm.Directory, opts []kdb.Option) (*kdb.Store, error)
}

// DefaultConfig returns a configuration with n backends, the default disk
// model and bus latency, and a modest retry/breaker policy.
func DefaultConfig(n int) Config {
	return Config{
		Backends:         n,
		Disk:             kdb.DefaultDiskModel(),
		MsgLatency:       2 * time.Millisecond,
		MaxRetries:       2,
		RetryBackoff:     time.Millisecond,
		BreakerThreshold: 5,
		ProbePeriod:      250 * time.Millisecond,
	}
}

// System is one MBDS instance: a controller plus its backends.
//
// Membership is dynamic: the active backend list (the view) is versioned by
// a membership epoch and replaced copy-on-write by AddBackend, DrainBackend
// and RemoveBackend, so in-flight operations always work against one
// consistent view. Each backend has a stable id that survives membership
// changes; positional APIs (Fault, Health, the membership methods) index the
// current view.
type System struct {
	cfg      Config
	dir      *abdm.Directory
	nextID   atomic.Uint64
	rrMu     sync.Mutex
	rr       map[string]uint64 // per-file round-robin cursors
	placeMu  sync.Mutex
	placed   map[abdm.RecordID]*backend // database key -> primary backend
	closed   atomic.Bool
	closedCh chan struct{}  // closed by Close; aborts blocked bus operations
	opWG     sync.WaitGroup // in-flight Exec-family operations
	metrics  sysMetrics

	// Membership: the versioned placement view. vmu guards the slice header
	// and epoch; the slice itself is never mutated in place, so a snapshot
	// taken under vmu stays consistent for the whole operation.
	vmu     sync.RWMutex
	view    []*backend
	epoch   uint64 // membership epoch, bumped by every view change
	nextBID int    // next stable backend id

	// Live migration. memMu serializes membership changes; fence is the
	// write fence every Exec-family entry point shares and a migration's
	// final catch-up round takes exclusively; migLog accumulates the
	// placement-pinned mutations and MVCC control ops executed while a
	// migration is in flight (migOn), for catch-up replay under the fence.
	memMu  sync.Mutex
	fence  sync.RWMutex
	migOn  atomic.Bool
	migMu  sync.Mutex
	migLog []*abdl.Request

	// Failover monitor (Config.FailoverAfter > 0).
	stopMon chan struct{}
	monWG   sync.WaitGroup
	bgWG    sync.WaitGroup // background re-replication after a removal

	elastic elasticCounters
}

// Executor executes ABDL requests against one backend partition. Local
// backends use a kdb.Store; remote backends (package mbdsnet) satisfy it
// over TCP.
type Executor interface {
	Exec(*abdl.Request) (*kdb.Result, error)
}

// BatchExecutor is implemented by executors that can take a whole batch in
// one call — kdb.Store directly, mbdsnet.RemoteBackend as a single wire
// message. Executors without it are fed batches one request at a time.
type BatchExecutor interface {
	ExecBatch([]*abdl.Request) ([]*kdb.Result, error)
}

// backend is one slave: its executor plus the goroutine that serves its
// side of the bus. store is nil for remote backends.
type backend struct {
	id     int // stable id, survives membership changes
	exec   Executor
	store  *kdb.Store
	faulty *FaultyExecutor // non-nil when Config.FaultInjection is set
	reqCh  chan job
	quit   chan struct{} // closed on retirement; stops the serve loop
	done   chan struct{}
	once   sync.Once // guards quit: Close and a prior drain may both retire

	hmu    sync.Mutex
	health health

	metrics backendMetrics
}

// retire stops the backend's serve loop. Safe to call more than once (a
// drained backend is retired by the drain and again by Close).
func (b *backend) retire() { b.once.Do(func() { close(b.quit) }) }

type job struct {
	req   *abdl.Request
	batch []*abdl.Request // non-nil: one bus message carrying N requests
	reply chan jobReply   // buffered (cap 1): serve never blocks on a reply
}

type jobReply struct {
	res     *kdb.Result
	results []*kdb.Result // batch jobs: one result per request
	err     error
}

// newBackend builds one backend over the executor and starts its serve
// loop. store is the executor's local store, nil for remote executors.
func newBackend(id int, exec Executor, store *kdb.Store, faults bool) *backend {
	b := &backend{
		id:    id,
		exec:  exec,
		store: store,
		reqCh: make(chan job),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	b.health.up = true
	if faults {
		b.faulty = NewFaultyExecutor(exec)
		b.exec = b.faulty
	}
	go b.serve()
	return b
}

// New builds and starts an MBDS instance over the directory.
func New(dir *abdm.Directory, cfg Config) (*System, error) {
	if cfg.Backends < 1 {
		return nil, fmt.Errorf("mbds: need at least 1 backend, got %d", cfg.Backends)
	}
	if cfg.Disk.BlockFactor == 0 {
		cfg.Disk = kdb.DefaultDiskModel()
	}
	s := &System{cfg: cfg, dir: dir, rr: make(map[string]uint64),
		placed: make(map[abdm.RecordID]*backend), closedCh: make(chan struct{})}
	for i := 0; i < cfg.Backends; i++ {
		store, err := s.newLocalStore(i)
		if err != nil {
			for _, b := range s.view {
				b.retire()
			}
			return nil, fmt.Errorf("mbds: opening backend %d store: %w", i, err)
		}
		s.view = append(s.view, newBackend(i, store, store, cfg.FaultInjection))
	}
	s.finishInit()
	return s, nil
}

// newLocalStore builds one backend partition store wired to the system's
// shared key allocator and configuration. pos is the backend's position at
// creation, which Config.StoreOpener implementations typically map to a
// partition file path.
func (s *System) newLocalStore(pos int) (*kdb.Store, error) {
	opts := []kdb.Option{
		kdb.WithDisk(s.cfg.Disk),
		kdb.WithIDAllocator(func() abdm.RecordID {
			return abdm.RecordID(s.nextID.Add(1))
		}),
	}
	if s.cfg.NoIndexes {
		opts = append(opts, kdb.WithoutIndexes())
	}
	if s.cfg.StoreOpener != nil {
		return s.cfg.StoreOpener(pos, s.dir.Clone(), opts)
	}
	return kdb.NewStore(s.dir.Clone(), opts...), nil
}

// finishInit completes construction common to both constructors: epoch and
// id bookkeeping, metrics, and the failover monitor.
func (s *System) finishInit() {
	s.nextBID = len(s.view)
	s.epoch = 1
	s.initMetrics()
	for _, b := range s.view {
		s.initBackendMetrics(b)
	}
	s.metrics.membershipEpoch.Set(int64(s.epoch))
	if s.cfg.FailoverAfter > 0 {
		s.stopMon = make(chan struct{})
		s.monWG.Add(1)
		go s.failoverMonitor()
	}
}

// NewWithExecutors builds an MBDS instance whose backends are the given
// executors — typically mbdsnet.RemoteBackend clients, making the controller
// local and the backends remote machines, as in the original hardware
// configuration. The config's Backends count is ignored. With Replicas > 0
// the controller assigns every inserted record's database key itself, so the
// executors' own allocators are never consulted.
func NewWithExecutors(dir *abdm.Directory, cfg Config, execs []Executor) (*System, error) {
	if len(execs) < 1 {
		return nil, fmt.Errorf("mbds: need at least 1 executor")
	}
	if cfg.Disk.BlockFactor == 0 {
		cfg.Disk = kdb.DefaultDiskModel()
	}
	cfg.Backends = len(execs)
	s := &System{cfg: cfg, dir: dir, rr: make(map[string]uint64),
		placed: make(map[abdm.RecordID]*backend), closedCh: make(chan struct{})}
	for i, ex := range execs {
		s.view = append(s.view, newBackend(i, ex, nil, cfg.FaultInjection))
	}
	s.finishInit()
	return s, nil
}

// serve is the backend's message loop: receive a request, execute it against
// the local partition, reply with the partial result. The loop stops when
// the system closes; reqCh itself is never closed, so a racing dispatch can
// never panic on it.
func (b *backend) serve() {
	defer close(b.done)
	for {
		select {
		case j := <-b.reqCh:
			if j.batch != nil {
				results, err := b.execBatch(j.batch)
				j.reply <- jobReply{results: results, err: err}
				continue
			}
			res, err := b.exec.Exec(j.req)
			j.reply <- jobReply{res: res, err: err}
		case <-b.quit:
			return
		}
	}
}

// execBatch runs one batch against the backend's executor. Executors that
// implement BatchExecutor (kdb.Store locally, mbdsnet.RemoteBackend over
// TCP) take the whole slice in one call — one wire message for remote
// backends; anything else (e.g. a fault-injecting wrapper) falls back to a
// per-request loop so faults still hit each request.
func (b *backend) execBatch(reqs []*abdl.Request) ([]*kdb.Result, error) {
	if be, ok := b.exec.(BatchExecutor); ok {
		return be.ExecBatch(reqs)
	}
	out := make([]*kdb.Result, 0, len(reqs))
	for i, req := range reqs {
		res, err := b.exec.Exec(req)
		if err != nil {
			return out, fmt.Errorf("mbds: batch request %d: %w", i, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// viewSnap returns the current backend view. The returned slice is
// immutable — membership changes install a fresh slice — so callers may
// iterate it without further locking.
func (s *System) viewSnap() []*backend {
	s.vmu.RLock()
	defer s.vmu.RUnlock()
	return s.view
}

// MembershipEpoch reports the current membership epoch; it advances by one
// on every view change (add, drain, removal).
func (s *System) MembershipEpoch() uint64 {
	s.vmu.RLock()
	defer s.vmu.RUnlock()
	return s.epoch
}

// Fault returns backend i's fault-injection handle, or nil unless the
// system was built with Config.FaultInjection. i indexes the current view.
func (s *System) Fault(i int) *FaultyExecutor { return s.viewSnap()[i].faulty }

// Close shuts the backends down. Concurrent Exec-family calls return
// ErrClosed (or their result, if already in flight); the system must not be
// used afterwards.
func (s *System) Close() {
	if s.closed.Swap(true) {
		return
	}
	close(s.closedCh)
	if s.stopMon != nil {
		close(s.stopMon)
		s.monWG.Wait()
	}
	s.opWG.Wait()
	s.bgWG.Wait()
	view := s.viewSnap()
	for _, b := range view {
		b.retire()
		if b.faulty != nil {
			// A hang fault must not wedge shutdown.
			b.faulty.releaseHangs()
		}
	}
	grace := 2 * s.cfg.RequestTimeout
	for _, b := range view {
		if grace > 0 {
			// A backend wedged past its deadline (a hang fault inside a
			// wrapped executor) is abandoned rather than waited for.
			select {
			case <-b.done:
			case <-time.After(grace):
			}
		} else {
			<-b.done
		}
	}
}

// beginOp registers an in-flight operation, refusing if the system is
// closed. Callers must pair it with s.opWG.Done().
func (s *System) beginOp() error {
	if s.closed.Load() {
		return ErrClosed
	}
	s.opWG.Add(1)
	if s.closed.Load() {
		s.opWG.Done()
		return ErrClosed
	}
	return nil
}

// Backends reports the number of backends in the current view.
func (s *System) Backends() int { return len(s.viewSnap()) }

// Store returns the local store of the backend at position pos in the
// current view, or nil for remote backends. Checkpoint hosts use it to
// reach a paged-backed partition.
func (s *System) Store(pos int) *kdb.Store {
	view := s.viewSnap()
	if pos < 0 || pos >= len(view) {
		return nil
	}
	return view[pos].store
}

// seedNextID advances the shared key allocator to at least id.
func (s *System) seedNextID(id uint64) {
	for {
		cur := s.nextID.Load()
		if id <= cur || s.nextID.CompareAndSwap(cur, id) {
			return
		}
	}
}

// SeedIDs advances the shared database-key allocator past max. Recovery
// calls it after mounting a checkpoint image whose metadata records the
// key high water, so new inserts never collide with restored records.
func (s *System) SeedIDs(max uint64) { s.seedNextID(max) }

// Directory returns the controller's attribute catalog.
func (s *System) Directory() *abdm.Directory { return s.dir }

// lenOf reports one backend's record count, asking remote backends over the
// bus.
func (b *backend) lenOf() int {
	if b.store != nil {
		return b.store.Len()
	}
	if rl, ok := b.exec.(interface{ Len() (int, error) }); ok {
		if n, err := rl.Len(); err == nil {
			return n
		}
	}
	return 0
}

// Len reports the total number of record copies across all backends. With
// Replicas > 0 each logical record is counted once per copy.
func (s *System) Len() int {
	n := 0
	for _, b := range s.viewSnap() {
		n += b.lenOf()
	}
	return n
}

// PartitionSizes reports each backend's record count, in view order.
func (s *System) PartitionSizes() []int {
	view := s.viewSnap()
	out := make([]int, len(view))
	for i, b := range view {
		out[i] = b.lenOf()
	}
	return out
}

// StoreStats sums the lifetime kdb statistics (requests, disk-model cost,
// result-cache hits and misses) of every local backend partition. Remote
// backends hold no local store and contribute nothing — their stats are
// scraped from their own daemons' /metrics.
func (s *System) StoreStats() kdb.Stats {
	var out kdb.Stats
	for _, b := range s.viewSnap() {
		if b.store == nil {
			continue
		}
		st := b.store.Stats()
		out.Requests += st.Requests
		out.Errors += st.Errors
		out.BlocksRead += st.BlocksRead
		out.BlocksWrit += st.BlocksWrit
		out.RecordsExam += st.RecordsExam
		out.CacheHits += st.CacheHits
		out.CacheMisses += st.CacheMisses
	}
	return out
}

// ErrClosed is returned by operations on a closed system.
var ErrClosed = errors.New("mbds: system is closed")

// placePos picks the primary position in an n-backend view for an inserted
// record, by content hash or per-file round robin.
func (s *System) placePos(rec *abdm.Record, n int) int {
	switch s.cfg.Placement {
	case HashKeywords:
		h := fnv.New64a()
		_, _ = h.Write([]byte(rec.Key()))
		return int(h.Sum64() % uint64(n))
	default:
		s.rrMu.Lock()
		defer s.rrMu.Unlock()
		file := rec.File()
		c := s.rr[file]
		s.rr[file] = c + 1
		return int(c % uint64(n))
	}
}

// insertPrimaryFor picks the primary backend for an insert against the given
// view. A request that carries a database key (an undo restore, a replay, a
// replicated copy) belongs to the backend that already holds that key's
// record versions, so a recorded placement wins over content routing —
// otherwise an aborted transaction's restore could migrate the record away
// from its MVCC version chain and a later snapshot would see the key on two
// partitions. A recorded backend that has left the view (it was removed
// between the key's last write and now) falls back to content routing.
func (s *System) insertPrimaryFor(req *abdl.Request, view []*backend) *backend {
	if req.ForceID != 0 {
		s.placeMu.Lock()
		b, ok := s.placed[req.ForceID]
		s.placeMu.Unlock()
		if ok {
			for _, v := range view {
				if v == b {
					return b
				}
			}
		}
	}
	return view[s.placePos(req.Record, len(view))]
}

// notePlacement records which backend is primary for a database key. Entries
// are kept after deletion — an aborted delete restores the record under the
// same key and must land on the same partition — and are evicted when
// watermark GC removes the key's entire version chain (no snapshot can reach
// the key any more) or when membership changes reassign it.
func (s *System) notePlacement(id abdm.RecordID, primary *backend) {
	if id == 0 {
		return
	}
	s.placeMu.Lock()
	s.placed[id] = primary
	s.metrics.placedKeys.Set(int64(len(s.placed)))
	s.placeMu.Unlock()
}

// evictPlaced forgets the placement of keys whose version chains are gone:
// once watermark GC (or an abort that erased a key's only history) removed a
// chain everywhere, no undo restore or snapshot read can address the key
// again, so the sticky-placement map stays bounded by the live key count.
func (s *System) evictPlaced(ids []abdm.RecordID) {
	if len(ids) == 0 {
		return
	}
	s.placeMu.Lock()
	for _, id := range ids {
		delete(s.placed, id)
	}
	s.metrics.placedKeys.Set(int64(len(s.placed)))
	s.placeMu.Unlock()
}

// PlacedKeys reports the size of the sticky-placement map.
func (s *System) PlacedKeys() int {
	s.placeMu.Lock()
	defer s.placeMu.Unlock()
	return len(s.placed)
}

// holdersIn expands a primary backend into its holder set within the view:
// the primary plus Replicas successors in view order (capped at the view
// size). A primary not in the view yields just itself.
func (s *System) holdersIn(view []*backend, primary *backend) []*backend {
	pos := -1
	for i, b := range view {
		if b == primary {
			pos = i
			break
		}
	}
	if pos < 0 {
		return []*backend{primary}
	}
	n := len(view)
	k := s.cfg.Replicas + 1
	if k > n {
		k = n
	}
	out := make([]*backend, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, view[(pos+i)%n])
	}
	return out
}

// logCatchup appends a successfully executed request to the migration
// catch-up log when a migration is in flight. Only placement-pinned
// mutations (ForceID inserts and deletes — the undo path's NoVersion
// operations that version-chain export cannot see) and the MVCC control ops
// (commit stamps and aborts that may race an imported pending version) need
// replay; every other mutation writes a version and is carried by the
// migration's epoch-bounded export rounds.
func (s *System) logCatchup(req *abdl.Request) {
	if !s.migOn.Load() {
		return
	}
	switch req.Kind {
	case abdl.Insert, abdl.Delete:
		if req.ForceID == 0 {
			return
		}
	case abdl.MvccCommit, abdl.MvccAbort:
	default:
		return
	}
	s.migMu.Lock()
	if s.migOn.Load() {
		s.migLog = append(s.migLog, req)
		s.metrics.migCatchup.Inc()
		s.elastic.catchup.Add(1)
	}
	s.migMu.Unlock()
}

// Exec executes one ABDL request across the backends and returns the merged
// result. The result's Cost is the summed backend work; use ExecTimed for
// the parallel response-time model.
func (s *System) Exec(req *abdl.Request) (*kdb.Result, error) {
	res, _, err := s.ExecTimed(req)
	return res, err
}

// ExecTimed executes one request and additionally returns the simulated
// response time under the parallel-backend model: bus latency out and back
// plus the slowest backend's disk time.
func (s *System) ExecTimed(req *abdl.Request) (*kdb.Result, time.Duration, error) {
	return s.ExecTimedCtx(context.Background(), req)
}

// ExecTimedCtx is ExecTimed carrying a request context. When the context
// holds an obs trace, each backend call becomes a "backend.exec" child span;
// metrics (if configured) are recorded either way.
func (s *System) ExecTimedCtx(ctx context.Context, req *abdl.Request) (*kdb.Result, time.Duration, error) {
	if err := s.beginOp(); err != nil {
		return nil, 0, err
	}
	defer s.opWG.Done()
	// The write fence: shared in normal operation, taken exclusively by a
	// migration's final catch-up round so the flip sees no in-flight writes.
	s.fence.RLock()
	defer s.fence.RUnlock()
	start := time.Now()
	res, simt, err := s.execTimed(ctx, req)
	if err == nil {
		s.logCatchup(req)
	}
	s.metrics.requests.Inc()
	if err == nil {
		s.metrics.simSec.Observe(simt.Seconds())
		s.metrics.wallSec.Observe(time.Since(start).Seconds())
	}
	return res, simt, err
}

// execTimed is ExecTimedCtx without the lifecycle bookkeeping, so the
// RETRIEVE-COMMON phases can recurse while holding one in-flight slot.
func (s *System) execTimed(ctx context.Context, req *abdl.Request) (*kdb.Result, time.Duration, error) {
	if err := req.Validate(); err != nil {
		return nil, 0, err
	}
	if req.Kind == abdl.RetrieveCommon {
		return s.execRetrieveCommon(ctx, req)
	}
	if req.Kind == abdl.Insert {
		return s.execInsert(ctx, req)
	}
	return s.execBroadcast(ctx, req)
}

// execInsert routes the record to its holder backends. The directory
// validates once at the controller; with replication the controller also
// assigns the database key, so every copy lives under the same key.
func (s *System) execInsert(ctx context.Context, req *abdl.Request) (*kdb.Result, time.Duration, error) {
	if err := s.dir.ValidateRecord(req.Record); err != nil {
		return nil, 0, err
	}
	view := s.viewSnap()
	primary := s.insertPrimaryFor(req, view)
	holders := s.holdersIn(view, primary)
	if req.ForceID != 0 {
		// A caller-pinned key (journal replay, undo restore, migration):
		// advance the shared allocator past it so later inserts can never
		// collide with the replayed key space.
		s.seedNextID(uint64(req.ForceID))
	} else if s.cfg.Replicas > 0 {
		cp := *req
		cp.ForceID = abdm.RecordID(s.nextID.Add(1))
		req = &cp
	}
	replies := s.fanout(ctx, holders, req)
	var res *kdb.Result
	var worst time.Duration
	var firstErr error
	for range holders {
		r := <-replies
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		if t := s.cfg.Disk.Time(r.res.Cost); t > worst {
			worst = t
		}
		if res == nil {
			res = r.res
		} else {
			res.Cost.Add(r.res.Cost)
		}
	}
	if res == nil {
		// No copy was written: the insert failed outright.
		return nil, 0, firstErr
	}
	// One logical record, however many copies were written. Fewer copies
	// than requested (a holder was down) is degraded but successful; the
	// record is durable on the copies that took it.
	res.Count = 1
	if req.ForceID != 0 {
		s.notePlacement(req.ForceID, primary)
	} else if len(res.Affected) > 0 {
		s.notePlacement(res.Affected[0], primary)
	}
	return res, 2*s.cfg.MsgLatency + worst, nil
}

// execBroadcast sends the request to every backend and merges the partial
// results. With replication, up to Replicas failed backends are tolerated:
// the surviving copies still cover the whole database, and the merge
// deduplicates them by database key (degraded mode).
func (s *System) execBroadcast(ctx context.Context, req *abdl.Request) (*kdb.Result, time.Duration, error) {
	view := s.viewSnap()
	replies := s.fanout(ctx, view, req)
	merged := &kdb.Result{Op: req.Kind}
	var worst time.Duration
	var firstErr error
	failed := 0
	for range view {
		r := <-replies
		if r.err != nil {
			failed++
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		if t := s.cfg.Disk.Time(r.res.Cost); t > worst {
			worst = t
		}
		merged.Merge(r.res)
	}
	if failed > 0 && failed > s.cfg.Replicas {
		return nil, 0, firstErr
	}
	// Replica copies — and, mid-migration, copies already imported by their
	// new holder while the source still has them — answer under one key;
	// keep one.
	if s.cfg.Replicas > 0 || s.migOn.Load() {
		before := len(merged.Records)
		merged.DedupByID()
		if removed := before - len(merged.Records); removed > 0 {
			s.metrics.dedup.Add(uint64(removed))
		}
	}
	merged.RecomputeAggregates(req.Target)
	// A GC sweep (or an abort erasing a key's only history) that removed
	// whole chains frees those keys' sticky placements.
	if req.Kind == abdl.MvccGC || req.Kind == abdl.MvccAbort {
		s.evictPlaced(merged.Affected)
	}
	return merged, 2*s.cfg.MsgLatency + worst, nil
}

// execRetrieveCommon runs the semi-join in two phases: the second query's
// common-attribute values are gathered from every backend, then the first
// query is broadcast and filtered at the controller. Records matching the
// two queries may live on different backends, so neither phase can be pushed
// down whole.
func (s *System) execRetrieveCommon(ctx context.Context, req *abdl.Request) (*kdb.Result, time.Duration, error) {
	phase1 := &abdl.Request{
		Kind:      abdl.Retrieve,
		Query:     req.Query2,
		Target:    []abdl.TargetItem{{Attr: req.Common}},
		SnapEpoch: req.SnapEpoch,
	}
	r1, t1, err := s.execTimed(ctx, phase1)
	if err != nil {
		return nil, 0, err
	}
	values := kdb.CommonValues(r1.Records, req.Common)

	phase2 := &abdl.Request{
		Kind:      abdl.Retrieve,
		Query:     req.Query,
		Target:    []abdl.TargetItem{{Attr: abdl.AllAttrs}},
		SnapEpoch: req.SnapEpoch,
	}
	r2, t2, err := s.execTimed(ctx, phase2)
	if err != nil {
		return nil, 0, err
	}
	kept := kdb.FilterByCommon(r2.Records, req.Common, values)

	out := &kdb.Result{Op: abdl.RetrieveCommon, Cost: r1.Cost}
	out.Cost.Add(r2.Cost)
	all := len(req.Target) == 0
	for _, t := range req.Target {
		if t.Attr == abdl.AllAttrs || t.Agg != abdl.AggNone {
			all = true
		}
	}
	for _, sr := range kept {
		rec := sr.Rec
		if !all {
			proj := &abdm.Record{}
			for _, t := range req.Target {
				if v, ok := rec.Get(t.Attr); ok {
					proj.Set(t.Attr, v)
				}
			}
			rec = proj
		}
		out.Records = append(out.Records, kdb.StoredRecord{ID: sr.ID, Rec: rec})
	}
	out.RecomputeAggregates(req.Target)
	return out, t1 + t2, nil
}

// backendReply is one backend's answer to a fanned-out request.
type backendReply struct {
	id  int
	res *kdb.Result
	err error
}

// fanout sends the request to the given backends — in parallel unless the
// Serial ablation is on — applying the deadline, retry and breaker policy
// per backend, and returns the shared reply channel. Exactly one reply per
// target is delivered.
func (s *System) fanout(ctx context.Context, targets []*backend, req *abdl.Request) <-chan backendReply {
	out := make(chan backendReply, len(targets))
	if s.cfg.Serial {
		go func() {
			for _, b := range targets {
				res, err := s.callBackendTraced(ctx, b, req)
				out <- backendReply{id: b.id, res: res, err: err}
			}
		}()
		return out
	}
	for _, b := range targets {
		go func(b *backend) {
			res, err := s.callBackendTraced(ctx, b, req)
			out <- backendReply{id: b.id, res: res, err: err}
		}(b)
	}
	return out
}

// callBackendTraced wraps callBackend in a per-backend trace span charged
// with the backend's simulated disk time. With no trace in ctx the span is
// nil and every span call no-ops.
func (s *System) callBackendTraced(ctx context.Context, b *backend, req *abdl.Request) (*kdb.Result, error) {
	_, span := obs.StartSpan(ctx, "backend.exec")
	span.SetAttr("backend", strconv.Itoa(b.id))
	res, err := s.callBackend(b, req)
	if err != nil {
		span.SetAttr("error", err.Error())
	} else if res != nil {
		span.AddSim(s.cfg.Disk.Time(res.Cost))
	}
	span.End()
	return res, err
}

// callBackend executes one request on one backend under the fault policy:
// the circuit breaker gates admission, each attempt is bounded by
// RequestTimeout, and transient failures are retried with exponential
// backoff when a resend is safe.
func (s *System) callBackend(b *backend, req *abdl.Request) (*kdb.Result, error) {
	idem := idempotent(req)
	for attempt := 0; ; attempt++ {
		probing, ok := b.admit(s.cfg)
		if !ok {
			return nil, &BackendDownError{Backend: b.id, Last: b.snapshotHealth().LastError}
		}
		if attempt > 0 {
			b.noteRetry()
			b.metrics.retries.Inc()
			backoff := s.cfg.RetryBackoff << (attempt - 1)
			if backoff > 0 {
				select {
				case <-time.After(backoff):
				case <-s.closedCh:
					return nil, ErrClosed
				}
			}
		}
		b.metrics.requests.Inc()
		res, err := s.callOnce(b, req)
		if err == nil {
			b.noteSuccess()
			return res, nil
		}
		if errors.Is(err, ErrClosed) {
			return nil, err
		}
		b.metrics.failures.Inc()
		b.noteFailure(err, s.cfg)
		// Retry only recoverable failures, and never resend a
		// non-idempotent request that may already have executed.
		if !transient(err) || (maybeApplied(err) && !idem) || attempt >= s.cfg.MaxRetries {
			return nil, err
		}
		// A failed probe leaves the breaker open; stop instead of burning
		// the remaining retries against a known-down backend.
		if probing && !b.snapshotHealth().Up {
			return nil, err
		}
	}
}

// callOnce performs a single bus round trip with the configured deadline.
func (s *System) callOnce(b *backend, req *abdl.Request) (*kdb.Result, error) {
	b.metrics.queue.Inc()
	defer b.metrics.queue.Dec()
	reply := make(chan jobReply, 1)
	var timeout <-chan time.Time
	if s.cfg.RequestTimeout > 0 {
		t := time.NewTimer(s.cfg.RequestTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case b.reqCh <- job{req: req, reply: reply}:
	case <-timeout:
		return nil, &DeadlineError{Backend: b.id, Timeout: s.cfg.RequestTimeout}
	case <-s.closedCh:
		return nil, ErrClosed
	}
	select {
	case r := <-reply:
		return r.res, r.err
	case <-timeout:
		return nil, &DeadlineError{Backend: b.id, Timeout: s.cfg.RequestTimeout}
	case <-s.closedCh:
		return nil, ErrClosed
	}
}

// ExecTransaction executes the requests sequentially, returning per-request
// results and the summed simulated response time.
func (s *System) ExecTransaction(tx abdl.Transaction) ([]*kdb.Result, time.Duration, error) {
	results := make([]*kdb.Result, 0, len(tx))
	var total time.Duration
	for i, req := range tx {
		res, t, err := s.ExecTimed(req)
		if err != nil {
			return results, total, fmt.Errorf("mbds: request %d: %w", i+1, err)
		}
		results = append(results, res)
		total += t
	}
	return results, total, nil
}

// GetByID fetches a record by database key from whichever local backend
// holds it. Remote backends are not consulted; kernel lookups over the bus
// go through ABDL retrieves on key attributes instead.
func (s *System) GetByID(id abdm.RecordID) (*abdm.Record, bool) {
	for _, b := range s.viewSnap() {
		if b.store == nil {
			continue
		}
		if rec, ok := b.store.GetByID(id); ok {
			return rec, true
		}
	}
	return nil, false
}

// Snapshot returns every record in the system ordered by database key,
// deduplicated across replicas. A remote partition that cannot be read is
// an error — unless surviving replicas cover it — so save/restore can never
// silently lose a partition.
func (s *System) Snapshot() ([]kdb.StoredRecord, error) {
	if err := s.beginOp(); err != nil {
		return nil, err
	}
	defer s.opWG.Done()
	s.fence.RLock()
	defer s.fence.RUnlock()
	var all []kdb.StoredRecord
	var firstErr error
	failed := 0
	for _, b := range s.viewSnap() {
		if b.store != nil {
			recs, err := b.store.Snapshot()
			if err != nil {
				failed++
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			all = append(all, recs...)
			continue
		}
		// Remote partition: an unqualified retrieve addresses all of it.
		res, err := s.callBackend(b, abdl.NewRetrieve(nil, abdl.AllAttrs))
		if err != nil {
			failed++
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		all = append(all, res.Records...)
	}
	if failed > 0 && failed > s.cfg.Replicas {
		return nil, fmt.Errorf("mbds: snapshot lost a partition: %w", firstErr)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	// Replicas return identical copies under one key; keep the first.
	out := all[:0]
	var last abdm.RecordID
	for i, sr := range all {
		if i > 0 && sr.ID == last {
			continue
		}
		out = append(out, sr)
		last = sr.ID
	}
	return out, nil
}
