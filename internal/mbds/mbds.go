// Package mbds implements the Multi-Backend Database System (MBDS), the
// kernel database system of MLDS.
//
// MBDS uses a software multiple-backend approach: a controller (the master)
// supervises transaction execution while N backends (the slaves) hold
// disjoint partitions of the database on their own disks and execute every
// request in parallel. The controller broadcasts each request over the
// communication bus, collects the partial results, and merges them.
//
// This implementation runs the controller and the backends as goroutines
// joined by channels (the bus). Each backend charges its work to a synthetic
// disk model; the controller's simulated response time for a request is the
// bus overhead plus the *maximum* backend time — the backends work in
// parallel — which is what produces the paper's two performance claims:
// response time falls near-reciprocally as backends are added at fixed
// database size, and stays invariant when the database grows proportionally
// with the backends.
package mbds

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/kdb"
)

// Placement selects how INSERTed records are distributed across backends.
type Placement int

// Placement policies.
const (
	// RoundRobin spreads each file's records evenly in arrival order — the
	// paper's cluster-spreading data placement, with the file as the
	// cluster. Keeping a cursor per file (rather than one global cursor)
	// prevents correlated insert patterns from phase-locking a file's
	// records onto a subset of the backends.
	RoundRobin Placement = iota
	// HashKeywords places each record by a hash of its keyword content, so
	// identical logical databases land identically regardless of load order.
	HashKeywords
)

// Config configures an MBDS instance.
type Config struct {
	Backends   int           // number of backends (>= 1)
	Disk       kdb.DiskModel // per-backend disk model
	Placement  Placement     // record placement policy
	MsgLatency time.Duration // simulated bus latency per message hop
	Serial     bool          // ablation: dispatch to backends one at a time
	NoIndexes  bool          // ablation: backends scan instead of indexing
}

// DefaultConfig returns a configuration with n backends and the default disk
// model and bus latency.
func DefaultConfig(n int) Config {
	return Config{
		Backends:   n,
		Disk:       kdb.DefaultDiskModel(),
		MsgLatency: 2 * time.Millisecond,
	}
}

// System is one MBDS instance: a controller plus its backends.
type System struct {
	cfg      Config
	dir      *abdm.Directory
	backends []*backend
	nextID   atomic.Uint64
	rrMu     sync.Mutex
	rr       map[string]uint64 // per-file round-robin cursors
	closed   atomic.Bool
}

// Executor executes ABDL requests against one backend partition. Local
// backends use a kdb.Store; remote backends (package mbdsnet) satisfy it
// over TCP.
type Executor interface {
	Exec(*abdl.Request) (*kdb.Result, error)
}

// backend is one slave: its executor plus the goroutine that serves its
// side of the bus. store is nil for remote backends.
type backend struct {
	id    int
	exec  Executor
	store *kdb.Store
	reqCh chan job
	done  chan struct{}
}

type job struct {
	req   *abdl.Request
	reply chan jobReply
}

type jobReply struct {
	res *kdb.Result
	err error
}

// New builds and starts an MBDS instance over the directory.
func New(dir *abdm.Directory, cfg Config) (*System, error) {
	if cfg.Backends < 1 {
		return nil, fmt.Errorf("mbds: need at least 1 backend, got %d", cfg.Backends)
	}
	if cfg.Disk.BlockFactor == 0 {
		cfg.Disk = kdb.DefaultDiskModel()
	}
	s := &System{cfg: cfg, dir: dir, rr: make(map[string]uint64)}
	for i := 0; i < cfg.Backends; i++ {
		opts := []kdb.Option{
			kdb.WithDisk(cfg.Disk),
			kdb.WithIDAllocator(func() abdm.RecordID {
				return abdm.RecordID(s.nextID.Add(1))
			}),
		}
		if cfg.NoIndexes {
			opts = append(opts, kdb.WithoutIndexes())
		}
		store := kdb.NewStore(dir.Clone(), opts...)
		b := &backend{
			id:    i,
			exec:  store,
			store: store,
			reqCh: make(chan job),
			done:  make(chan struct{}),
		}
		go b.serve()
		s.backends = append(s.backends, b)
	}
	return s, nil
}

// NewWithExecutors builds an MBDS instance whose backends are the given
// executors — typically mbdsnet.RemoteBackend clients, making the controller
// local and the backends remote machines, as in the original hardware
// configuration. The config's Backends count is ignored.
func NewWithExecutors(dir *abdm.Directory, cfg Config, execs []Executor) (*System, error) {
	if len(execs) < 1 {
		return nil, fmt.Errorf("mbds: need at least 1 executor")
	}
	if cfg.Disk.BlockFactor == 0 {
		cfg.Disk = kdb.DefaultDiskModel()
	}
	cfg.Backends = len(execs)
	s := &System{cfg: cfg, dir: dir, rr: make(map[string]uint64)}
	for i, ex := range execs {
		b := &backend{
			id:    i,
			exec:  ex,
			reqCh: make(chan job),
			done:  make(chan struct{}),
		}
		go b.serve()
		s.backends = append(s.backends, b)
	}
	return s, nil
}

// serve is the backend's message loop: receive a request, execute it against
// the local partition, reply with the partial result.
func (b *backend) serve() {
	defer close(b.done)
	for j := range b.reqCh {
		res, err := b.exec.Exec(j.req)
		j.reply <- jobReply{res: res, err: err}
	}
}

// Close shuts the backends down. The system must not be used afterwards.
func (s *System) Close() {
	if s.closed.Swap(true) {
		return
	}
	for _, b := range s.backends {
		close(b.reqCh)
		<-b.done
	}
}

// Backends reports the number of backends.
func (s *System) Backends() int { return len(s.backends) }

// Directory returns the controller's attribute catalog.
func (s *System) Directory() *abdm.Directory { return s.dir }

// lenOf reports one backend's record count, asking remote backends over the
// bus.
func (b *backend) lenOf() int {
	if b.store != nil {
		return b.store.Len()
	}
	if rl, ok := b.exec.(interface{ Len() (int, error) }); ok {
		if n, err := rl.Len(); err == nil {
			return n
		}
	}
	return 0
}

// Len reports the total number of records across all backends.
func (s *System) Len() int {
	n := 0
	for _, b := range s.backends {
		n += b.lenOf()
	}
	return n
}

// PartitionSizes reports each backend's record count.
func (s *System) PartitionSizes() []int {
	out := make([]int, len(s.backends))
	for i, b := range s.backends {
		out[i] = b.lenOf()
	}
	return out
}

// ErrClosed is returned by operations on a closed system.
var ErrClosed = errors.New("mbds: system is closed")

// placeFor picks the backend that stores an inserted record.
func (s *System) placeFor(rec *abdm.Record) *backend {
	switch s.cfg.Placement {
	case HashKeywords:
		h := fnv.New64a()
		_, _ = h.Write([]byte(rec.Key()))
		return s.backends[h.Sum64()%uint64(len(s.backends))]
	default:
		s.rrMu.Lock()
		defer s.rrMu.Unlock()
		file := rec.File()
		n := s.rr[file]
		s.rr[file] = n + 1
		return s.backends[n%uint64(len(s.backends))]
	}
}

// Exec executes one ABDL request across the backends and returns the merged
// result. The result's Cost is the summed backend work; use ExecTimed for
// the parallel response-time model.
func (s *System) Exec(req *abdl.Request) (*kdb.Result, error) {
	res, _, err := s.ExecTimed(req)
	return res, err
}

// ExecTimed executes one request and additionally returns the simulated
// response time under the parallel-backend model: bus latency out and back
// plus the slowest backend's disk time.
func (s *System) ExecTimed(req *abdl.Request) (*kdb.Result, time.Duration, error) {
	if s.closed.Load() {
		return nil, 0, ErrClosed
	}
	if err := req.Validate(); err != nil {
		return nil, 0, err
	}
	if req.Kind == abdl.RetrieveCommon {
		return s.execRetrieveCommon(req)
	}
	if req.Kind == abdl.Insert {
		// The directory validates once at the controller, then the record is
		// routed to exactly one backend.
		if err := s.dir.ValidateRecord(req.Record); err != nil {
			return nil, 0, err
		}
		b := s.placeFor(req.Record)
		reply := s.dispatch([]*backend{b}, req)
		r := <-reply
		if r.err != nil {
			return nil, 0, r.err
		}
		t := 2*s.cfg.MsgLatency + s.cfg.Disk.Time(r.res.Cost)
		return r.res, t, nil
	}

	// Broadcast to every backend; merge partial results.
	replies := s.dispatch(s.backends, req)
	merged := &kdb.Result{Op: req.Kind}
	var worst time.Duration
	var firstErr error
	for i := 0; i < len(s.backends); i++ {
		r := <-replies
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		if t := s.cfg.Disk.Time(r.res.Cost); t > worst {
			worst = t
		}
		merged.Merge(r.res)
	}
	if firstErr != nil {
		return nil, 0, firstErr
	}
	merged.RecomputeAggregates(req.Target)
	return merged, 2*s.cfg.MsgLatency + worst, nil
}

// execRetrieveCommon runs the semi-join in two phases: the second query's
// common-attribute values are gathered from every backend, then the first
// query is broadcast and filtered at the controller. Records matching the
// two queries may live on different backends, so neither phase can be pushed
// down whole.
func (s *System) execRetrieveCommon(req *abdl.Request) (*kdb.Result, time.Duration, error) {
	phase1 := &abdl.Request{
		Kind:   abdl.Retrieve,
		Query:  req.Query2,
		Target: []abdl.TargetItem{{Attr: req.Common}},
	}
	r1, t1, err := s.ExecTimed(phase1)
	if err != nil {
		return nil, 0, err
	}
	values := kdb.CommonValues(r1.Records, req.Common)

	phase2 := &abdl.Request{
		Kind:   abdl.Retrieve,
		Query:  req.Query,
		Target: []abdl.TargetItem{{Attr: abdl.AllAttrs}},
	}
	r2, t2, err := s.ExecTimed(phase2)
	if err != nil {
		return nil, 0, err
	}
	kept := kdb.FilterByCommon(r2.Records, req.Common, values)

	out := &kdb.Result{Op: abdl.RetrieveCommon, Cost: r1.Cost}
	out.Cost.Add(r2.Cost)
	all := len(req.Target) == 0
	for _, t := range req.Target {
		if t.Attr == abdl.AllAttrs || t.Agg != abdl.AggNone {
			all = true
		}
	}
	for _, sr := range kept {
		rec := sr.Rec
		if !all {
			proj := &abdm.Record{}
			for _, t := range req.Target {
				if v, ok := rec.Get(t.Attr); ok {
					proj.Set(t.Attr, v)
				}
			}
			rec = proj
		}
		out.Records = append(out.Records, kdb.StoredRecord{ID: sr.ID, Rec: rec})
	}
	out.RecomputeAggregates(req.Target)
	return out, t1 + t2, nil
}

// dispatch sends the request to the given backends — in parallel unless the
// Serial ablation is on — and returns the shared reply channel.
func (s *System) dispatch(targets []*backend, req *abdl.Request) chan jobReply {
	reply := make(chan jobReply, len(targets))
	if s.cfg.Serial {
		go func() {
			for _, b := range targets {
				single := make(chan jobReply, 1)
				b.reqCh <- job{req: req, reply: single}
				reply <- <-single
			}
		}()
		return reply
	}
	for _, b := range targets {
		b.reqCh <- job{req: req, reply: reply}
	}
	return reply
}

// ExecTransaction executes the requests sequentially, returning per-request
// results and the summed simulated response time.
func (s *System) ExecTransaction(tx abdl.Transaction) ([]*kdb.Result, time.Duration, error) {
	results := make([]*kdb.Result, 0, len(tx))
	var total time.Duration
	for i, req := range tx {
		res, t, err := s.ExecTimed(req)
		if err != nil {
			return results, total, fmt.Errorf("mbds: request %d: %w", i+1, err)
		}
		results = append(results, res)
		total += t
	}
	return results, total, nil
}

// GetByID fetches a record by database key from whichever local backend
// holds it. Remote backends are not consulted; kernel lookups over the bus
// go through ABDL retrieves on key attributes instead.
func (s *System) GetByID(id abdm.RecordID) (*abdm.Record, bool) {
	for _, b := range s.backends {
		if b.store == nil {
			continue
		}
		if rec, ok := b.store.GetByID(id); ok {
			return rec, true
		}
	}
	return nil, false
}

// Snapshot returns every record in the system ordered by database key.
func (s *System) Snapshot() []kdb.StoredRecord {
	var all []kdb.StoredRecord
	for _, b := range s.backends {
		if b.store == nil {
			// Remote partition: an unqualified retrieve addresses all of it.
			res, err := b.exec.Exec(abdl.NewRetrieve(nil, abdl.AllAttrs))
			if err == nil {
				all = append(all, res.Records...)
			}
			continue
		}
		all = append(all, b.store.Snapshot()...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	return all
}
