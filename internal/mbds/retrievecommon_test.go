package mbds

import (
	"testing"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
)

// TestRetrieveCommonAcrossBackends verifies the two-phase semi-join when the
// joining records live on different backends.
func TestRetrieveCommonAcrossBackends(t *testing.T) {
	dir := abdm.NewDirectory()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(dir.DefineAttr("name", abdm.KindString))
	must(dir.DefineAttr("dept", abdm.KindString))
	must(dir.DefineAttr("budget", abdm.KindInt))
	must(dir.DefineFile("emp", []string{"name", "dept"}))
	must(dir.DefineFile("proj", []string{"name", "dept", "budget"}))

	s, err := New(dir, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// 16 employees over 4 depts, 8 projects over 2 depts: round-robin
	// scatters both files over all backends, so phase-1 values must be
	// gathered globally for phase 2 to be correct.
	for i := 0; i < 16; i++ {
		rec := abdm.NewRecord("emp",
			abdm.Keyword{Attr: "name", Val: abdm.String(string(rune('a' + i)))},
			abdm.Keyword{Attr: "dept", Val: abdm.String([]string{"CS", "EE", "ME", "CE"}[i%4])})
		if _, err := s.Exec(abdl.NewInsert(rec)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		rec := abdm.NewRecord("proj",
			abdm.Keyword{Attr: "name", Val: abdm.String(string(rune('p' + i)))},
			abdm.Keyword{Attr: "dept", Val: abdm.String([]string{"CS", "EE"}[i%2])},
			abdm.Keyword{Attr: "budget", Val: abdm.Int(int64(10 * (i + 1)))})
		if _, err := s.Exec(abdl.NewInsert(rec)); err != nil {
			t.Fatal(err)
		}
	}

	req := abdl.NewRetrieveCommon(
		abdm.And(abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("emp")}),
		"dept",
		abdm.And(abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("proj")}),
		"name", "dept",
	)
	res, rt, err := s.ExecTimed(req)
	if err != nil {
		t.Fatal(err)
	}
	// CS and EE employees only: 8 of 16.
	if len(res.Records) != 8 {
		t.Fatalf("records = %d, want 8", len(res.Records))
	}
	for _, sr := range res.Records {
		v, _ := sr.Rec.Get("dept")
		if d := v.AsString(); d != "CS" && d != "EE" {
			t.Errorf("non-joining dept %q in result", d)
		}
	}
	if rt <= 0 {
		t.Error("two-phase join should accumulate simulated time")
	}

	// Narrowing the second query narrows the join.
	req2 := abdl.NewRetrieveCommon(
		abdm.And(abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("emp")}),
		"dept",
		abdm.And(
			abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("proj")},
			abdm.Predicate{Attr: "budget", Op: abdm.OpGe, Val: abdm.Int(80)},
		),
		"name",
	)
	res2, err := s.Exec(req2)
	if err != nil {
		t.Fatal(err)
	}
	// budgets 80 = project 7 (EE): only EE employees join.
	if len(res2.Records) != 4 {
		t.Errorf("narrowed join = %d records, want 4", len(res2.Records))
	}
}
