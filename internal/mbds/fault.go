package mbds

import (
	"fmt"
	"sync"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/kdb"
)

// FaultMode selects how an injected fault manifests.
type FaultMode int

// Fault modes.
const (
	// FaultErr fails the request immediately with an InjectedError — a
	// backend that answers, but with a failure.
	FaultErr FaultMode = iota
	// FaultHang blocks the request until the plan is cleared or the system
	// closes — a wedged backend. Use together with Config.RequestTimeout;
	// without a deadline the controller waits as long as the hang lasts.
	FaultHang
	// FaultDelay sleeps for the plan's Delay, then executes normally — a
	// slow disk or congested bus segment.
	FaultDelay
	// FaultDrop fails the request with an InjectedError that models a lost
	// bus message: the request never reached the backend, so retrying it is
	// always safe.
	FaultDrop
)

// String names the mode.
func (m FaultMode) String() string {
	switch m {
	case FaultErr:
		return "error"
	case FaultHang:
		return "hang"
	case FaultDelay:
		return "delay"
	case FaultDrop:
		return "drop"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// FaultPlan configures which requests a FaultyExecutor sabotages. Selection
// is deterministic: either every Nth request (EveryN) or a pseudo-random
// fraction drawn from a seeded generator (Fraction/Seed), so failure tests
// reproduce exactly without real network chaos.
type FaultPlan struct {
	Mode     FaultMode
	EveryN   int           // inject on every Nth request (1 = every); takes precedence
	Fraction float64       // else inject on ~this fraction of requests
	Seed     uint64        // generator seed for Fraction selection (0 = 1)
	Delay    time.Duration // FaultDelay: added latency before executing
}

// InjectedError is the failure a FaultyExecutor produces. It is transient:
// the controller's retry policy treats it like any other recoverable backend
// failure, which is the point of injecting it.
type InjectedError struct {
	Mode FaultMode
}

// Error describes the injected fault.
func (e *InjectedError) Error() string {
	return "mbds: injected fault (" + e.Mode.String() + ")"
}

// Transient marks the failure as retryable.
func (e *InjectedError) Transient() bool { return true }

// FaultyExecutor wraps an Executor with configurable fault injection. A nil
// plan (the initial state) passes every request through untouched; SetPlan
// swaps plans atomically mid-workload, releasing any requests a previous
// hang plan captured.
type FaultyExecutor struct {
	inner Executor

	mu       sync.Mutex
	plan     *FaultPlan
	n        uint64 // requests seen under the current plan
	rng      uint64 // xorshift64* state for Fraction selection
	injected uint64
	release  chan struct{} // closed to free hanging requests
}

// NewFaultyExecutor wraps inner with a (initially healthy) fault injector.
func NewFaultyExecutor(inner Executor) *FaultyExecutor {
	return &FaultyExecutor{inner: inner, release: make(chan struct{})}
}

// SetPlan installs a fault plan (nil restores healthy operation). Requests
// hanging under the previous plan are released with an InjectedError.
func (f *FaultyExecutor) SetPlan(p *FaultPlan) {
	f.mu.Lock()
	defer f.mu.Unlock()
	close(f.release)
	f.release = make(chan struct{})
	f.plan = p
	f.n = 0
	f.rng = 1
	if p != nil && p.Seed != 0 {
		f.rng = p.Seed
	}
}

// Fail is the common toggle: true forces every request to fail, false
// restores healthy operation.
func (f *FaultyExecutor) Fail(down bool) {
	if down {
		f.SetPlan(&FaultPlan{Mode: FaultErr, EveryN: 1})
	} else {
		f.SetPlan(nil)
	}
}

// Injected reports how many faults have been injected since creation.
func (f *FaultyExecutor) Injected() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// releaseHangs frees hanging requests without clearing the plan; Close uses
// it so a hang fault cannot wedge system shutdown.
func (f *FaultyExecutor) releaseHangs() {
	f.mu.Lock()
	defer f.mu.Unlock()
	close(f.release)
	f.release = make(chan struct{})
}

// decide advances the plan state by one request and reports whether (and
// how) to inject.
func (f *FaultyExecutor) decide() (mode FaultMode, delay time.Duration, release chan struct{}, hit bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.plan == nil {
		return 0, 0, nil, false
	}
	f.n++
	switch {
	case f.plan.EveryN > 0:
		hit = f.n%uint64(f.plan.EveryN) == 0
	case f.plan.Fraction > 0:
		// xorshift64*: deterministic, seedable, stdlib-free.
		f.rng ^= f.rng << 13
		f.rng ^= f.rng >> 7
		f.rng ^= f.rng << 17
		hit = float64(f.rng>>11)/float64(uint64(1)<<53) < f.plan.Fraction
	}
	if hit {
		f.injected++
	}
	return f.plan.Mode, f.plan.Delay, f.release, hit
}

// Exec applies the fault plan, then (for delay faults or healthy requests)
// delegates to the wrapped executor.
func (f *FaultyExecutor) Exec(req *abdl.Request) (*kdb.Result, error) {
	mode, delay, release, hit := f.decide()
	if hit {
		switch mode {
		case FaultErr, FaultDrop:
			return nil, &InjectedError{Mode: mode}
		case FaultHang:
			<-release
			return nil, &InjectedError{Mode: mode}
		case FaultDelay:
			time.Sleep(delay)
		}
	}
	return f.inner.Exec(req)
}

// Underlying returns the wrapped executor. Migration traffic — partition
// export/import and catch-up replay — is the controller's reliable control
// channel and goes straight to it, so injected bus faults cannot corrupt a
// migration.
func (f *FaultyExecutor) Underlying() Executor { return f.inner }

// Len passes the record count through to the wrapped executor, so partition
// sizes stay observable while faults are active.
func (f *FaultyExecutor) Len() (int, error) {
	if rl, ok := f.inner.(interface{ Len() (int, error) }); ok {
		return rl.Len()
	}
	if st, ok := f.inner.(*kdb.Store); ok {
		return st.Len(), nil
	}
	return 0, fmt.Errorf("mbds: wrapped executor does not report length")
}
