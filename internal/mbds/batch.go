package mbds

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/kdb"
	"mlds/internal/obs"
)

// batchSlot pairs a request with its position in the caller's batch, so a
// backend's partial results can be folded back into the right output slots.
type batchSlot struct {
	pos int
	req *abdl.Request
}

// ExecBatch executes a slice of ABDL requests in one per-backend round: the
// controller plans every request, sends each backend its whole sub-batch as
// a single bus message (a single wire message for remote backends), and
// merges the partial results positionally. It returns one result per request
// and the simulated response time of the round — bus latency out and back
// plus the slowest backend's total disk time, since the backends work their
// sub-batches in parallel.
func (s *System) ExecBatch(reqs []*abdl.Request) ([]*kdb.Result, time.Duration, error) {
	return s.ExecBatchCtx(context.Background(), reqs)
}

// ExecBatchCtx is ExecBatch carrying a request context. When the context
// holds an obs trace the round becomes one "mbds.batch" span with one
// "backend.batch" child per backend — not one span per request.
func (s *System) ExecBatchCtx(ctx context.Context, reqs []*abdl.Request) ([]*kdb.Result, time.Duration, error) {
	if err := s.beginOp(); err != nil {
		return nil, 0, err
	}
	defer s.opWG.Done()
	s.fence.RLock()
	defer s.fence.RUnlock()
	start := time.Now()
	ctx, span := obs.StartSpan(ctx, "mbds.batch")
	span.SetAttr("requests", strconv.Itoa(len(reqs)))
	results, simt, err := s.execBatch(ctx, reqs)
	if err == nil {
		for _, req := range reqs {
			s.logCatchup(req)
		}
	}
	if err != nil {
		span.SetAttr("error", err.Error())
	} else {
		span.AddSim(simt)
	}
	span.End()
	s.metrics.batches.Inc()
	s.metrics.requests.Add(uint64(len(reqs)))
	if err == nil {
		s.metrics.simSec.Observe(simt.Seconds())
		s.metrics.wallSec.Observe(time.Since(start).Seconds())
	}
	return results, simt, err
}

func (s *System) execBatch(ctx context.Context, reqs []*abdl.Request) ([]*kdb.Result, time.Duration, error) {
	if len(reqs) == 0 {
		return nil, 0, nil
	}
	for i, req := range reqs {
		if err := req.Validate(); err != nil {
			return nil, 0, fmt.Errorf("mbds: batch request %d: %w", i, err)
		}
		if req.Kind == abdl.Insert {
			if err := s.dir.ValidateRecord(req.Record); err != nil {
				return nil, 0, fmt.Errorf("mbds: batch request %d: %w", i, err)
			}
		}
	}

	results := make([]*kdb.Result, len(reqs))
	var extraSim time.Duration

	// Plan: route each request to its backends. Inserts go to their holder
	// set (with a controller-assigned key under replication, so every copy
	// shares it); RETRIEVE-COMMON is a two-phase semi-join that cannot ride
	// one bus round, so it executes inline; everything else broadcasts.
	const (
		planBroadcast = iota
		planInsert
		planInline
	)
	view := s.viewSnap()
	viewPos := make(map[*backend]int, len(view))
	for i, b := range view {
		viewPos[b] = i
	}
	plan := make([]int, len(reqs))
	insertPrimary := make([]*backend, len(reqs))
	slots := make([][]batchSlot, len(view))
	for i, req := range reqs {
		switch req.Kind {
		case abdl.RetrieveCommon:
			plan[i] = planInline
			res, t, err := s.execTimed(ctx, req)
			if err != nil {
				return nil, 0, fmt.Errorf("mbds: batch request %d: %w", i, err)
			}
			results[i] = res
			extraSim += t
		case abdl.Insert:
			plan[i] = planInsert
			r := req
			if r.ForceID != 0 {
				s.seedNextID(uint64(r.ForceID))
			} else if s.cfg.Replicas > 0 {
				cp := *r
				cp.ForceID = abdm.RecordID(s.nextID.Add(1))
				r = &cp
			}
			insertPrimary[i] = s.insertPrimaryFor(r, view)
			for _, b := range s.holdersIn(view, insertPrimary[i]) {
				slots[viewPos[b]] = append(slots[viewPos[b]], batchSlot{pos: i, req: r})
			}
		default:
			plan[i] = planBroadcast
			for p := range view {
				slots[p] = append(slots[p], batchSlot{pos: i, req: req})
			}
		}
	}

	// Fan out: one message per backend with a non-empty sub-batch, under one
	// admit/retry/breaker pass per backend.
	type batchReply struct {
		id      int
		slots   []batchSlot
		results []*kdb.Result
		err     error
	}
	var targets []*backend
	for _, b := range view {
		if len(slots[viewPos[b]]) > 0 {
			targets = append(targets, b)
		}
	}
	replies := make(chan batchReply, len(targets))
	dispatch := func(b *backend) {
		sl := slots[viewPos[b]]
		sub := make([]*abdl.Request, len(sl))
		for j, slot := range sl {
			sub[j] = slot.req
		}
		res, err := s.callBackendBatchTraced(ctx, b, sub)
		replies <- batchReply{id: b.id, slots: sl, results: res, err: err}
	}
	if s.cfg.Serial {
		go func() {
			for _, b := range targets {
				dispatch(b)
			}
		}()
	} else {
		for _, b := range targets {
			go func(b *backend) { dispatch(b) }(b)
		}
	}

	// Merge positionally. A backend's simulated time is the sum of its
	// sub-batch's disk times (it works the batch sequentially on its own
	// disk); the round's time is the slowest backend since backends overlap.
	insertCopies := make([]int, len(reqs))
	var worst time.Duration
	var firstErr error
	failed := 0
	for range targets {
		r := <-replies
		if r.err != nil {
			failed++
			if firstErr == nil {
				firstErr = fmt.Errorf("mbds: backend %d batch: %w", r.id, r.err)
			}
			continue
		}
		var sum time.Duration
		for j, res := range r.results {
			sum += s.cfg.Disk.Time(res.Cost)
			pos := r.slots[j].pos
			if plan[pos] == planInsert {
				insertCopies[pos]++
				if results[pos] == nil {
					results[pos] = res
				} else {
					results[pos].Cost.Add(res.Cost)
				}
				continue
			}
			if results[pos] == nil {
				results[pos] = &kdb.Result{Op: r.slots[j].req.Kind}
			}
			results[pos].Merge(res)
		}
		if sum > worst {
			worst = sum
		}
	}

	// A failed backend fails every broadcast position at once, so the
	// all-or-nothing tolerance check is per round: more failures than
	// replica copies means some partition is unrepresented.
	if failed > 0 && failed > s.cfg.Replicas {
		for i := range reqs {
			if plan[i] == planBroadcast {
				return nil, 0, firstErr
			}
		}
	}
	for i, req := range reqs {
		switch plan[i] {
		case planInline:
			// Already resolved.
		case planInsert:
			if insertCopies[i] == 0 {
				if firstErr == nil {
					firstErr = fmt.Errorf("mbds: batch request %d: insert wrote no copy", i)
				}
				return nil, 0, firstErr
			}
			// One logical record, however many copies were written.
			results[i].Count = 1
			if len(results[i].Affected) > 0 {
				s.notePlacement(results[i].Affected[0], insertPrimary[i])
			}
		default:
			if results[i] == nil {
				results[i] = &kdb.Result{Op: req.Kind}
			}
			if s.cfg.Replicas > 0 || s.migOn.Load() {
				before := len(results[i].Records)
				results[i].DedupByID()
				if removed := before - len(results[i].Records); removed > 0 {
					s.metrics.dedup.Add(uint64(removed))
				}
			}
			results[i].RecomputeAggregates(req.Target)
			if req.Kind == abdl.MvccGC || req.Kind == abdl.MvccAbort {
				s.evictPlaced(results[i].Affected)
			}
		}
	}
	return results, extraSim + 2*s.cfg.MsgLatency + worst, nil
}

// callBackendBatchTraced wraps callBackendBatch in one per-backend span
// charged with the backend's summed simulated disk time.
func (s *System) callBackendBatchTraced(ctx context.Context, b *backend, reqs []*abdl.Request) ([]*kdb.Result, error) {
	_, span := obs.StartSpan(ctx, "backend.batch")
	span.SetAttr("backend", strconv.Itoa(b.id))
	span.SetAttr("requests", strconv.Itoa(len(reqs)))
	res, err := s.callBackendBatch(b, reqs)
	if err != nil {
		span.SetAttr("error", err.Error())
	} else {
		var sum time.Duration
		for _, r := range res {
			sum += s.cfg.Disk.Time(r.Cost)
		}
		span.AddSim(sum)
	}
	span.End()
	return res, err
}

// callBackendBatch sends one batch to one backend under the same fault
// policy as callBackend: breaker-gated admission, per-attempt deadline, and
// bounded retries. The whole batch is the retry unit, so a resend is safe
// only when every request in it is idempotent.
func (s *System) callBackendBatch(b *backend, reqs []*abdl.Request) ([]*kdb.Result, error) {
	idem := true
	for _, r := range reqs {
		if !idempotent(r) {
			idem = false
			break
		}
	}
	for attempt := 0; ; attempt++ {
		probing, ok := b.admit(s.cfg)
		if !ok {
			return nil, &BackendDownError{Backend: b.id, Last: b.snapshotHealth().LastError}
		}
		if attempt > 0 {
			b.noteRetry()
			b.metrics.retries.Inc()
			backoff := s.cfg.RetryBackoff << (attempt - 1)
			if backoff > 0 {
				select {
				case <-time.After(backoff):
				case <-s.closedCh:
					return nil, ErrClosed
				}
			}
		}
		b.metrics.requests.Inc()
		res, err := s.callOnceBatch(b, reqs)
		if err == nil {
			b.noteSuccess()
			return res, nil
		}
		if errors.Is(err, ErrClosed) {
			return nil, err
		}
		b.metrics.failures.Inc()
		b.noteFailure(err, s.cfg)
		if !transient(err) || (maybeApplied(err) && !idem) || attempt >= s.cfg.MaxRetries {
			return nil, err
		}
		if probing && !b.snapshotHealth().Up {
			return nil, err
		}
	}
}

// callOnceBatch performs a single batched bus round trip with the configured
// deadline.
func (s *System) callOnceBatch(b *backend, reqs []*abdl.Request) ([]*kdb.Result, error) {
	b.metrics.queue.Inc()
	defer b.metrics.queue.Dec()
	reply := make(chan jobReply, 1)
	var timeout <-chan time.Time
	if s.cfg.RequestTimeout > 0 {
		t := time.NewTimer(s.cfg.RequestTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case b.reqCh <- job{batch: reqs, reply: reply}:
	case <-timeout:
		return nil, &DeadlineError{Backend: b.id, Timeout: s.cfg.RequestTimeout}
	case <-s.closedCh:
		return nil, ErrClosed
	}
	select {
	case r := <-reply:
		return r.results, r.err
	case <-timeout:
		return nil, &DeadlineError{Backend: b.id, Timeout: s.cfg.RequestTimeout}
	case <-s.closedCh:
		return nil, ErrClosed
	}
}
