package mbds

import (
	"fmt"
	"testing"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
)

func benchSystem(b *testing.B, backends, records int) *System {
	b.Helper()
	d := abdm.NewDirectory()
	for _, def := range []struct {
		name string
		kind abdm.Kind
	}{{"name", abdm.KindString}, {"dept", abdm.KindString}, {"salary", abdm.KindInt}} {
		if err := d.DefineAttr(def.name, def.kind); err != nil {
			b.Fatal(err)
		}
	}
	if err := d.DefineFile("employee", []string{"name", "dept", "salary"}); err != nil {
		b.Fatal(err)
	}
	s, err := New(d, DefaultConfig(backends))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	for i := 0; i < records; i++ {
		rec := abdm.NewRecord("employee",
			abdm.Keyword{Attr: "name", Val: abdm.String(fmt.Sprintf("e%06d", i))},
			abdm.Keyword{Attr: "dept", Val: abdm.String([]string{"CS", "EE", "ME", "CE"}[i%4])},
			abdm.Keyword{Attr: "salary", Val: abdm.Int(int64(30000 + i))})
		if _, err := s.Exec(abdl.NewInsert(rec)); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

// BenchmarkBroadcastWallClock measures real (not simulated) wall time per
// broadcast retrieval as backends grow — the goroutine-parallelism curve.
func BenchmarkBroadcastWallClock(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("backends=%d", n), func(b *testing.B) {
			s := benchSystem(b, n, 8000)
			req := abdl.NewRetrieve(abdm.And(
				abdm.Predicate{Attr: "dept", Op: abdm.OpEq, Val: abdm.String("CS")},
			), "name")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Exec(req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInsertThroughput measures placement + routing overhead.
func BenchmarkInsertThroughput(b *testing.B) {
	s := benchSystem(b, 4, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := abdm.NewRecord("employee",
			abdm.Keyword{Attr: "name", Val: abdm.String(fmt.Sprintf("x%08d", i))},
			abdm.Keyword{Attr: "dept", Val: abdm.String("CS")},
			abdm.Keyword{Attr: "salary", Val: abdm.Int(int64(i))})
		if _, err := s.Exec(abdl.NewInsert(rec)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcurrentRetrieves measures multi-client throughput.
func BenchmarkConcurrentRetrieves(b *testing.B) {
	s := benchSystem(b, 4, 8000)
	req := abdl.NewRetrieve(abdm.And(
		abdm.Predicate{Attr: "dept", Op: abdm.OpEq, Val: abdm.String("EE")},
	), "name")
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := s.Exec(req); err != nil {
				b.Fatal(err)
			}
		}
	})
}
