package mbds

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/kdb"
)

// Elastic membership and live partition migration.
//
// The backend fleet is no longer frozen at Config time. AddBackend joins a
// fresh backend (new inserts route to it immediately), Rebalance migrates a
// fair share of existing keys onto it, DrainBackend migrates everything off
// a backend before retiring it, and RemoveBackend handles unrecoverable loss
// by promoting replica successors. All of it runs under live traffic.
//
// A migration copies data in epoch-bounded rounds against the MVCC version
// chains (kdb.ExportSince / ImportPartition): round 1 copies everything,
// each later round copies only what changed while the previous round ran,
// and the final round runs under the write fence — a brief exclusive pause
// of the Exec entry points — so the placement flip observes no in-flight
// writes. Mutations the chains cannot carry (the undo path's NoVersion
// ForceID operations) and MVCC control ops are captured in a catch-up log
// while the migration runs and replayed on the destinations before the
// final round. Reads stay exact throughout: records transiently present on
// both source and destination answer under one database key, and broadcasts
// deduplicate by key whenever a migration is in flight.

// Migration tuning.
const (
	migPage      = 256 // records per export page
	migMaxRounds = 6   // unfenced copy rounds before forcing the fenced finish
	migSettle    = 32  // residue small enough to finish under the fence
)

// elasticCounters mirrors the migration metrics for MigrationStats.
type elasticCounters struct {
	keys       atomic.Uint64
	bytes      atomic.Uint64
	catchup    atomic.Uint64
	promotions atomic.Uint64
}

// MigrationStats is a point-in-time snapshot of the system's elastic
// membership counters.
type MigrationStats struct {
	Keys           uint64 // records copied by migrations
	Bytes          uint64 // approximate bytes copied
	CatchupEntries uint64 // catch-up log entries captured
	Promotions     uint64 // replica-successor promotions (failovers)
	Epoch          uint64 // current membership epoch
}

// MigrationStats returns the elastic membership counters.
func (s *System) MigrationStats() MigrationStats {
	return MigrationStats{
		Keys:           s.elastic.keys.Load(),
		Bytes:          s.elastic.bytes.Load(),
		CatchupEntries: s.elastic.catchup.Load(),
		Promotions:     s.elastic.promotions.Load(),
		Epoch:          s.MembershipEpoch(),
	}
}

// partitionExporter is implemented by executors that can page out their
// partition for migration (mbdsnet.RemoteBackend over the bus).
type partitionExporter interface {
	ExportSince(since uint64, after abdm.RecordID, limit int) ([]kdb.MigRecord, abdm.RecordID, uint64, error)
}

// partitionImporter is implemented by executors that can install exported
// records and drop stranded copies.
type partitionImporter interface {
	ImportPartition([]kdb.MigRecord) (int, error)
	DropRecords([]abdm.RecordID) (int, error)
}

// migTarget unwraps fault injection: migration traffic is the controller's
// reliable control channel, not subject to injected bus faults.
func migTarget(e Executor) Executor {
	if f, ok := e.(*FaultyExecutor); ok {
		return f.Underlying()
	}
	return e
}

// exportSince pages the backend's partition out, locally or over the bus.
func (b *backend) exportSince(since uint64, after abdm.RecordID, limit int) ([]kdb.MigRecord, abdm.RecordID, uint64, error) {
	if b.store != nil {
		return b.store.ExportSince(since, after, limit)
	}
	if pe, ok := migTarget(b.exec).(partitionExporter); ok {
		return pe.ExportSince(since, after, limit)
	}
	return nil, 0, 0, fmt.Errorf("mbds: backend %d cannot export its partition", b.id)
}

// importPartition installs exported records, locally or over the bus.
func (b *backend) importPartition(recs []kdb.MigRecord) error {
	if b.store != nil {
		_, err := b.store.ImportPartition(recs)
		return err
	}
	if pi, ok := migTarget(b.exec).(partitionImporter); ok {
		_, err := pi.ImportPartition(recs)
		return err
	}
	return fmt.Errorf("mbds: backend %d cannot import a partition", b.id)
}

// dropRecords removes stranded copies, locally or over the bus.
func (b *backend) dropRecords(ids []abdm.RecordID) error {
	if b.store != nil {
		_, err := b.store.DropRecords(ids)
		return err
	}
	if pi, ok := migTarget(b.exec).(partitionImporter); ok {
		_, err := pi.DropRecords(ids)
		return err
	}
	return fmt.Errorf("mbds: backend %d cannot drop records", b.id)
}

// migExec executes one catch-up request directly against the backend's
// partition, bypassing the bus policy (and injected faults) like the other
// migration verbs.
func (b *backend) migExec(req *abdl.Request) (*kdb.Result, error) {
	if b.store != nil {
		return b.store.Exec(req)
	}
	return migTarget(b.exec).Exec(req)
}

// placedLookup returns the recorded primary for a key (nil if none).
func (s *System) placedLookup(id abdm.RecordID) *backend {
	s.placeMu.Lock()
	defer s.placeMu.Unlock()
	return s.placed[id]
}

// installView publishes a new backend view and advances the membership
// epoch.
func (s *System) installView(v []*backend) {
	s.vmu.Lock()
	s.view = v
	s.epoch++
	e := s.epoch
	s.vmu.Unlock()
	s.metrics.membershipEpoch.Set(int64(e))
}

// removeFrom returns a copy of the view without the backend at pos.
func removeFrom(view []*backend, pos int) []*backend {
	out := make([]*backend, 0, len(view)-1)
	out = append(out, view[:pos]...)
	return append(out, view[pos+1:]...)
}

// AddBackend joins a fresh local backend to the view and returns its
// position. New inserts route to it immediately; existing keys stay where
// they are until Rebalance (or a drain) moves them.
func (s *System) AddBackend() (int, error) {
	if s.closed.Load() {
		return 0, ErrClosed
	}
	store, err := s.newLocalStore(len(s.viewSnap()))
	if err != nil {
		return 0, fmt.Errorf("mbds: opening joined backend store: %w", err)
	}
	return s.addBackend(store, store)
}

// AddBackendExecutor joins a backend served by the given executor (typically
// an mbdsnet.RemoteBackend) and returns its position. The executor's store
// must allocate database keys that cannot collide with the fleet's (see
// kdb.WithStrideIDs).
func (s *System) AddBackendExecutor(exec Executor) (int, error) {
	if s.closed.Load() {
		return 0, ErrClosed
	}
	return s.addBackend(exec, nil)
}

func (s *System) addBackend(exec Executor, store *kdb.Store) (int, error) {
	if err := s.beginOp(); err != nil {
		return 0, err
	}
	defer s.opWG.Done()
	s.memMu.Lock()
	defer s.memMu.Unlock()
	b := newBackend(s.allocBID(), exec, store, s.cfg.FaultInjection)
	s.initBackendMetrics(b)
	view := s.viewSnap()
	nv := make([]*backend, 0, len(view)+1)
	nv = append(append(nv, view...), b)
	s.installView(nv)
	return len(nv) - 1, nil
}

func (s *System) allocBID() int {
	s.vmu.Lock()
	defer s.vmu.Unlock()
	id := s.nextBID
	s.nextBID++
	return id
}

// Rebalance migrates data onto the backend at pos — typically one just
// added: from every other backend it moves the keys whose database key maps
// to pos under the grown view's modulus, and repairs replica windows that
// wrapped past the view's old end. Runs as a live migration per source
// backend; reads and writes continue throughout.
func (s *System) Rebalance(pos int) error {
	if err := s.beginOp(); err != nil {
		return err
	}
	defer s.opWG.Done()
	s.memMu.Lock()
	defer s.memMu.Unlock()
	view := s.viewSnap()
	if pos < 0 || pos >= len(view) {
		return fmt.Errorf("mbds: rebalance: no backend at position %d", pos)
	}
	if len(view) == 1 {
		return nil
	}
	nb := view[pos]
	n := uint64(len(view))
	preView := removeFrom(view, pos) // the view before nb joined
	for srcPos, src := range view {
		if src == nb {
			continue
		}
		src := src
		// A replica window starting at srcPos wrapped around the old view's
		// end iff it reaches the last old slot, so nb's insertion changed
		// its membership even for keys that do not move.
		wrapped := s.cfg.Replicas > 0 && srcPos+s.cfg.Replicas >= len(view)-1
		moved := func(id abdm.RecordID) bool { return uint64(id)%n == uint64(pos) }
		plan := &migPlan{
			src:     src,
			oldView: preView,
			dstView: view,
			pick: func(id abdm.RecordID) bool {
				if s.placedLookup(id) != src {
					return false
				}
				return moved(id) || wrapped
			},
			primary: func(id abdm.RecordID) *backend {
				if moved(id) {
					return nb
				}
				return src
			},
			finish: func() {
				s.placeMu.Lock()
				for k, b := range s.placed {
					if b == src && uint64(k)%n == uint64(pos) {
						s.placed[k] = nb
					}
				}
				s.metrics.placedKeys.Set(int64(len(s.placed)))
				s.placeMu.Unlock()
			},
		}
		if err := s.runMigration(plan); err != nil {
			return fmt.Errorf("mbds: rebalance from backend %d: %w", src.id, err)
		}
	}
	s.installView(view) // data layout changed: advance the epoch
	return nil
}

// DrainBackend gracefully removes the backend at pos: every record it
// materializes — primary keys and replica copies alike — is live-migrated to
// the holders the shrunken view assigns, the placement map flips atomically
// under the write fence, and only then is the backend retired. Concurrent
// reads and writes see no failures.
func (s *System) DrainBackend(pos int) error {
	if err := s.beginOp(); err != nil {
		return err
	}
	defer s.opWG.Done()
	s.memMu.Lock()
	defer s.memMu.Unlock()
	oldView := s.viewSnap()
	if pos < 0 || pos >= len(oldView) {
		return fmt.Errorf("mbds: drain: no backend at position %d", pos)
	}
	if len(oldView) == 1 {
		return errors.New("mbds: cannot drain the last backend")
	}
	src := oldView[pos]
	dstView := removeFrom(oldView, pos)
	n := uint64(len(dstView))
	spread := func(id abdm.RecordID) *backend { return dstView[uint64(id)%n] }
	plan := &migPlan{
		src:     src,
		oldView: oldView,
		dstView: dstView,
		pick:    func(abdm.RecordID) bool { return true },
		primary: func(id abdm.RecordID) *backend {
			if b := s.placedLookup(id); b != nil && b != src {
				return b // a replica copy held for another primary
			}
			return spread(id)
		},
		finish: func() {
			s.placeMu.Lock()
			for k, b := range s.placed {
				if b == src {
					s.placed[k] = spread(k)
				}
			}
			s.metrics.placedKeys.Set(int64(len(s.placed)))
			s.placeMu.Unlock()
			s.installView(dstView)
		},
	}
	if err := s.runMigration(plan); err != nil {
		return fmt.Errorf("mbds: drain backend %d: %w", src.id, err)
	}
	src.retire()
	if src.faulty != nil {
		src.faulty.releaseHangs()
	}
	return nil
}

// RemoveBackend removes the backend at pos without copying anything off it —
// the path for unrecoverable loss. Keys it was primary for are promoted to
// its ring successor (which, with Replicas > 0, already holds their copies,
// so no committed write is lost); the replication factor is re-established
// in the background from the surviving copies. With Replicas == 0 the dead
// backend's records are gone — that is what replication is for.
func (s *System) RemoveBackend(pos int) error {
	if err := s.beginOp(); err != nil {
		return err
	}
	defer s.opWG.Done()
	s.memMu.Lock()
	defer s.memMu.Unlock()
	oldView := s.viewSnap()
	if pos < 0 || pos >= len(oldView) {
		return fmt.Errorf("mbds: remove: no backend at position %d", pos)
	}
	if len(oldView) == 1 {
		return errors.New("mbds: cannot remove the last backend")
	}
	dead := oldView[pos]
	dstView := removeFrom(oldView, pos)
	succ := dstView[pos%len(dstView)] // the dead backend's ring successor
	s.fence.Lock()
	s.placeMu.Lock()
	for k, b := range s.placed {
		if b == dead {
			s.placed[k] = succ
		}
	}
	s.metrics.placedKeys.Set(int64(len(s.placed)))
	s.placeMu.Unlock()
	s.installView(dstView)
	s.fence.Unlock()
	s.metrics.promotions.Inc()
	s.elastic.promotions.Add(1)
	dead.retire()
	if dead.faulty != nil {
		dead.faulty.releaseHangs()
	}
	if s.cfg.Replicas > 0 {
		s.bgWG.Add(1)
		go func() {
			defer s.bgWG.Done()
			s.reReplicate(oldView, dstView, dead, succ)
		}()
	}
	return nil
}

// reReplicate restores the replication factor after a removal: every
// surviving backend whose replica window contained the dead backend
// re-migrates its primary keys to the holders the new view assigns, sourcing
// the copies it already has. Runs as ordinary live migrations.
func (s *System) reReplicate(oldView, dstView []*backend, dead, succ *backend) {
	s.memMu.Lock()
	defer s.memMu.Unlock()
	if s.closed.Load() {
		return
	}
	for _, src := range dstView {
		src := src
		// A backend needs repair when its replica window contained the dead
		// backend — or when it is the successor, which inherited the dead
		// backend's keys with one copy fewer than the factor requires.
		inWindow := src == succ
		for _, h := range s.holdersIn(oldView, src) {
			if h == dead {
				inWindow = true
				break
			}
		}
		if !inWindow {
			continue
		}
		plan := &migPlan{
			src:     src,
			oldView: dstView, // copies already sit inside the new window
			dstView: dstView,
			pick:    func(id abdm.RecordID) bool { return s.placedLookup(id) == src },
			primary: func(id abdm.RecordID) *backend { return src },
			finish:  func() {},
		}
		_ = s.runMigration(plan)
	}
}

// failoverMonitor watches backend health and removes any backend whose
// circuit breaker has been open for at least Config.FailoverAfter.
func (s *System) failoverMonitor() {
	defer s.monWG.Done()
	period := s.cfg.FailoverCheck
	if period <= 0 {
		period = s.cfg.FailoverAfter / 4
	}
	if period <= 0 {
		period = 50 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.stopMon:
			return
		case <-t.C:
			s.checkFailover()
		}
	}
}

func (s *System) checkFailover() {
	view := s.viewSnap()
	if len(view) <= 1 {
		return
	}
	for pos, b := range view {
		h := b.snapshotHealth()
		if h.Up || h.DownSince.IsZero() {
			continue
		}
		if time.Since(h.DownSince) < s.cfg.FailoverAfter {
			continue
		}
		_ = s.RemoveBackend(pos)
		return // the view changed; rescan on the next tick
	}
}

// migPlan describes one live migration: which keys leave the source, where
// they land, and how the placement state flips once the copy converges.
type migPlan struct {
	src     *backend
	oldView []*backend                      // where copies currently sit
	dstView []*backend                      // where they belong after the flip
	pick    func(id abdm.RecordID) bool     // which exported keys participate
	primary func(id abdm.RecordID) *backend // post-flip primary for picked keys
	finish  func()                          // runs under the fence after the final round
}

// runMigration executes the plan: unfenced epoch-bounded copy rounds until
// the residue settles, then — under the exclusive write fence — catch-up log
// replay, one final round, and the placement flip. On failure every copy the
// migration installed on a backend outside a key's legitimate holder set is
// dropped, so the system returns to its pre-migration state.
func (s *System) runMigration(p *migPlan) (err error) {
	s.migMu.Lock()
	s.migLog = nil
	s.migMu.Unlock()
	s.migOn.Store(true)
	// Barrier: writes that predate the flag may be mid-flight; wait them out
	// so everything after this line is either exported or logged.
	s.fence.Lock()
	//lint:ignore SA2001 empty critical section is the barrier
	s.fence.Unlock()

	imported := make(map[*backend]map[abdm.RecordID]bool)
	strays := make(map[*backend]map[abdm.RecordID]bool)
	defer func() {
		if err != nil {
			s.cleanupImports(p, imported)
		}
		s.migOn.Store(false)
		s.migMu.Lock()
		s.migLog = nil
		s.migMu.Unlock()
	}()

	var since uint64
	for round := 0; round < migMaxRounds; round++ {
		n, first, cerr := s.copyRound(p, since, imported, strays)
		if cerr != nil {
			return cerr
		}
		since = first
		if n <= migSettle {
			break
		}
	}

	s.fence.Lock()
	defer s.fence.Unlock()
	if rerr := s.replayCatchup(p, imported); rerr != nil {
		return rerr
	}
	if _, _, cerr := s.copyRound(p, since, imported, strays); cerr != nil {
		return cerr
	}
	p.finish()
	s.dropStrays(strays)
	return nil
}

// copyRound pages the source's export once through, importing each picked
// record to its new holder set and noting where stranded copies must be
// dropped after the flip. It returns how many records it copied and the
// source epoch observed at the start — the inclusive bound for the next
// round.
func (s *System) copyRound(p *migPlan, since uint64, imported, strays map[*backend]map[abdm.RecordID]bool) (int, uint64, error) {
	note := func(m map[*backend]map[abdm.RecordID]bool, b *backend, id abdm.RecordID) {
		if m[b] == nil {
			m[b] = make(map[abdm.RecordID]bool)
		}
		m[b][id] = true
	}
	var after abdm.RecordID
	var first uint64
	copied := 0
	for {
		recs, next, epoch, err := p.src.exportSince(since, after, migPage)
		if err != nil {
			return copied, first, err
		}
		if first == 0 {
			first = epoch
		}
		byDest := make(map[*backend][]kdb.MigRecord)
		for _, r := range recs {
			if p.pick != nil && !p.pick(r.ID) {
				continue
			}
			newHolders := s.holdersIn(p.dstView, p.primary(r.ID))
			inNew := make(map[*backend]bool, len(newHolders))
			for _, h := range newHolders {
				inNew[h] = true
				if h == p.src {
					continue
				}
				byDest[h] = append(byDest[h], r)
			}
			oldPrim := s.placedLookup(r.ID)
			if oldPrim == nil {
				oldPrim = p.src
			}
			for _, h := range s.holdersIn(p.oldView, oldPrim) {
				if inNew[h] {
					continue
				}
				note(strays, h, r.ID)
			}
			copied++
			s.metrics.migKeys.Inc()
			s.elastic.keys.Add(1)
			nb := uint64(r.ApproxBytes())
			s.metrics.migBytes.Add(nb)
			s.elastic.bytes.Add(nb)
		}
		for b, rs := range byDest {
			if err := b.importPartition(rs); err != nil {
				return copied, first, err
			}
			for _, r := range rs {
				note(imported, b, r.ID)
			}
		}
		if next == 0 {
			return copied, first, nil
		}
		after = next
	}
}

// replayCatchup re-executes the catch-up log on the migration's
// destinations: placement-pinned mutations go to their key's new holder set,
// MVCC commit/abort stamps to every backend that imported chains (an import
// may have delivered pending versions after the broadcast ran there). All
// replayed operations are idempotent. Caller holds the write fence.
func (s *System) replayCatchup(p *migPlan, imported map[*backend]map[abdm.RecordID]bool) error {
	s.migMu.Lock()
	log := s.migLog
	s.migLog = nil
	s.migMu.Unlock()
	for _, req := range log {
		switch req.Kind {
		case abdl.MvccCommit, abdl.MvccAbort:
			for b := range imported {
				if _, err := b.migExec(req); err != nil {
					return err
				}
			}
		default:
			// Only keys the plan covers replay here: an unrelated pinned
			// insert (every insert is pinned under replication) already
			// executed on its own holders, and pushing it through this plan's
			// primary() would strand a copy on the wrong backends.
			if p.pick != nil && !p.pick(req.ForceID) {
				continue
			}
			for _, h := range s.holdersIn(p.dstView, p.primary(req.ForceID)) {
				if h == p.src {
					continue
				}
				if _, err := h.migExec(req); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// cleanupImports undoes a failed migration: every imported copy sitting on a
// backend outside the key's legitimate (pre-flip) holder set is dropped, so
// no duplicate survives once broadcast dedup switches back off.
func (s *System) cleanupImports(p *migPlan, imported map[*backend]map[abdm.RecordID]bool) {
	for b, ids := range imported {
		var drop []abdm.RecordID
		for id := range ids {
			prim := s.placedLookup(id)
			if prim == nil {
				prim = p.src
			}
			legit := false
			for _, h := range s.holdersIn(p.oldView, prim) {
				if h == b {
					legit = true
					break
				}
			}
			if !legit {
				drop = append(drop, id)
			}
		}
		if len(drop) > 0 {
			_ = b.dropRecords(drop)
		}
	}
}

// dropStrays removes copies stranded on backends that left their keys'
// holder sets. The authoritative copies — full version chains included —
// already live on the new holders, so snapshots lose nothing. Runs after
// the flip, while broadcast dedup is still forced on.
func (s *System) dropStrays(strays map[*backend]map[abdm.RecordID]bool) {
	for b, ids := range strays {
		if b.store == nil && len(ids) == 0 {
			continue
		}
		drop := make([]abdm.RecordID, 0, len(ids))
		for id := range ids {
			drop = append(drop, id)
		}
		if len(drop) > 0 {
			_ = b.dropRecords(drop)
		}
	}
}
