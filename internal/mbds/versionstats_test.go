package mbds

import (
	"fmt"
	"testing"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
)

// totalVersions sums the MVCC version footprint across every local backend
// store.
func totalVersions(t *testing.T, s *System) int {
	t.Helper()
	total := 0
	for pos := 0; pos < s.Backends(); pos++ {
		st := s.Store(pos)
		if st == nil {
			t.Fatalf("backend %d has no local store", pos)
		}
		v, _ := st.VersionStats()
		total += v
	}
	return total
}

// TestVersionStatsExactAcrossMigrateFailoverGC tracks the exact systemwide
// version count through the full elastic lifecycle: replicated inserts and
// updates, a rebalance onto a joined backend, a failover promotion with
// background re-replication (whose imports must carry whole chains, not just
// live records), and finally a GC watermark pass. At every stage the count
// must equal the arithmetic of the workload — any drift means a migration or
// re-replication path dropped or duplicated history.
func TestVersionStatsExactAcrossMigrateFailoverGC(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Replicas = 1
	s, err := New(testDir(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	// 20 records, 2 copies each: one committed version per copy.
	const records, copies = 20, 2
	loadEmployees(t, s, records)
	base := records * copies
	if got := totalVersions(t, s); got != base {
		t.Fatalf("versions after load = %d, want %d", got, base)
	}

	// Update 5 records in one transaction committed at epoch 10: each copy
	// of each updated record gains a version.
	const updated = 5
	for i := 0; i < updated; i++ {
		up := abdl.NewUpdate(abdm.And(
			abdm.Predicate{Attr: "name", Op: abdm.OpEq, Val: abdm.String(fmt.Sprintf("emp%04d", i))}),
			abdl.Modifier{Attr: "salary", Val: abdm.Int(99999)})
		up.TxnID = 101
		if _, err := s.Exec(up); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Exec(&abdl.Request{Kind: abdl.MvccCommit, TxnID: 101, MvccEpoch: 10}); err != nil {
		t.Fatal(err)
	}
	withHistory := base + updated*copies
	if got := totalVersions(t, s); got != withHistory {
		t.Fatalf("versions after updates = %d, want %d", got, withHistory)
	}

	// Migrate: a joined backend takes its modulus share of existing keys.
	// Chains move wholesale, so the count is invariant.
	pos, err := s.AddBackend()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Rebalance(pos); err != nil {
		t.Fatal(err)
	}
	if got := totalVersions(t, s); got != withHistory {
		t.Fatalf("versions after rebalance = %d, want %d (migration dropped or duplicated history)", got, withHistory)
	}

	// Failover: remove a backend; replicas promote, then background
	// re-replication restores the copy count. The re-imported copies must
	// carry each record's whole chain.
	if err := s.RemoveBackend(1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Len() != records*copies {
		if time.Now().After(deadline) {
			t.Fatalf("re-replication stalled: Len = %d, want %d", s.Len(), records*copies)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := totalVersions(t, s); got != withHistory {
		t.Fatalf("versions after failover = %d, want %d (re-imported chains truncated or inflated)", got, withHistory)
	}
	checkExact(t, s, records)

	// GC past the update epoch: exactly the superseded versions fall out —
	// one stale version per copy of each updated record, nothing else.
	if _, err := s.Exec(&abdl.Request{Kind: abdl.MvccGC, MvccEpoch: 11}); err != nil {
		t.Fatal(err)
	}
	if got := totalVersions(t, s); got != base {
		t.Fatalf("versions after GC = %d, want %d (GC count off by %d)", got, base, got-base)
	}
	checkExact(t, s, records)
}
