package hiekms

import (
	"strings"
	"testing"

	"mlds/internal/hiemodel"
	"mlds/internal/kc"
	"mlds/internal/mbds"
)

// The classic IMS-style school database: dept → course → enroll, with a
// second child type (office) under dept to exercise sibling-type ordering.
const schoolDBD = `
DBD NAME IS school

SEGMENT NAME IS dept
    FIELD dname CHAR 20
    FIELD floor INT

SEGMENT NAME IS course PARENT IS dept
    FIELD title CHAR 30
    FIELD credits INT

SEGMENT NAME IS enroll PARENT IS course
    FIELD sname CHAR 20
    FIELD grade FLOAT

SEGMENT NAME IS office PARENT IS dept
    FIELD room INT
`

func newIf(t *testing.T) *Interface {
	t.Helper()
	schema, err := hiemodel.Parse(schoolDBD)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := DeriveAB(schema)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := mbds.New(dir, mbds.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return New(schema, kc.New(sys))
}

func exec(t *testing.T, i *Interface, call string) *Outcome {
	t.Helper()
	out, err := i.ExecText(call)
	if err != nil {
		t.Fatalf("%s: %v", call, err)
	}
	return out
}

func ok(t *testing.T, i *Interface, call string) *Outcome {
	t.Helper()
	out := exec(t, i, call)
	if out.Status != StatusOK {
		t.Fatalf("%s: status %q", call, out.Status)
	}
	return out
}

// loadSchool builds:
//
//	dept CS (floor 2)
//	  course DB    (credits 4) → enroll Ann(3.7), Bob(3.1)
//	  course OS    (credits 3) → enroll Cey(3.9)
//	  office 210
//	dept EE (floor 3)
//	  course Radio (credits 2)
func loadSchool(t *testing.T, i *Interface) {
	t.Helper()
	ok(t, i, "ISRT dept (dname = 'CS', floor = 2)")
	ok(t, i, "ISRT course (title = 'DB', credits = 4)")
	ok(t, i, "ISRT enroll (sname = 'Ann', grade = 3.7)")
	// Position is the Ann enroll; inserting another enroll resolves the
	// course parent by walking up.
	ok(t, i, "ISRT enroll (sname = 'Bob', grade = 3.1)")
	// A new course under CS: the parent (dept) is found by ascending.
	ok(t, i, "ISRT course (title = 'OS', credits = 3)")
	ok(t, i, "ISRT enroll (sname = 'Cey', grade = 3.9)")
	// The office under CS: reposition on the dept first.
	ok(t, i, "GU dept (dname = 'CS')")
	ok(t, i, "ISRT office (room = 210)")
	// Second dept with one course.
	ok(t, i, "ISRT dept (dname = 'EE', floor = 3)")
	ok(t, i, "ISRT course (title = 'Radio', credits = 2)")
}

func TestGUQualifiedPath(t *testing.T) {
	i := newIf(t)
	loadSchool(t, i)
	out := ok(t, i, "GU dept (dname = 'CS') course (title = 'DB') enroll (sname = 'Bob')")
	if out.Segment != "enroll" || out.Values["sname"].AsString() != "Bob" {
		t.Fatalf("out = %+v", out)
	}
	// Unsatisfied SSA → GE.
	ge := exec(t, i, "GU dept (dname = 'CS') course (title = 'Radio')")
	if ge.Status != StatusGE {
		t.Errorf("status = %q, want GE", ge.Status)
	}
	// Non-child path is an error.
	if _, err := i.ExecText("GU dept (dname = 'CS') enroll (sname = 'Ann')"); err == nil {
		t.Error("skipped-level SSA accepted")
	}
}

func TestGNHierarchicOrder(t *testing.T) {
	i := newIf(t)
	loadSchool(t, i)
	// Reset position by starting a fresh session over the same kernel.
	var order []string
	ok(t, i, "GU dept (dname = 'CS')")
	// Walk everything from the first root.
	i2 := New(i.schema, i.kc)
	for {
		out, err := i2.ExecText("GN")
		if err != nil {
			t.Fatal(err)
		}
		if out.Status == StatusGB {
			break
		}
		order = append(order, out.Segment)
	}
	want := "dept course enroll enroll course enroll office dept course"
	if got := strings.Join(order, " "); got != want {
		t.Fatalf("hierarchic order:\n got %s\nwant %s", got, want)
	}
}

func TestGNWithSegmentFilter(t *testing.T) {
	i := newIf(t)
	loadSchool(t, i)
	i2 := New(i.schema, i.kc)
	var titles []string
	for {
		out, err := i2.ExecText("GN course")
		if err != nil {
			t.Fatal(err)
		}
		if out.Status == StatusGB {
			break
		}
		titles = append(titles, out.Values["title"].AsString())
	}
	if strings.Join(titles, " ") != "DB OS Radio" {
		t.Fatalf("courses = %v", titles)
	}
}

func TestGNPWithinParent(t *testing.T) {
	i := newIf(t)
	loadSchool(t, i)
	ok(t, i, "GU dept (dname = 'CS') course (title = 'DB')")
	var names []string
	for {
		out, err := i.ExecText("GNP enroll")
		if err != nil {
			t.Fatal(err)
		}
		if out.Status != StatusOK {
			if out.Status != StatusGE {
				t.Fatalf("status = %q", out.Status)
			}
			break
		}
		names = append(names, out.Values["sname"].AsString())
	}
	if strings.Join(names, " ") != "Ann Bob" {
		t.Fatalf("enrollments under DB = %v", names)
	}
	// GNP must not leak into the OS course or the EE dept.
	ok(t, i, "GU dept (dname = 'EE')")
	out := exec(t, i, "GNP enroll")
	if out.Status != StatusGE {
		t.Errorf("EE has no enrollments; status = %q", out.Status)
	}
}

func TestREPL(t *testing.T) {
	i := newIf(t)
	loadSchool(t, i)
	ok(t, i, "GU dept (dname = 'CS') course (title = 'OS')")
	out := ok(t, i, "REPL (credits = 5)")
	if out.Values["credits"].AsInt() != 5 {
		t.Fatalf("credits = %v", out.Values)
	}
	again := ok(t, i, "GU dept (dname = 'CS') course (title = 'OS')")
	if again.Values["credits"].AsInt() != 5 {
		t.Error("REPL not persisted")
	}
	if _, err := i.ExecText("REPL (nosuch = 1)"); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestDLETDeletesSubtree(t *testing.T) {
	i := newIf(t)
	loadSchool(t, i)
	ok(t, i, "GU dept (dname = 'CS') course (title = 'DB')")
	out := exec(t, i, "DLET")
	if out.Status != StatusOK {
		t.Fatalf("DLET status = %q", out.Status)
	}
	// The course and its enrollments are gone.
	ge := exec(t, i, "GU dept (dname = 'CS') course (title = 'DB')")
	if ge.Status != StatusGE {
		t.Error("deleted course still findable")
	}
	i2 := New(i.schema, i.kc)
	count := 0
	for {
		o, err := i2.ExecText("GN enroll")
		if err != nil {
			t.Fatal(err)
		}
		if o.Status == StatusGB {
			break
		}
		count++
	}
	if count != 1 { // only Cey (under OS) remains
		t.Errorf("enrollments left = %d, want 1", count)
	}
	// Position is invalidated.
	if _, err := i.ExecText("REPL (credits = 1)"); err == nil {
		t.Error("REPL after DLET accepted")
	}
}

func TestISRTRequiresParent(t *testing.T) {
	i := newIf(t)
	if _, err := i.ExecText("ISRT course (title = 'Orphan')"); err == nil {
		t.Error("dependent ISRT without position accepted")
	}
	if _, err := i.ExecText("ISRT nosuch (a = 1)"); err == nil {
		t.Error("unknown segment accepted")
	}
	ok(t, i, "ISRT dept (dname = 'X')")
	if _, err := i.ExecText("ISRT course (nosuch = 1)"); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestGNPRequiresAnchor(t *testing.T) {
	i := newIf(t)
	if _, err := i.ExecText("GNP"); err == nil {
		t.Error("GNP without anchor accepted")
	}
}

func TestDeriveABTemplates(t *testing.T) {
	schema, _ := hiemodel.Parse(schoolDBD)
	dir, err := DeriveAB(schema)
	if err != nil {
		t.Fatal(err)
	}
	tmpl, ok := dir.FileTemplate("enroll")
	if !ok || len(tmpl) != 4 { // enroll key, course parent, sname, grade
		t.Fatalf("enroll template = %v", tmpl)
	}
	if tmpl[0] != "enroll" || tmpl[1] != "course" {
		t.Errorf("template = %v", tmpl)
	}
}
