// Package hiekms implements the kernel mapping system of the DL/I
// hierarchical language interface: the hierarchical→ABDM transformation (a
// file per segment type, a parent-key attribute linking each occurrence to
// its parent) and the execution of DL/I calls — GU/GN/GNP navigation in
// hierarchic (preorder) order, ISRT, REPL and DLET — against the kernel.
package hiekms

import (
	"context"

	"fmt"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/currency"
	"mlds/internal/dli"
	"mlds/internal/hiemodel"
	"mlds/internal/kc"
)

// DeriveAB maps a hierarchical schema onto a kernel directory: a file per
// segment, whose template is the segment's key attribute (named after the
// segment), its parent's key attribute for non-roots, then its fields.
func DeriveAB(s *hiemodel.Schema) (*abdm.Directory, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	dir := abdm.NewDirectory()
	for _, seg := range s.Segments {
		if err := dir.DefineAttr(seg.Name, abdm.KindInt); err != nil {
			return nil, fmt.Errorf("hiekms: segment key %q: %w", seg.Name, err)
		}
	}
	for _, seg := range s.Segments {
		tmpl := []string{seg.Name}
		if seg.Parent != "" {
			tmpl = append(tmpl, seg.Parent)
		}
		for _, f := range seg.Fields {
			var kind abdm.Kind
			switch f.Type {
			case hiemodel.FieldInt:
				kind = abdm.KindInt
			case hiemodel.FieldFloat:
				kind = abdm.KindFloat
			default:
				kind = abdm.KindString
			}
			if err := dir.DefineAttr(f.Name, kind); err != nil {
				return nil, fmt.Errorf("hiekms: segment %q field %q: %w", seg.Name, f.Name, err)
			}
			tmpl = append(tmpl, f.Name)
		}
		if err := dir.DefineFile(seg.Name, tmpl); err != nil {
			return nil, err
		}
	}
	return dir, nil
}

// Status values of a DL/I call, following IMS conventions: "" is success,
// GE means the search argument was not satisfied, GB means end of database.
const (
	StatusOK = ""
	StatusGE = "GE"
	StatusGB = "GB"
)

// Outcome reports one executed DL/I call.
type Outcome struct {
	Status  string
	Segment string
	Key     currency.Key
	Values  map[string]abdm.Value
}

// position identifies one segment occurrence.
type position struct {
	Seg   string
	Key   currency.Key
	Valid bool
}

// Interface is one user's DL/I session.
type Interface struct {
	schema *hiemodel.Schema
	kc     *kc.Controller
	reqCtx context.Context // set by ExecCtx for the call's duration

	pos    position // current position (last GU/GN/GNP/ISRT target)
	anchor position // parentage for GNP, set by GU/GN
}

// New builds a DL/I interface over a hierarchical database.
func New(s *hiemodel.Schema, ctrl *kc.Controller) *Interface {
	return &Interface{schema: s, kc: ctrl}
}

// ExecText parses and executes one DL/I call.
func (i *Interface) ExecText(src string) (*Outcome, error) {
	call, err := dli.Parse(src)
	if err != nil {
		return nil, err
	}
	return i.Exec(call)
}

// Exec executes one parsed call.
func (i *Interface) Exec(call dli.Call) (*Outcome, error) {
	switch v := call.(type) {
	case *dli.GU:
		return i.execGU(v)
	case *dli.GN:
		return i.execGN(v)
	case *dli.GNP:
		return i.execGNP(v)
	case *dli.ISRT:
		return i.execISRT(v)
	case *dli.REPL:
		return i.execREPL(v)
	case *dli.DLET:
		return i.execDLET()
	default:
		return nil, fmt.Errorf("hiekms: unsupported call %T", call)
	}
}

// --- kernel access helpers ---------------------------------------------------

func filePred(seg string) abdm.Predicate {
	return abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String(seg)}
}

// occurrences retrieves segment occurrences, optionally qualified and
// optionally restricted to one parent, ordered by key.
func (i *Interface) occurrences(seg *hiemodel.Segment, conds []dli.Cond, parent *currency.Key) ([]*abdm.Record, error) {
	conj := abdm.Conjunction{filePred(seg.Name)}
	if parent != nil {
		conj = append(conj, abdm.Predicate{Attr: seg.Parent, Op: abdm.OpEq, Val: abdm.Int(*parent)})
	}
	for _, c := range conds {
		f, ok := seg.Field(c.Field)
		if !ok {
			return nil, fmt.Errorf("hiekms: segment %q has no field %q", seg.Name, c.Field)
		}
		_ = f
		conj = append(conj, abdm.Predicate{Attr: c.Field, Op: c.Op, Val: c.Val})
	}
	res, err := i.kcExec(abdl.NewRetrieve(abdm.Query{conj}, abdl.AllAttrs))
	if err != nil {
		return nil, err
	}
	// Order by segment key.
	recs := make([]*abdm.Record, 0, len(res.Records))
	for _, sr := range res.Records {
		recs = append(recs, sr.Rec)
	}
	sortByKey(recs, seg.Name)
	return recs, nil
}

func sortByKey(recs []*abdm.Record, keyAttr string) {
	for a := 1; a < len(recs); a++ {
		for b := a; b > 0; b-- {
			ka, _ := recs[b-1].Get(keyAttr)
			kb, _ := recs[b].Get(keyAttr)
			if ka.AsInt() <= kb.AsInt() {
				break
			}
			recs[b-1], recs[b] = recs[b], recs[b-1]
		}
	}
}

func keyOf(rec *abdm.Record, seg string) currency.Key {
	v, _ := rec.Get(seg)
	return v.AsInt()
}

// fetch retrieves one occurrence by position.
func (i *Interface) fetch(p position) (*abdm.Record, error) {
	seg, ok := i.schema.Segment(p.Seg)
	if !ok {
		return nil, fmt.Errorf("hiekms: unknown segment %q", p.Seg)
	}
	conj := abdm.Conjunction{filePred(seg.Name),
		{Attr: seg.Name, Op: abdm.OpEq, Val: abdm.Int(p.Key)}}
	res, err := i.kcExec(abdl.NewRetrieve(abdm.Query{conj}, abdl.AllAttrs))
	if err != nil {
		return nil, err
	}
	if len(res.Records) == 0 {
		return nil, fmt.Errorf("hiekms: position %s#%d vanished", p.Seg, p.Key)
	}
	return res.Records[0].Rec, nil
}

// children lists a position's child occurrences: child segment types in
// declaration order, occurrences key-ascending within each type.
func (i *Interface) children(p position) ([]position, error) {
	var out []position
	for _, child := range i.schema.Children(p.Seg) {
		recs, err := i.occurrences(child, nil, &p.Key)
		if err != nil {
			return nil, err
		}
		for _, r := range recs {
			out = append(out, position{Seg: child.Name, Key: keyOf(r, child.Name), Valid: true})
		}
	}
	return out, nil
}

// rootList lists the root occurrences in hierarchic order.
func (i *Interface) rootList() ([]position, error) {
	var out []position
	for _, root := range i.schema.Roots() {
		recs, err := i.occurrences(root, nil, nil)
		if err != nil {
			return nil, err
		}
		for _, r := range recs {
			out = append(out, position{Seg: root.Name, Key: keyOf(r, root.Name), Valid: true})
		}
	}
	return out, nil
}

// parentOf resolves a position's parent occurrence.
func (i *Interface) parentOf(p position) (position, error) {
	seg, _ := i.schema.Segment(p.Seg)
	if seg == nil || seg.Parent == "" {
		return position{}, nil
	}
	rec, err := i.fetch(p)
	if err != nil {
		return position{}, err
	}
	v, ok := rec.Get(seg.Parent)
	if !ok || v.IsNull() {
		return position{}, nil
	}
	return position{Seg: seg.Parent, Key: v.AsInt(), Valid: true}, nil
}

// nextPreorder advances one step in hierarchic order.
func (i *Interface) nextPreorder(cur position) (position, error) {
	// Descend first.
	kids, err := i.children(cur)
	if err != nil {
		return position{}, err
	}
	if len(kids) > 0 {
		return kids[0], nil
	}
	// Otherwise the next sibling, ascending as needed.
	for cur.Valid {
		parent, err := i.parentOf(cur)
		if err != nil {
			return position{}, err
		}
		var sibs []position
		if parent.Valid {
			sibs, err = i.children(parent)
		} else {
			sibs, err = i.rootList()
		}
		if err != nil {
			return position{}, err
		}
		for n, s := range sibs {
			if s.Seg == cur.Seg && s.Key == cur.Key {
				if n+1 < len(sibs) {
					return sibs[n+1], nil
				}
				break
			}
		}
		cur = parent
	}
	return position{}, nil // end of database
}

// within reports whether p lies in the subtree rooted at anchor.
func (i *Interface) within(p, anchor position) (bool, error) {
	for p.Valid {
		if p.Seg == anchor.Seg && p.Key == anchor.Key {
			return true, nil
		}
		var err error
		p, err = i.parentOf(p)
		if err != nil {
			return false, err
		}
	}
	return false, nil
}

// outcomeFor builds a successful outcome from a position.
func (i *Interface) outcomeFor(p position) (*Outcome, error) {
	rec, err := i.fetch(p)
	if err != nil {
		return nil, err
	}
	out := &Outcome{Status: StatusOK, Segment: p.Seg, Key: p.Key, Values: map[string]abdm.Value{}}
	seg, _ := i.schema.Segment(p.Seg)
	for _, f := range seg.Fields {
		if v, ok := rec.Get(f.Name); ok {
			out.Values[f.Name] = v
		}
	}
	return out, nil
}

// --- the calls -----------------------------------------------------------------

// execGU resolves the SSA path level by level: each SSA's candidates are
// qualified occurrences whose parent is the chosen occurrence of the
// previous SSA. Consecutive SSAs must be parent and child segment types.
func (i *Interface) execGU(gu *dli.GU) (*Outcome, error) {
	var found position
	var search func(level int, parent *currency.Key) (bool, error)
	search = func(level int, parent *currency.Key) (bool, error) {
		ssa := gu.Path[level]
		seg, ok := i.schema.Segment(ssa.Segment)
		if !ok {
			return false, fmt.Errorf("hiekms: unknown segment %q", ssa.Segment)
		}
		if level > 0 && seg.Parent != gu.Path[level-1].Segment {
			return false, fmt.Errorf("hiekms: %q is not a child segment of %q", ssa.Segment, gu.Path[level-1].Segment)
		}
		recs, err := i.occurrences(seg, ssa.Conds, parent)
		if err != nil {
			return false, err
		}
		for _, r := range recs {
			key := keyOf(r, seg.Name)
			if level == len(gu.Path)-1 {
				found = position{Seg: seg.Name, Key: key, Valid: true}
				return true, nil
			}
			ok, err := search(level+1, &key)
			if err != nil || ok {
				return ok, err
			}
		}
		return false, nil
	}
	ok, err := search(0, nil)
	if err != nil {
		return nil, err
	}
	if !ok {
		return &Outcome{Status: StatusGE}, nil
	}
	i.pos = found
	i.anchor = found
	return i.outcomeFor(found)
}

// execGN advances in hierarchic order; with a segment filter it skips until
// a matching occurrence.
func (i *Interface) execGN(gn *dli.GN) (*Outcome, error) {
	cur := i.pos
	for {
		var next position
		var err error
		if !cur.Valid {
			roots, rerr := i.rootList()
			if rerr != nil {
				return nil, rerr
			}
			if len(roots) == 0 {
				return &Outcome{Status: StatusGB}, nil
			}
			next = roots[0]
		} else {
			next, err = i.nextPreorder(cur)
			if err != nil {
				return nil, err
			}
			if !next.Valid {
				return &Outcome{Status: StatusGB}, nil
			}
		}
		if gn.Segment == "" || next.Seg == gn.Segment {
			i.pos = next
			i.anchor = next
			return i.outcomeFor(next)
		}
		cur = next
	}
}

// execGNP advances in hierarchic order within the subtree of the current
// anchor (the last GU/GN target).
func (i *Interface) execGNP(gnp *dli.GNP) (*Outcome, error) {
	if !i.anchor.Valid {
		return nil, fmt.Errorf("hiekms: GNP requires an established parent (issue GU or GN first)")
	}
	cur := i.pos
	for {
		next, err := i.nextPreorder(cur)
		if err != nil {
			return nil, err
		}
		if !next.Valid {
			return &Outcome{Status: StatusGE}, nil
		}
		in, err := i.within(next, i.anchor)
		if err != nil {
			return nil, err
		}
		if !in {
			return &Outcome{Status: StatusGE}, nil
		}
		if gnp.Segment == "" || next.Seg == gnp.Segment {
			i.pos = next // the anchor stays: more GNPs continue the scan
			return i.outcomeFor(next)
		}
		cur = next
	}
}

// execISRT inserts a new occurrence. A root segment needs no position; a
// dependent segment's parent occurrence is the current position or one of
// its ancestors.
func (i *Interface) execISRT(is *dli.ISRT) (*Outcome, error) {
	seg, ok := i.schema.Segment(is.Segment)
	if !ok {
		return nil, fmt.Errorf("hiekms: unknown segment %q", is.Segment)
	}
	rec := abdm.NewRecord(seg.Name)
	key := i.kc.NextKey()
	rec.Set(seg.Name, abdm.Int(key))
	if seg.Parent != "" {
		parentKey, err := i.resolveParent(seg.Parent)
		if err != nil {
			return nil, err
		}
		rec.Set(seg.Parent, abdm.Int(parentKey))
	}
	assigned := map[string]bool{}
	for _, a := range is.Assigns {
		f, ok := seg.Field(a.Field)
		if !ok {
			return nil, fmt.Errorf("hiekms: segment %q has no field %q", seg.Name, a.Field)
		}
		val, err := coerceField(a.Val, f)
		if err != nil {
			return nil, err
		}
		rec.Set(a.Field, val)
		assigned[a.Field] = true
	}
	for _, f := range seg.Fields {
		if !assigned[f.Name] {
			rec.Set(f.Name, abdm.Null())
		}
	}
	if _, err := i.kcExec(abdl.NewInsert(rec)); err != nil {
		return nil, err
	}
	i.pos = position{Seg: seg.Name, Key: key, Valid: true}
	i.anchor = i.pos
	return i.outcomeFor(i.pos)
}

// resolveParent finds the parent occurrence for an ISRT: the current
// position if it is of the parent type, else the nearest ancestor of that
// type.
func (i *Interface) resolveParent(parentSeg string) (currency.Key, error) {
	p := i.pos
	for p.Valid {
		if p.Seg == parentSeg {
			return p.Key, nil
		}
		var err error
		p, err = i.parentOf(p)
		if err != nil {
			return 0, err
		}
	}
	return 0, fmt.Errorf("hiekms: no current %q occurrence to insert under (issue GU first)", parentSeg)
}

func coerceField(v abdm.Value, f *hiemodel.Field) (abdm.Value, error) {
	if v.IsNull() {
		return v, nil
	}
	switch f.Type {
	case hiemodel.FieldInt:
		if v.Kind() == abdm.KindInt {
			return v, nil
		}
	case hiemodel.FieldFloat:
		if v.Kind() == abdm.KindFloat {
			return v, nil
		}
		if v.Kind() == abdm.KindInt {
			return abdm.Float(float64(v.AsInt())), nil
		}
	default:
		if v.Kind() == abdm.KindString {
			return v, nil
		}
	}
	return abdm.Value{}, fmt.Errorf("hiekms: value %s does not fit field %q (%s)", v, f.Name, f.Type)
}

// execREPL updates fields of the current occurrence.
func (i *Interface) execREPL(r *dli.REPL) (*Outcome, error) {
	if !i.pos.Valid {
		return nil, fmt.Errorf("hiekms: REPL requires a current position")
	}
	seg, _ := i.schema.Segment(i.pos.Seg)
	var mods []abdl.Modifier
	for _, a := range r.Assigns {
		f, ok := seg.Field(a.Field)
		if !ok {
			return nil, fmt.Errorf("hiekms: segment %q has no field %q", seg.Name, a.Field)
		}
		val, err := coerceField(a.Val, f)
		if err != nil {
			return nil, err
		}
		mods = append(mods, abdl.Modifier{Attr: a.Field, Val: val})
	}
	q := abdm.And(filePred(seg.Name),
		abdm.Predicate{Attr: seg.Name, Op: abdm.OpEq, Val: abdm.Int(i.pos.Key)})
	if _, err := i.kcExec(abdl.NewUpdate(q, mods...)); err != nil {
		return nil, err
	}
	return i.outcomeFor(i.pos)
}

// execDLET deletes the current occurrence and all of its dependents (IMS
// deletes the whole subtree).
func (i *Interface) execDLET() (*Outcome, error) {
	if !i.pos.Valid {
		return nil, fmt.Errorf("hiekms: DLET requires a current position")
	}
	deleted := i.pos
	if err := i.deleteSubtree(i.pos); err != nil {
		return nil, err
	}
	i.pos = position{}
	i.anchor = position{}
	return &Outcome{Status: StatusOK, Segment: deleted.Seg, Key: deleted.Key}, nil
}

func (i *Interface) deleteSubtree(p position) error {
	kids, err := i.children(p)
	if err != nil {
		return err
	}
	for _, k := range kids {
		if err := i.deleteSubtree(k); err != nil {
			return err
		}
	}
	q := abdm.And(filePred(p.Seg),
		abdm.Predicate{Attr: p.Seg, Op: abdm.OpEq, Val: abdm.Int(p.Key)})
	_, err = i.kcExec(abdl.NewDelete(q))
	return err
}
