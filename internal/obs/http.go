package obs

import (
	"bytes"
	"net/http"
)

// Handler serves GET /metrics (Prometheus text exposition of reg) and
// GET /healthz. healthy is consulted per request; pass nil for an
// always-healthy endpoint.
func Handler(reg *Registry, healthy func() bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write(buf.Bytes())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if healthy != nil && !healthy() {
			http.Error(w, "unhealthy", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	return mux
}
