package obs

import (
	"context"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	ctx, root := NewTrace(context.Background(), "request")
	ctx2, parse := StartSpan(ctx, "parse")
	parse.End()
	_, exec := StartSpan(ctx2, "kc.exec")
	exec.SetAttr("op", "RETRIEVE")
	exec.AddSim(3 * time.Millisecond)
	exec.End()
	root.End()

	if got := len(root.Children()); got != 1 {
		t.Fatalf("root children = %d, want 1", got)
	}
	if root.Find("parse") == nil {
		t.Fatal("parse span not found")
	}
	// kc.exec was started from the parse context, so it nests under parse.
	hit := root.Find("kc.exec")
	if hit == nil {
		t.Fatal("kc.exec span not found")
	}
	if hit.Attr("op") != "RETRIEVE" {
		t.Fatalf("attr op = %q, want RETRIEVE", hit.Attr("op"))
	}
	if hit.Duration() <= 0 {
		t.Fatal("ended span has zero duration")
	}
	if root.SimTotal() != 3*time.Millisecond {
		t.Fatalf("SimTotal = %v, want 3ms", root.SimTotal())
	}
	if !strings.Contains(root.String(), "kc.exec") {
		t.Fatalf("render missing kc.exec:\n%s", root.String())
	}
}

func TestNilSpanSafe(t *testing.T) {
	var s *Span
	s.End()
	s.AddSim(time.Second)
	s.SetAttr("k", "v")
	if s.Duration() != 0 || s.Sim() != 0 || s.SimTotal() != 0 {
		t.Fatal("nil span reported nonzero times")
	}
	if s.Find("x") != nil || s.FindAll("x") != nil || s.Children() != nil {
		t.Fatal("nil span search returned non-nil")
	}
	ctx, child := StartSpan(context.Background(), "orphan")
	if child != nil {
		t.Fatal("StartSpan without a trace should return a nil span")
	}
	if FromContext(ctx) != nil {
		t.Fatal("context without a trace should carry no span")
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	ctx, root := NewTrace(context.Background(), "request")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, c := StartSpan(ctx, "backend.exec")
			c.AddSim(time.Millisecond)
			c.End()
		}()
	}
	wg.Wait()
	root.End()
	if got := len(root.FindAll("backend.exec")); got != 16 {
		t.Fatalf("backend.exec spans = %d, want 16", got)
	}
	if root.SimTotal() != 16*time.Millisecond {
		t.Fatalf("SimTotal = %v, want 16ms", root.SimTotal())
	}
}

func TestRegistryConcurrentIncrements(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("mlds_requests_total", "requests", L("db", "University"))
			h := reg.Histogram("mlds_latency_seconds", "latency", nil, L("db", "University"))
			g := reg.Gauge("mlds_inflight", "in flight")
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Inc()
				h.Observe(0.002)
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("mlds_requests_total", "requests", L("db", "University")).Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	h := reg.Histogram("mlds_latency_seconds", "latency", nil, L("db", "University"))
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
	if diff := h.Sum() - 16.0; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("histogram sum = %v, want 16.0", h.Sum())
	}
	if reg.Gauge("mlds_inflight", "in flight").Value() != 0 {
		t.Fatal("gauge should return to zero")
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var reg *Registry
	reg.Counter("x", "").Inc()
	reg.Gauge("y", "").Set(5)
	reg.Histogram("z", "", nil).Observe(1)
	reg.GaugeFunc("w", "", func() float64 { return 1 })
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatal("nil registry exposition should be empty")
	}
}

var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? [-+0-9.eE]+(Inf)?$`)

func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("mlds_backend_requests_total", "per-backend requests", L("backend", "0")).Add(7)
	reg.Counter("mlds_backend_requests_total", "per-backend requests", L("backend", "1")).Add(3)
	reg.Gauge("mlds_queue_depth", "queue depth", L("backend", "0")).Set(2)
	reg.Histogram("mlds_request_seconds", "latency", []float64{0.01, 0.1}, L("db", "U")).Observe(0.05)
	reg.GaugeFunc("mlds_store_records", "records", func() float64 { return 42 }, L("backend", "0"))

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE mlds_backend_requests_total counter",
		`mlds_backend_requests_total{backend="0"} 7`,
		`mlds_backend_requests_total{backend="1"} 3`,
		"# TYPE mlds_queue_depth gauge",
		"# TYPE mlds_request_seconds histogram",
		`mlds_request_seconds_bucket{db="U",le="0.01"} 0`,
		`mlds_request_seconds_bucket{db="U",le="0.1"} 1`,
		`mlds_request_seconds_bucket{db="U",le="+Inf"} 1`,
		`mlds_request_seconds_sum{db="U"} 0.05`,
		`mlds_request_seconds_count{db="U"} 1`,
		`mlds_store_records{backend="0"} 42`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Every non-comment line must be a well-formed sample.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestHTTPHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("mlds_up", "").Inc()
	healthy := true
	srv := httptest.NewServer(Handler(reg, func() bool { return healthy }))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}

	hz, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != 200 {
		t.Fatalf("/healthz status = %d", hz.StatusCode)
	}
	healthy = false
	hz, err = srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != 503 {
		t.Fatalf("unhealthy /healthz status = %d, want 503", hz.StatusCode)
	}
}

func TestSlowLog(t *testing.T) {
	l := NewSlowLog(10*time.Millisecond, 3)
	if l.Record(SlowEntry{Wall: 5 * time.Millisecond}) {
		t.Fatal("fast request recorded")
	}
	for i := 0; i < 5; i++ {
		if !l.Record(SlowEntry{Text: string(rune('a' + i)), Wall: 20 * time.Millisecond}) {
			t.Fatal("slow request not recorded")
		}
	}
	got := l.Entries()
	if len(got) != 3 {
		t.Fatalf("entries = %d, want 3 (ring cap)", len(got))
	}
	if got[0].Text != "c" || got[2].Text != "e" {
		t.Fatalf("ring order wrong: %q..%q", got[0].Text, got[2].Text)
	}
	if l.Total() != 5 {
		t.Fatalf("total = %d, want 5", l.Total())
	}
	var nilLog *SlowLog
	if nilLog.Record(SlowEntry{Wall: time.Hour}) || nilLog.Entries() != nil || nilLog.Total() != 0 {
		t.Fatal("nil slow log should no-op")
	}
}
