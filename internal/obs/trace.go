// Package obs is the observability substrate of MLDS: per-request trace
// spans for every stage of the LIL → KMS → KC → KFS pipeline, a metrics
// registry of atomic counters, gauges and bounded histograms with a
// Prometheus text exposition, and a slow-request log.
//
// The package has no dependencies beyond the standard library so every layer
// of the system — the kernel store, the multi-backend controller, the
// language interfaces and the daemons — can use it freely.
package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one timed stage of a request: a node of the request's trace tree.
// A span carries both the wall-clock duration of the stage and the simulated
// kernel time it charged (the MBDS disk-model time), because the repo's
// performance claims are stated in simulated time while production profiling
// needs monotonic time.
//
// All methods are safe on a nil *Span, so instrumented code paths need not
// test whether tracing is enabled.
type Span struct {
	Name  string
	Start time.Time

	mu       sync.Mutex
	dur      time.Duration
	sim      time.Duration
	attrs    []Attr
	children []*Span
}

// Attr is one key=value annotation of a span.
type Attr struct {
	Key, Value string
}

type spanKey struct{}

// NewTrace starts a root span and returns a context carrying it. Child spans
// started from the returned context nest beneath the root.
func NewTrace(ctx context.Context, name string) (context.Context, *Span) {
	root := &Span{Name: name, Start: time.Now()}
	return context.WithValue(ctx, spanKey{}, root), root
}

// FromContext returns the innermost span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan starts a child span of the span carried by ctx and returns a
// context carrying the child. When ctx carries no span (tracing disabled),
// both return values pass through unchanged: the nil span's methods no-op.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := &Span{Name: name, Start: time.Now()}
	parent.mu.Lock()
	parent.children = append(parent.children, child)
	parent.mu.Unlock()
	return context.WithValue(ctx, spanKey{}, child), child
}

// End stamps the span's wall-clock duration. A span may be ended once; later
// calls keep the first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.dur == 0 {
		s.dur = time.Since(s.Start)
		if s.dur <= 0 {
			s.dur = time.Nanosecond // clock granularity floor: a stage ran
		}
	}
	s.mu.Unlock()
}

// Duration reports the span's wall-clock duration (zero until End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// AddSim charges simulated kernel time to the span.
func (s *Span) AddSim(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.sim += d
	s.mu.Unlock()
}

// Sim reports the simulated kernel time charged directly to this span.
func (s *Span) Sim() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sim
}

// SimTotal reports the simulated kernel time charged to this span and every
// descendant.
func (s *Span) SimTotal() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	total := s.sim
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range kids {
		total += c.SimTotal()
	}
	return total
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Attr returns the first value recorded for key, or "".
func (s *Span) Attr(key string) string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Attrs copies the span's annotations.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Children copies the span's child list in start order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Find returns the first span named name in the subtree rooted at s
// (preorder), or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children() {
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// FindAll returns every span named name in the subtree (preorder).
func (s *Span) FindAll(name string) []*Span {
	if s == nil {
		return nil
	}
	var out []*Span
	if s.Name == name {
		out = append(out, s)
	}
	for _, c := range s.Children() {
		out = append(out, c.FindAll(name)...)
	}
	return out
}

// String renders the span tree, one line per span, indented by depth.
func (s *Span) String() string {
	if s == nil {
		return "(no trace)"
	}
	var b strings.Builder
	s.render(&b, 0)
	return strings.TrimRight(b.String(), "\n")
}

func (s *Span) render(b *strings.Builder, depth int) {
	s.mu.Lock()
	dur, sim := s.dur, s.sim
	attrs := append([]Attr(nil), s.attrs...)
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	fmt.Fprintf(b, "%s%s wall=%v", strings.Repeat("  ", depth), s.Name, dur)
	if sim > 0 {
		fmt.Fprintf(b, " sim=%v", sim)
	}
	if len(attrs) > 0 {
		parts := make([]string, len(attrs))
		for i, a := range attrs {
			parts[i] = a.Key + "=" + a.Value
		}
		sort.Strings(parts)
		fmt.Fprintf(b, " {%s}", strings.Join(parts, ", "))
	}
	b.WriteString("\n")
	for _, c := range kids {
		c.render(b, depth+1)
	}
}
