package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value dimension of a metric.
type Label struct {
	Key, Value string
}

// L builds a label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing metric. All methods are safe on a
// nil *Counter, so instrumented code never tests whether metrics are wired.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the counter.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down (queue depths, in-flight
// requests). Nil-safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() {
	if g != nil {
		g.v.Add(1)
	}
}

// Dec subtracts one.
func (g *Gauge) Dec() {
	if g != nil {
		g.v.Add(-1)
	}
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a bounded cumulative histogram over float64 observations
// (typically seconds). Bucket counts, the observation count and the sum are
// all atomics, so concurrent Observe calls never block each other.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf is implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// DefBuckets covers sub-millisecond kernel hits through multi-second slow
// requests (seconds).
var DefBuckets = []float64{.0001, .0005, .001, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// metricKind discriminates exposition families.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindGaugeFunc
)

// series is one labelled time series of a family.
type series struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// family is all series sharing one metric name.
type family struct {
	name    string
	help    string
	kind    metricKind
	bounds  []float64
	mu      sync.Mutex
	series  map[string]*series // keyed by canonical label signature
	ordered []string
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. The zero registry is unusable; use NewRegistry. All
// lookup methods are safe on a nil *Registry and return nil handles whose
// operations no-op, so layers can be built with metrics unwired.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family returns (creating if needed) the named family, enforcing one kind
// per name.
func (r *Registry) familyOf(name, help string, kind metricKind, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as two kinds", name))
	}
	return f
}

func labelSig(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	cp := append([]Label(nil), labels...)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Key < cp[j].Key })
	var b strings.Builder
	for _, l := range cp {
		b.WriteString(l.Key)
		b.WriteByte('\x00')
		b.WriteString(l.Value)
		b.WriteByte('\x00')
	}
	return b.String()
}

func (f *family) seriesOf(labels []Label) *series {
	sig := labelSig(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[sig]
	if !ok {
		cp := append([]Label(nil), labels...)
		sort.Slice(cp, func(i, j int) bool { return cp[i].Key < cp[j].Key })
		s = &series{labels: cp}
		switch f.kind {
		case kindCounter:
			s.counter = &Counter{}
		case kindGauge:
			s.gauge = &Gauge{}
		case kindHistogram:
			s.hist = &Histogram{bounds: f.bounds, counts: make([]atomic.Uint64, len(f.bounds))}
		}
		f.series[sig] = s
		f.ordered = append(f.ordered, sig)
	}
	return s
}

// Counter returns the counter for name with the labels, creating it on first
// use. Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.familyOf(name, help, kindCounter, nil).seriesOf(labels).counter
}

// Gauge returns the gauge for name with the labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.familyOf(name, help, kindGauge, nil).seriesOf(labels).gauge
}

// Histogram returns the histogram for name with the labels. The bucket
// bounds of the first registration win for the whole family; pass nil to use
// DefBuckets. Bounds are validated at registration: they are sorted
// ascending and duplicates are collapsed, since Observe's bucket walk and
// the cumulative exposition both assume strictly increasing bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if len(bounds) == 0 {
		bounds = DefBuckets
	} else {
		bounds = normalizeBounds(bounds)
	}
	return r.familyOf(name, help, kindHistogram, bounds).seriesOf(labels).hist
}

// normalizeBounds returns a sorted, deduplicated copy of the bucket bounds.
// NaN bounds are dropped: no observation can fall into a NaN bucket.
func normalizeBounds(bounds []float64) []float64 {
	cp := make([]float64, 0, len(bounds))
	for _, b := range bounds {
		if !math.IsNaN(b) {
			cp = append(cp, b)
		}
	}
	sort.Float64s(cp)
	out := cp[:0]
	for i, b := range cp {
		if i > 0 && b == cp[i-1] {
			continue
		}
		out = append(out, b)
	}
	return out
}

// GaugeFunc registers a gauge whose value is computed at exposition time —
// for readings owned by another subsystem (store sizes, partition lengths).
// Re-registering the same name+labels replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	s := r.familyOf(name, help, kindGaugeFunc, nil).seriesOf(labels)
	s.fn = fn
}

// promLabels renders {k="v",...} with Prometheus escaping; "" when empty.
func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		v := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`).Replace(l.Value)
		parts[i] = fmt.Sprintf("%s=%q", l.Key, v)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func promFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4), families in registration order, series in creation
// order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()
	for _, f := range fams {
		f.mu.Lock()
		sigs := append([]string(nil), f.ordered...)
		all := make([]*series, 0, len(sigs))
		for _, sig := range sigs {
			all = append(all, f.series[sig])
		}
		f.mu.Unlock()
		typ := "counter"
		switch f.kind {
		case kindGauge, kindGaugeFunc:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, typ); err != nil {
			return err
		}
		for _, s := range all {
			var err error
			switch f.kind {
			case kindCounter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, promLabels(s.labels), s.counter.Value())
			case kindGauge:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, promLabels(s.labels), s.gauge.Value())
			case kindGaugeFunc:
				v := 0.0
				if s.fn != nil {
					v = s.fn()
				}
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, promLabels(s.labels), promFloat(v))
			case kindHistogram:
				err = writeHistogram(w, f.name, s)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, s *series) error {
	h := s.hist
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		le := promFloat(b)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(s.labels, L("le", le)), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(s.labels, L("le", "+Inf")), h.Count()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, promLabels(s.labels), promFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(s.labels), h.Count())
	return err
}
