package obs

import (
	"sync"
	"time"
)

// SlowEntry is one request that exceeded the slow threshold.
type SlowEntry struct {
	When     time.Time
	DB       string
	Language string
	Text     string
	Wall     time.Duration
	Sim      time.Duration
}

// SlowLog is a bounded ring of the most recent slow requests. A nil *SlowLog
// is a valid no-op logger, and a zero threshold disables recording.
type SlowLog struct {
	mu        sync.Mutex
	threshold time.Duration
	cap       int
	entries   []SlowEntry
	next      int
	total     uint64
}

// NewSlowLog builds a slow log keeping the last capacity entries for
// requests whose wall time meets or exceeds threshold. threshold <= 0
// disables recording.
func NewSlowLog(threshold time.Duration, capacity int) *SlowLog {
	if capacity <= 0 {
		capacity = 64
	}
	return &SlowLog{threshold: threshold, cap: capacity}
}

// Threshold reports the configured slow threshold.
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.threshold
}

// Record logs the request if its wall time meets the threshold. Returns true
// when the entry was recorded.
func (l *SlowLog) Record(e SlowEntry) bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.threshold <= 0 || e.Wall < l.threshold {
		return false
	}
	if e.When.IsZero() {
		e.When = time.Now()
	}
	if len(l.entries) < l.cap {
		l.entries = append(l.entries, e)
	} else {
		l.entries[l.next] = e
		l.next = (l.next + 1) % l.cap
	}
	l.total++
	return true
}

// Entries returns the recorded slow requests, oldest first.
func (l *SlowLog) Entries() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowEntry, 0, len(l.entries))
	if len(l.entries) < l.cap {
		out = append(out, l.entries...)
		return out
	}
	out = append(out, l.entries[l.next:]...)
	out = append(out, l.entries[:l.next]...)
	return out
}

// Total reports how many slow requests have been recorded over the log's
// lifetime, including entries the ring has since evicted.
func (l *SlowLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}
