package obs

import (
	"math"
	"strings"
	"testing"
)

// observeAll records every value and returns the per-bucket (non-cumulative)
// counts in bound order.
func bucketCounts(h *Histogram, values []float64) []uint64 {
	for _, v := range values {
		h.Observe(v)
	}
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// TestHistogramUnsortedBounds: Observe walks bounds in order and stops at
// the first match, so unsorted registration bounds used to misbucket every
// observation. Registration must sort them.
func TestHistogramUnsortedBounds(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("unsorted_seconds", "t", []float64{1.0, 0.01, 0.1})
	if got := len(h.bounds); got != 3 {
		t.Fatalf("bounds = %v, want 3 sorted bounds", h.bounds)
	}
	for i := 1; i < len(h.bounds); i++ {
		if h.bounds[i-1] >= h.bounds[i] {
			t.Fatalf("bounds not ascending after registration: %v", h.bounds)
		}
	}
	counts := bucketCounts(h, []float64{0.005, 0.05, 0.5})
	// 0.005 ≤ 0.01, 0.05 ≤ 0.1, 0.5 ≤ 1.0 — one observation per bucket.
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("bucket %d has %d observations, want 1 (counts %v, bounds %v)", i, c, counts, h.bounds)
		}
	}
}

// TestHistogramDuplicateBounds: duplicate bounds collapse at registration so
// exposition never emits two buckets with the same le label.
func TestHistogramDuplicateBounds(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("dup_seconds", "t", []float64{0.1, 0.1, 1.0, 0.1})
	if len(h.bounds) != 2 {
		t.Fatalf("bounds = %v, want [0.1 1]", h.bounds)
	}
	h.Observe(0.05)
	h.Observe(0.5)
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if got := strings.Count(text, `le="0.1"`); got != 1 {
		t.Fatalf(`%d buckets with le="0.1", want 1:`+"\n%s", got, text)
	}
	if !strings.Contains(text, `dup_seconds_bucket{le="1"} 2`) {
		t.Fatalf("cumulative bucket le=1 should hold both observations:\n%s", text)
	}
}

// TestHistogramNaNBoundDropped: a NaN bound can never match v <= b, so it is
// dropped rather than silently swallowing a bucket slot.
func TestHistogramNaNBoundDropped(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("nan_seconds", "t", []float64{math.NaN(), 0.5})
	if len(h.bounds) != 1 || h.bounds[0] != 0.5 {
		t.Fatalf("bounds = %v, want [0.5]", h.bounds)
	}
}

// TestHistogramSortedBoundsUnchanged: already-valid bounds pass through with
// the same buckets and the caller's slice is not mutated.
func TestHistogramSortedBoundsUnchanged(t *testing.T) {
	in := []float64{1.0, 0.5, 0.1} // deliberately descending
	reg := NewRegistry()
	_ = reg.Histogram("keep_seconds", "t", in)
	if in[0] != 1.0 || in[2] != 0.1 {
		t.Fatalf("registration mutated the caller's bounds slice: %v", in)
	}
}

// TestHistogramNilSafety: all methods must no-op on nil (unwired metrics).
func TestHistogramNilSafety(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram accumulated state")
	}
}
