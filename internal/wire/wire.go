// Package wire defines the message types exchanged over MLDS's two network
// hops — the controller→backend communication bus (Envelope) and the
// client→front-end serving hop (Msg) — their compact length-prefixed binary
// encoding ("framing v2", frame.go/codec.go/client.go), the stable error-code
// table (codes.go), and the conversions between wire and model types (whose
// fields are deliberately unexported). The types remain gob-encodable for the
// v1 journal format; the network paths all speak framing v2.
package wire

import (
	"fmt"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/kdb"
)

// Value is the wire form of abdm.Value.
type Value struct {
	Kind byte
	I    int64
	F    float64
	S    string
}

// FromValue converts a model value.
func FromValue(v abdm.Value) Value {
	w := Value{Kind: byte(v.Kind())}
	switch v.Kind() {
	case abdm.KindInt:
		w.I = v.AsInt()
	case abdm.KindFloat:
		w.F = v.AsFloat()
	case abdm.KindString:
		w.S = v.AsString()
	}
	return w
}

// ToValue converts back to a model value.
func (w Value) ToValue() (abdm.Value, error) {
	switch abdm.Kind(w.Kind) {
	case abdm.KindNull:
		return abdm.Null(), nil
	case abdm.KindInt:
		return abdm.Int(w.I), nil
	case abdm.KindFloat:
		return abdm.Float(w.F), nil
	case abdm.KindString:
		return abdm.String(w.S), nil
	default:
		return abdm.Value{}, fmt.Errorf("wire: unknown value kind %d", w.Kind)
	}
}

// Keyword is the wire form of abdm.Keyword.
type Keyword struct {
	Attr string
	Val  Value
}

// Record is the wire form of abdm.Record.
type Record struct {
	Keywords []Keyword
	Text     string
}

// FromRecord converts a model record.
func FromRecord(r *abdm.Record) Record {
	if r == nil {
		return Record{}
	}
	w := Record{Text: r.Text, Keywords: make([]Keyword, len(r.Keywords))}
	for i, kw := range r.Keywords {
		w.Keywords[i] = Keyword{Attr: kw.Attr, Val: FromValue(kw.Val)}
	}
	return w
}

// ToRecord converts back to a model record.
func (w Record) ToRecord() (*abdm.Record, error) {
	r := &abdm.Record{Text: w.Text}
	for _, kw := range w.Keywords {
		v, err := kw.Val.ToValue()
		if err != nil {
			return nil, err
		}
		r.Keywords = append(r.Keywords, abdm.Keyword{Attr: kw.Attr, Val: v})
	}
	return r, nil
}

// Predicate is the wire form of abdm.Predicate.
type Predicate struct {
	Attr string
	Op   byte
	Val  Value
}

// Query is the wire form of abdm.Query (DNF).
type Query [][]Predicate

// FromQuery converts a model query.
func FromQuery(q abdm.Query) Query {
	out := make(Query, len(q))
	for i, conj := range q {
		out[i] = make([]Predicate, len(conj))
		for j, p := range conj {
			out[i][j] = Predicate{Attr: p.Attr, Op: byte(p.Op), Val: FromValue(p.Val)}
		}
	}
	return out
}

// ToQuery converts back to a model query.
func (w Query) ToQuery() (abdm.Query, error) {
	if len(w) == 0 {
		return nil, nil
	}
	out := make(abdm.Query, len(w))
	for i, conj := range w {
		c := make(abdm.Conjunction, len(conj))
		for j, p := range conj {
			v, err := p.Val.ToValue()
			if err != nil {
				return nil, err
			}
			c[j] = abdm.Predicate{Attr: p.Attr, Op: abdm.Op(p.Op), Val: v}
		}
		out[i] = c
	}
	return out, nil
}

// Request is the wire form of abdl.Request.
type Request struct {
	Kind    int
	Record  Record
	HasRec  bool
	Query   Query
	Mods    []Keyword
	Target  []TargetItem
	By      string
	Common  string
	Query2  Query
	ForceID uint64 // INSERT: replica-pinned database key (0 = allocate)

	// MVCC plumbing; see the matching abdl.Request fields.
	TxnID     uint64 // mutations: pending-version owner; MVCC-COMMIT/ABORT: target txn
	SnapEpoch uint64 // RETRIEVE(-COMMON): snapshot read at this epoch
	NoVersion bool   // mutations: skip version-chain bookkeeping (undo path)
	MvccEpoch uint64 // MVCC-COMMIT: commit epoch; MVCC-GC: watermark
}

// TargetItem is the wire form of abdl.TargetItem.
type TargetItem struct {
	Agg  int
	Attr string
}

// FromRequest converts a model request.
func FromRequest(r *abdl.Request) Request {
	w := Request{
		Kind:      int(r.Kind),
		Query:     FromQuery(r.Query),
		By:        r.By,
		Common:    r.Common,
		Query2:    FromQuery(r.Query2),
		ForceID:   uint64(r.ForceID),
		TxnID:     r.TxnID,
		SnapEpoch: r.SnapEpoch,
		NoVersion: r.NoVersion,
		MvccEpoch: r.MvccEpoch,
	}
	if r.Record != nil {
		w.Record = FromRecord(r.Record)
		w.HasRec = true
	}
	for _, m := range r.Mods {
		w.Mods = append(w.Mods, Keyword{Attr: m.Attr, Val: FromValue(m.Val)})
	}
	for _, t := range r.Target {
		w.Target = append(w.Target, TargetItem{Agg: int(t.Agg), Attr: t.Attr})
	}
	return w
}

// ToRequest converts back to a model request.
func (w Request) ToRequest() (*abdl.Request, error) {
	r := &abdl.Request{
		Kind:      abdl.Kind(w.Kind),
		By:        w.By,
		Common:    w.Common,
		ForceID:   abdm.RecordID(w.ForceID),
		TxnID:     w.TxnID,
		SnapEpoch: w.SnapEpoch,
		NoVersion: w.NoVersion,
		MvccEpoch: w.MvccEpoch,
	}
	var err error
	if r.Query, err = w.Query.ToQuery(); err != nil {
		return nil, err
	}
	if r.Query2, err = w.Query2.ToQuery(); err != nil {
		return nil, err
	}
	if w.HasRec {
		if r.Record, err = w.Record.ToRecord(); err != nil {
			return nil, err
		}
	}
	for _, m := range w.Mods {
		v, err := m.Val.ToValue()
		if err != nil {
			return nil, err
		}
		r.Mods = append(r.Mods, abdl.Modifier{Attr: m.Attr, Val: v})
	}
	for _, t := range w.Target {
		r.Target = append(r.Target, abdl.TargetItem{Agg: abdl.Aggregate(t.Agg), Attr: t.Attr})
	}
	return r, nil
}

// StoredRecord is the wire form of kdb.StoredRecord.
type StoredRecord struct {
	ID  uint64
	Rec Record
}

// AggValue is the wire form of kdb.AggValue.
type AggValue struct {
	Item TargetItem
	Val  Value
}

// Group is the wire form of kdb.Group.
type Group struct {
	By   Value
	Recs []StoredRecord
	Aggs []AggValue
}

// Result is the wire form of kdb.Result.
type Result struct {
	Op       int
	Records  []StoredRecord
	Groups   []Group
	Count    int
	Affected []uint64
	Cost     kdb.Cost
	Versions int // MVCC ops: live version count on the backend
}

// FromResult converts a model result.
func FromResult(r *kdb.Result) Result {
	w := Result{Op: int(r.Op), Count: r.Count, Cost: r.Cost, Versions: r.Versions}
	for _, id := range r.Affected {
		w.Affected = append(w.Affected, uint64(id))
	}
	for _, sr := range r.Records {
		w.Records = append(w.Records, StoredRecord{ID: uint64(sr.ID), Rec: FromRecord(sr.Rec)})
	}
	for _, g := range r.Groups {
		wg := Group{By: FromValue(g.By)}
		for _, sr := range g.Recs {
			wg.Recs = append(wg.Recs, StoredRecord{ID: uint64(sr.ID), Rec: FromRecord(sr.Rec)})
		}
		for _, a := range g.Aggs {
			wg.Aggs = append(wg.Aggs, AggValue{
				Item: TargetItem{Agg: int(a.Item.Agg), Attr: a.Item.Attr},
				Val:  FromValue(a.Val),
			})
		}
		w.Groups = append(w.Groups, wg)
	}
	return w
}

// ToResult converts back to a model result.
func (w Result) ToResult() (*kdb.Result, error) {
	r := &kdb.Result{Op: abdl.Kind(w.Op), Count: w.Count, Cost: w.Cost, Versions: w.Versions}
	for _, id := range w.Affected {
		r.Affected = append(r.Affected, abdm.RecordID(id))
	}
	toStored := func(ws []StoredRecord) ([]kdb.StoredRecord, error) {
		var out []kdb.StoredRecord
		for _, sr := range ws {
			rec, err := sr.Rec.ToRecord()
			if err != nil {
				return nil, err
			}
			out = append(out, kdb.StoredRecord{ID: abdm.RecordID(sr.ID), Rec: rec})
		}
		return out, nil
	}
	var err error
	if r.Records, err = toStored(w.Records); err != nil {
		return nil, err
	}
	for _, wg := range w.Groups {
		by, err := wg.By.ToValue()
		if err != nil {
			return nil, err
		}
		g := kdb.Group{By: by}
		if g.Recs, err = toStored(wg.Recs); err != nil {
			return nil, err
		}
		for _, a := range wg.Aggs {
			v, err := a.Val.ToValue()
			if err != nil {
				return nil, err
			}
			g.Aggs = append(g.Aggs, kdb.AggValue{
				Item: abdl.TargetItem{Agg: abdl.Aggregate(a.Item.Agg), Attr: a.Item.Attr},
				Val:  v,
			})
		}
		r.Groups = append(r.Groups, g)
	}
	return r, nil
}

// MigVersion is the wire form of kdb.MigVersion: one exported entry of a
// record's version chain (HasRec false = tombstone, Epoch 0 = pending).
type MigVersion struct {
	Epoch  uint64
	Txn    uint64
	Rec    Record
	HasRec bool
}

// Mig is the wire form of kdb.MigRecord: one record's live state plus its
// version chain, as streamed by the migration verbs.
type Mig struct {
	File    string
	ID      uint64
	Live    Record
	HasLive bool
	Chain   []MigVersion
}

// FromMig converts a model migration record.
func FromMig(m *kdb.MigRecord) Mig {
	w := Mig{File: m.File, ID: uint64(m.ID)}
	if m.Live != nil {
		w.Live = FromRecord(m.Live)
		w.HasLive = true
	}
	for _, v := range m.Chain {
		wv := MigVersion{Epoch: v.Epoch, Txn: v.Txn}
		if v.Rec != nil {
			wv.Rec = FromRecord(v.Rec)
			wv.HasRec = true
		}
		w.Chain = append(w.Chain, wv)
	}
	return w
}

// ToMig converts back to a model migration record.
func (w Mig) ToMig() (kdb.MigRecord, error) {
	m := kdb.MigRecord{File: w.File, ID: abdm.RecordID(w.ID)}
	var err error
	if w.HasLive {
		if m.Live, err = w.Live.ToRecord(); err != nil {
			return m, err
		}
	}
	for _, wv := range w.Chain {
		v := kdb.MigVersion{Epoch: wv.Epoch, Txn: wv.Txn}
		if wv.HasRec {
			if v.Rec, err = wv.Rec.ToRecord(); err != nil {
				return m, err
			}
		}
		m.Chain = append(m.Chain, v)
	}
	return m, nil
}

// Envelope is one bus message: either a request (controller→backend) or a
// reply (backend→controller). Err carries execution failures as text.
//
// The "execbatch" action carries N requests in Reqs and answers with one
// Result per request in Results, so a controller batch costs one message
// round per backend instead of N.
//
// The migration verbs stream partition pages for live migration: "export"
// sends Since/After/Limit and answers with Migs, Next and Epoch; "import"
// sends Migs and answers with N (records applied); "drop" sends IDs and
// answers with N (records removed).
type Envelope struct {
	Seq     uint64
	Req     *Request
	Reqs    []Request // "execbatch": the batched requests, in order
	Res     *Result
	Results []Result // "execbatch" reply: one result per request, in order
	Err     string
	ErrCode Code   // machine-readable classification of Err (CodeOK = none)
	Action  string // "exec", "execbatch", "len", "export", "import", "drop"
	N       int

	Since uint64   // "export": inclusive epoch lower bound
	After uint64   // "export": resume after this database key
	Limit int      // "export": page size (0 = unlimited)
	Migs  []Mig    // "export" reply / "import" request: the page
	Next  uint64   // "export" reply: key to resume after (0 = done)
	Epoch uint64   // "export" reply: source commit epoch at page start
	IDs   []uint64 // "drop": database keys to remove entirely
}
