package wire

import (
	"bytes"
	"encoding/gob"
	"testing"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/kdb"
)

func TestForceIDRoundTrip(t *testing.T) {
	req := abdl.NewInsert(abdm.NewRecord("f", abdm.Keyword{Attr: "a", Val: abdm.Int(1)}))
	req.ForceID = 12345
	w := FromRequest(req)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		t.Fatal(err)
	}
	var decoded Request
	if err := gob.NewDecoder(&buf).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	back, err := decoded.ToRequest()
	if err != nil {
		t.Fatal(err)
	}
	if back.ForceID != 12345 {
		t.Errorf("ForceID round trip = %d", back.ForceID)
	}
	// Zero stays zero (allocator-assigned insert).
	plain, err := FromRequest(abdl.NewInsert(req.Record)).ToRequest()
	if err != nil {
		t.Fatal(err)
	}
	if plain.ForceID != 0 {
		t.Errorf("unpinned insert gained ForceID %d", plain.ForceID)
	}
}

func TestAffectedRoundTrip(t *testing.T) {
	res := &kdb.Result{Count: 3, Affected: []abdm.RecordID{4, 8, 15}}
	w := FromResult(res)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		t.Fatal(err)
	}
	var decoded Result
	if err := gob.NewDecoder(&buf).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	back, err := decoded.ToResult()
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Affected) != 3 {
		t.Fatalf("Affected round trip = %v", back.Affected)
	}
	for i, want := range []abdm.RecordID{4, 8, 15} {
		if back.Affected[i] != want {
			t.Errorf("Affected[%d] = %d, want %d", i, back.Affected[i], want)
		}
	}
}
