package wire

import (
	"bytes"
	"encoding/hex"
	"reflect"
	"testing"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/kdb"
)

// testEnvelope builds an envelope exercising every field group.
func testEnvelope() *Envelope {
	req := FromRequest(abdl.NewRetrieve(abdm.Query{
		{{Attr: "FILE", Op: abdm.OpEq, Val: abdm.String("student")},
			{Attr: "gpa", Op: abdm.OpGe, Val: abdm.Float(3.5)}},
		{{Attr: "major", Op: abdm.OpEq, Val: abdm.String("CS")}},
	}, "pname", "gpa").WithBy("major"))
	req.TxnID = 7
	req.SnapEpoch = 9
	ins := FromRequest(abdl.NewInsert(abdm.NewRecord("course",
		abdm.Keyword{Attr: "title", Val: abdm.String("DB")},
		abdm.Keyword{Attr: "credits", Val: abdm.Int(4)},
		abdm.Keyword{Attr: "score", Val: abdm.Null()})))
	ins.ForceID = 42
	res := FromResult(&kdb.Result{
		Op:       abdl.Retrieve,
		Count:    2,
		Affected: []abdm.RecordID{4, 8},
		Cost:     kdb.Cost{FilesTouched: 1, BlocksRead: 3, DirProbes: 2, RecordsExam: 5},
		Versions: 1,
		Records: []kdb.StoredRecord{
			{ID: 11, Rec: abdm.NewRecord("student", abdm.Keyword{Attr: "pname", Val: abdm.String("Ann")})},
		},
		Groups: []kdb.Group{{
			By: abdm.String("CS"),
			Aggs: []kdb.AggValue{{
				Item: abdl.TargetItem{Agg: abdl.AggAvg, Attr: "gpa"},
				Val:  abdm.Float(3.25),
			}},
		}},
	})
	return &Envelope{
		Seq:     3,
		Action:  "execbatch",
		Err:     "boom",
		ErrCode: CodeDraining,
		N:       -4,
		Req:     &req,
		Reqs:    []Request{ins},
		Res:     &res,
		Results: []Result{res},
		Since:   5,
		After:   6,
		Limit:   128,
		Migs: []Mig{{
			File: "student", ID: 12, HasLive: true,
			Live: FromRecord(abdm.NewRecord("student", abdm.Keyword{Attr: "gpa", Val: abdm.Float(3)})),
			Chain: []MigVersion{
				{Epoch: 2, Txn: 3, HasRec: true, Rec: FromRecord(abdm.NewRecord("student"))},
				{Epoch: 4, Txn: 5}, // tombstone
			},
		}},
		Next:  13,
		Epoch: 14,
		IDs:   []uint64{1, 2, 3},
	}
}

// sameEnvelope compares envelopes through the deterministic encoder, so nil
// and empty collections (identical on the wire and to ToRequest/ToResult)
// compare equal.
func sameEnvelope(a, b *Envelope) bool {
	return bytes.Equal(EncodeEnvelope(a), EncodeEnvelope(b))
}

func TestEnvelopeCodecRoundTrip(t *testing.T) {
	env := testEnvelope()
	got, err := DecodeEnvelope(EncodeEnvelope(env))
	if err != nil {
		t.Fatal(err)
	}
	if !sameEnvelope(env, got) {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", env, got)
	}
	if got.ErrCode != CodeDraining || got.N != -4 || got.Limit != 128 ||
		got.Req == nil || got.Res == nil || len(got.Reqs) != 1 ||
		len(got.Results) != 1 || len(got.Migs) != 1 || len(got.IDs) != 3 {
		t.Fatalf("decoded fields wrong: %+v", got)
	}
	// The decoded request must convert back to an identical model request.
	want, err := env.Req.ToRequest()
	if err != nil {
		t.Fatal(err)
	}
	back, err := got.Req.ToRequest()
	if err != nil {
		t.Fatal(err)
	}
	if want.String() != back.String() || back.TxnID != 7 || back.SnapEpoch != 9 {
		t.Fatalf("model request drifted: %s vs %s", want, back)
	}
	// Empty envelope too.
	empty := &Envelope{Action: "len"}
	got, err = DecodeEnvelope(EncodeEnvelope(empty))
	if err != nil {
		t.Fatal(err)
	}
	if !sameEnvelope(empty, got) {
		t.Fatalf("empty round trip mismatch: %+v", got)
	}
}

// TestEnvelopeGoldenFrame pins the encoding byte for byte: framing v2 is a
// protocol, so any layout change must bump the version, not silently reorder
// fields. Regenerate with: t.Log(hex.EncodeToString(EncodeEnvelope(env))).
func TestEnvelopeGoldenFrame(t *testing.T) {
	env := &Envelope{
		Seq:     9,
		Action:  "exec",
		ErrCode: CodeOK,
		Req: func() *Request {
			r := FromRequest(abdl.NewRetrieve(abdm.And(
				abdm.Predicate{Attr: "FILE", Op: abdm.OpEq, Val: abdm.String("dept")},
			), "dname"))
			return &r
		}(),
	}
	const golden = "02090465786563000000010600000001010446494c4500" +
		"73000000000000000000046465707400010005646e616d6500000000" +
		"0000000000000000000000000000"
	got := hex.EncodeToString(EncodeEnvelope(env))
	if got != golden {
		t.Fatalf("golden frame drifted:\n got  %s\n want %s", got, golden)
	}
	back, err := DecodeEnvelope(EncodeEnvelope(env))
	if err != nil {
		t.Fatal(err)
	}
	if !sameEnvelope(env, back) {
		t.Fatalf("golden round trip mismatch: %+v", back)
	}
}

// TestMsgGoldenFrame pins the client-hop message encoding the same way.
func TestMsgGoldenFrame(t *testing.T) {
	m := &Msg{
		Kind: MsgExec, SID: 5, Seq: 77, Code: CodeOK, Flags: InTxnFlag,
		DB: "university", Language: "sql", Stmt: "SELECT 1",
	}
	const want = "0203054d00020a756e69766572736974790373716c" +
		"0853454c45435420310000000000000000"
	got := hex.EncodeToString(EncodeMsg(m))
	if got != want {
		t.Fatalf("msg golden frame drifted:\n got  %s\n want %s", got, want)
	}
	back, err := DecodeMsg(EncodeMsg(m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, back) {
		t.Fatalf("msg round trip mismatch: %+v", back)
	}
}

// TestEventGoldenFrame pins the server-push message encoding: MsgEvent
// batches and the appended watch fields are protocol surface like the rest
// of the layout. Regenerate with: t.Log(hex.EncodeToString(EncodeMsg(m))).
func TestEventGoldenFrame(t *testing.T) {
	m := &Msg{
		Kind: MsgEvent, SID: 5, Watch: 3,
		Events: []Event{
			{Op: 2, ID: 11, Pos: 7, Epoch: 4, Txn: 9, File: "emp", HasRec: true,
				Rec: FromRecord(abdm.NewRecord("emp",
					abdm.Keyword{Attr: "pay", Val: abdm.Int(900)}))},
			{Op: 4, ID: 12, Pos: 8, Epoch: 4, Txn: 9, File: "emp"},
		},
	}
	const golden = "0208050000000000000000000000000302020b07040903656d70" +
		"01020446494c457300000000000000000003656d7003706179" +
		"69880e00000000000000000000040c08040903656d70000000"
	got := hex.EncodeToString(EncodeMsg(m))
	if got != golden {
		t.Fatalf("event golden frame drifted:\n got  %s\n want %s", got, golden)
	}
	back, err := DecodeMsg(EncodeMsg(m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, back) {
		t.Fatalf("event round trip mismatch: %+v", back)
	}
}

func TestMsgCodecRoundTrip(t *testing.T) {
	msgs := []*Msg{
		{Kind: MsgHello},
		{Kind: MsgOpen, SID: 1, Seq: 2, DB: "u", Language: "daplex", Flags: SnapFlag},
		{Kind: MsgReply, SID: 1, Seq: 2, Code: CodeDeadlock, Err: "x", Txn: 19,
			Flags: InTxnFlag | DrainingFlag, Rendered: "r", WallUS: 12, SimUS: 34},
		{Kind: MsgReply, Seq: 4, DBs: []DBInfo{
			{Name: "u", Model: "functional", Backends: 4, Records: 100},
			{Name: "shop", Model: "relational"},
		}},
		{Kind: MsgReply, SID: 2, Seq: 6, Rendered: "watch established", Watch: 3},
		{Kind: MsgEvent, SID: 2, Watch: 3, Events: []Event{
			{Op: 1, ID: 4, Pos: 2, Epoch: 1, Txn: 8, File: "emp"},
		}},
		{Kind: MsgWatchClose, SID: 2, Watch: 3, Code: CodeInternal, Err: "view gone"},
	}
	for _, m := range msgs {
		back, err := DecodeMsg(EncodeMsg(m))
		if err != nil {
			t.Fatalf("%+v: %v", m, err)
		}
		if !reflect.DeepEqual(m, back) {
			t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", m, back)
		}
	}
}

func TestFrameIO(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, {1}, bytes.Repeat([]byte("x"), 1000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range payloads {
		got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame round trip: %q != %q", got, p)
		}
	}
	// Oversized frames are refused before allocation.
	var big bytes.Buffer
	if err := WriteFrame(&big, bytes.Repeat([]byte("y"), 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(&big, 10); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// Truncated streams surface as errors, not hangs.
	if _, err := ReadFrame(bytes.NewReader([]byte{5, 0, 0, 0, 1}), 0); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,                                    // empty
		{9},                                    // wrong version
		{Version},                              // truncated after version
		{Version, 0xff, 0xff},                  // truncated uvarint run
		append(EncodeEnvelope(&Envelope{}), 0), // trailing byte
	}
	for _, b := range cases {
		if _, err := DecodeEnvelope(b); err == nil {
			t.Fatalf("DecodeEnvelope(%x) accepted", b)
		}
	}
	if _, err := DecodeMsg([]byte{Version}); err == nil {
		t.Fatal("truncated msg accepted")
	}
	// A huge collection count must be refused, not allocated.
	b := []byte{Version}
	b = appendUvarint(b, 0)     // seq
	b = appendString(b, "exec") // action
	b = appendUvarint(b, 0)     // errcode
	b = appendString(b, "")     // err
	b = appendVarint(b, 0)      // n
	b = appendBool(b, false)    // req
	b = appendUvarint(b, 1<<40) // reqs: absurd count
	if _, err := DecodeEnvelope(b); err == nil {
		t.Fatal("absurd collection count accepted")
	}
}

func TestCodeTable(t *testing.T) {
	if CodeDeadlock.String() != "deadlock" || Code(999).String() != "code(?)" {
		t.Fatal("code names wrong")
	}
	if !CodeDeadlock.Retryable() || !CodeDraining.Retryable() || CodeParse.Retryable() {
		t.Fatal("retryable classification wrong")
	}
	if !CodeDraining.NotExecuted() || CodeDeadlock.NotExecuted() {
		t.Fatal("not-executed classification wrong")
	}
	// The numbers are frozen protocol; assert a few anchors.
	anchors := map[Code]uint16{
		CodeOK: 0, CodeNoDatabase: 3, CodeDeadlock: 6, CodeDraining: 11, CodeProto: 16,
		CodeNoWatch: 17, CodeWatchLimit: 18, CodeView: 19,
	}
	if !CodeWatchLimit.Retryable() || !CodeWatchLimit.NotExecuted() {
		t.Fatal("watch-limit classification wrong")
	}
	if CodeView.Retryable() || CodeNoWatch.Retryable() {
		t.Fatal("view/no-watch must not be retryable")
	}
	for c, n := range anchors {
		if uint16(c) != n {
			t.Fatalf("code %s renumbered to %d (want %d)", c, uint16(c), n)
		}
	}
}
