package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeEnvelope hunts for inputs that crash, hang or over-allocate the
// bus-envelope decoder, and checks the decode→encode→decode fixpoint: any
// payload the decoder accepts must re-encode to a payload it accepts again
// with identical bytes (the codec is deterministic and canonical).
func FuzzDecodeEnvelope(f *testing.F) {
	f.Add(EncodeEnvelope(&Envelope{Action: "len"}))
	f.Add(EncodeEnvelope(testEnvelope()))
	f.Add([]byte{Version})
	f.Add([]byte{Version, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := DecodeEnvelope(data)
		if err != nil {
			return
		}
		re := EncodeEnvelope(env)
		env2, err := DecodeEnvelope(re)
		if err != nil {
			t.Fatalf("re-decode of accepted envelope failed: %v", err)
		}
		if !bytes.Equal(re, EncodeEnvelope(env2)) {
			t.Fatalf("encode not a fixpoint for %x", data)
		}
	})
}

// FuzzDecodeMsg does the same for the client-hop message decoder.
func FuzzDecodeMsg(f *testing.F) {
	f.Add(EncodeMsg(&Msg{Kind: MsgHello}))
	f.Add(EncodeMsg(&Msg{Kind: MsgExec, SID: 1, Seq: 2, Stmt: "SELECT 1"}))
	f.Add(EncodeMsg(&Msg{Kind: MsgReply, Code: CodeDeadlock, Err: "x",
		DBs: []DBInfo{{Name: "u", Model: "functional", Backends: 2, Records: 9}}}))
	f.Add(EncodeMsg(&Msg{Kind: MsgReply, SID: 1, Seq: 3, Watch: 2, Rendered: "watch established"}))
	f.Add(EncodeMsg(&Msg{Kind: MsgEvent, SID: 1, Watch: 2, Events: []Event{
		{Op: 2, ID: 7, Pos: 3, Epoch: 1, Txn: 5, File: "emp", HasRec: true,
			Rec: Record{Keywords: []Keyword{{Attr: "pay", Val: Value{Kind: 1, I: 900}}}}},
		{Op: 4, ID: 8, Pos: 4, File: "emp"},
	}}))
	f.Add(EncodeMsg(&Msg{Kind: MsgWatchClose, SID: 1, Watch: 2, Code: CodeInternal, Err: "gone"}))
	f.Add([]byte{Version, MsgReply})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMsg(data)
		if err != nil {
			return
		}
		re := EncodeMsg(m)
		m2, err := DecodeMsg(re)
		if err != nil {
			t.Fatalf("re-decode of accepted msg failed: %v", err)
		}
		if !bytes.Equal(re, EncodeMsg(m2)) {
			t.Fatalf("encode not a fixpoint for %x", data)
		}
	})
}
