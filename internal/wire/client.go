package wire

import "io"

// The client hop of framing v2: the message exchanged between a remote
// client and the mldsserver front end. One TCP connection multiplexes many
// sessions — every message carries the session id (SID) it belongs to and a
// connection-unique Seq the reply echoes, so responses interleave freely
// across sessions on one stream.
//
// Message layout (frozen; see codec.go for the primitive encodings):
//
//	Msg := version kind sid seq code flags
//	       db language stmt err rendered
//	       txn wallus simus dbs[]
//	       watch events[]

// Message kinds.
const (
	// MsgHello opens a connection: the client sends it first, the server
	// answers with its own. Both carry the protocol version in the frame.
	MsgHello byte = 1
	// MsgOpen opens a session (DB, Language, SnapFlag) under a fresh
	// client-chosen SID.
	MsgOpen byte = 2
	// MsgExec executes one statement (Stmt) on the SID's session.
	MsgExec byte = 3
	// MsgClose closes the SID's session, rolling back any open transaction.
	MsgClose byte = 4
	// MsgPing round-trips the connection.
	MsgPing byte = 5
	// MsgListDBs lists the catalog (reply carries DBs).
	MsgListDBs byte = 6
	// MsgReply answers any request: Code/Err for failures, the outcome
	// fields for an executed statement.
	MsgReply byte = 7
	// MsgEvent is a server push: one batch of change events for the watch
	// named by Watch. It carries no Seq — pushes are unsolicited.
	MsgEvent byte = 8
	// MsgWatchClose closes a watch. Client→server it asks for teardown
	// (answered by MsgReply); server→client it announces the watch ended,
	// with Code/Err saying why (CodeOK = clean close).
	MsgWatchClose byte = 9
)

// Msg flag bits.
const (
	// SnapFlag on MsgOpen: open the session in snapshot mode (every implicit
	// statement reads a lock-free snapshot; core.SnapshotSession).
	SnapFlag uint32 = 1 << 0
	// InTxnFlag on MsgReply: the session has an explicit transaction open
	// after this statement — the client mirrors it for Session.InTxn.
	InTxnFlag uint32 = 1 << 1
	// DrainingFlag on MsgReply: the server is draining; finish open
	// transactions and redial.
	DrainingFlag uint32 = 1 << 2
)

// DBInfo is one catalog entry in a MsgListDBs reply.
type DBInfo struct {
	Name     string
	Model    string
	Backends int
	Records  int
}

// Event is one pushed change in a MsgEvent batch — the wire form of
// cdc.Change (internal/cdc converts both ways).
type Event struct {
	Op     byte   // cdc.Op
	ID     uint64 // database key of the affected record
	Pos    uint64 // journal position (0 on load rows)
	Epoch  uint64 // commit epoch (0 when unknown)
	Txn    uint64 // committing transaction id
	File   string // kernel file
	HasRec bool
	Rec    Record // projected post-image, when HasRec
}

// Msg is one client↔server message. Unused fields encode as their zero
// values; Kind says which matter.
type Msg struct {
	Kind  byte
	SID   uint32 // session id within the connection
	Seq   uint64 // connection-unique request id, echoed by the reply
	Code  Code   // MsgReply: error code (CodeOK = success)
	Flags uint32

	DB       string // MsgOpen: database name
	Language string // MsgOpen: language; MsgReply: executing interface
	Stmt     string // MsgExec: statement text
	Err      string // MsgReply: error text
	Rendered string // MsgReply: KFS display rendering

	Txn    uint64 // MsgReply: aborted transaction id (deadlock/timeout)
	WallUS uint64 // MsgReply: server-side wall time, microseconds
	SimUS  uint64 // MsgReply: simulated kernel time, microseconds

	DBs []DBInfo // MsgListDBs reply

	// Watch plumbing, appended to the frozen layout (older fields keep their
	// positions). On the MsgReply to a WATCH statement, Watch is the
	// server-assigned watch id; on MsgEvent and MsgWatchClose it names the
	// watch. Events is the MsgEvent batch, in delivery order.
	Watch  uint64
	Events []Event
}

// EncodeMsg renders one client-hop message as a framing-v2 payload.
func EncodeMsg(m *Msg) []byte {
	b := make([]byte, 0, 64)
	b = append(b, Version, m.Kind)
	b = appendUvarint(b, uint64(m.SID))
	b = appendUvarint(b, m.Seq)
	b = appendUvarint(b, uint64(m.Code))
	b = appendUvarint(b, uint64(m.Flags))
	b = appendString(b, m.DB)
	b = appendString(b, m.Language)
	b = appendString(b, m.Stmt)
	b = appendString(b, m.Err)
	b = appendString(b, m.Rendered)
	b = appendUvarint(b, m.Txn)
	b = appendUvarint(b, m.WallUS)
	b = appendUvarint(b, m.SimUS)
	b = appendUvarint(b, uint64(len(m.DBs)))
	for _, db := range m.DBs {
		b = appendString(b, db.Name)
		b = appendString(b, db.Model)
		b = appendVarint(b, int64(db.Backends))
		b = appendVarint(b, int64(db.Records))
	}
	b = appendUvarint(b, m.Watch)
	b = appendUvarint(b, uint64(len(m.Events)))
	for _, e := range m.Events {
		b = append(b, e.Op)
		b = appendUvarint(b, e.ID)
		b = appendUvarint(b, e.Pos)
		b = appendUvarint(b, e.Epoch)
		b = appendUvarint(b, e.Txn)
		b = appendString(b, e.File)
		b = appendBool(b, e.HasRec)
		b = appendRecord(b, e.Rec)
	}
	return b
}

// DecodeMsg parses a framing-v2 payload back into a client-hop message.
func DecodeMsg(payload []byte) (*Msg, error) {
	d := &dec{b: payload}
	d.checkVersion()
	var m Msg
	m.Kind = d.byte()
	m.SID = uint32(d.uvarint())
	m.Seq = d.uvarint()
	m.Code = Code(d.uvarint())
	m.Flags = uint32(d.uvarint())
	m.DB = d.string()
	m.Language = d.string()
	m.Stmt = d.string()
	m.Err = d.string()
	m.Rendered = d.string()
	m.Txn = d.uvarint()
	m.WallUS = d.uvarint()
	m.SimUS = d.uvarint()
	if n := d.length(); n > 0 {
		m.DBs = make([]DBInfo, n)
		for i := range m.DBs {
			m.DBs[i] = DBInfo{
				Name:     d.string(),
				Model:    d.string(),
				Backends: int(d.varint()),
				Records:  int(d.varint()),
			}
		}
	}
	m.Watch = d.uvarint()
	if n := d.length(); n > 0 {
		m.Events = make([]Event, n)
		for i := range m.Events {
			e := &m.Events[i]
			e.Op = d.byte()
			e.ID = d.uvarint()
			e.Pos = d.uvarint()
			e.Epoch = d.uvarint()
			e.Txn = d.uvarint()
			e.File = d.string()
			e.HasRec = d.bool()
			e.Rec = d.record()
		}
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return &m, nil
}

// WriteMsg frames and writes one client-hop message.
func WriteMsg(w io.Writer, m *Msg) error { return WriteFrame(w, EncodeMsg(m)) }

// ReadMsg reads and parses one framed client-hop message (max 0 =
// DefaultMaxFrame).
func ReadMsg(r io.Reader, max int) (*Msg, error) {
	payload, err := ReadFrame(r, max)
	if err != nil {
		return nil, err
	}
	return DecodeMsg(payload)
}
