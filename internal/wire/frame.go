package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Framing v2: every message on a wire — the controller→backend bus and the
// client→server hop alike — is one length-prefixed frame holding a compact
// binary payload. The payload layout (codec.go, client.go) is deliberately
// frozen: golden tests assert byte-level stability, so old clients and new
// servers interoperate within a protocol version.
//
//	frame   := length(uint32 LE) payload
//	payload := version(byte) body
const (
	// Version is the framing/protocol version stamped on every payload.
	Version = 2

	// DefaultMaxFrame bounds an accepted frame (64 MiB): large enough for a
	// migration page or a wide retrieve, small enough that a corrupt length
	// prefix cannot exhaust memory.
	DefaultMaxFrame = 64 << 20

	frameHeaderLen = 4
)

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [frameHeaderLen]byte
	if len(payload) > math.MaxUint32 {
		return fmt.Errorf("wire: frame of %d bytes exceeds the length prefix", len(payload))
	}
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame, refusing frames above max
// (0 = DefaultMaxFrame).
func ReadFrame(r io.Reader, max int) ([]byte, error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if int64(n) > int64(max) {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds the %d-byte limit", n, max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// Append-style encoding primitives. Unsigned ints are uvarints, signed ints
// zig-zag varints, floats 8-byte little-endian IEEE 754 bits, strings a
// uvarint length followed by the bytes, bools one byte.

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func appendVarint(b []byte, v int64) []byte { return binary.AppendVarint(b, v) }

func appendFloat(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// dec decodes the primitives with a sticky error, so field-by-field decoding
// reads linearly and the first malformed field poisons the rest.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format, args...)
	}
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("truncated uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("truncated varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) float() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.fail("truncated float at offset %d", d.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

func (d *dec) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail("string of %d bytes overruns the payload at offset %d", n, d.off)
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *dec) bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.b) {
		d.fail("truncated bool at offset %d", d.off)
		return false
	}
	v := d.b[d.off]
	d.off++
	if v > 1 {
		d.fail("bool byte %d at offset %d", v, d.off-1)
		return false
	}
	return v == 1
}

func (d *dec) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail("truncated byte at offset %d", d.off)
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

// length decodes a collection length, rejecting counts that could not fit in
// the remaining payload (every element costs at least one byte) so a corrupt
// count cannot drive a huge allocation.
func (d *dec) length() int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail("collection of %d elements overruns the payload at offset %d", n, d.off)
		return 0
	}
	return int(n)
}

// done verifies the payload was consumed exactly.
func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("wire: %d trailing bytes after the message", len(d.b)-d.off)
	}
	return nil
}

// checkVersion consumes and verifies the leading version byte.
func (d *dec) checkVersion() {
	if v := d.byte(); d.err == nil && v != Version {
		d.fail("protocol version %d (this build speaks %d)", v, Version)
	}
}
