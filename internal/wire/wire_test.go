package wire

import (
	"bytes"
	"encoding/gob"
	"testing"
	"testing/quick"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/kdb"
)

func TestValueRoundTrip(t *testing.T) {
	vals := []abdm.Value{
		abdm.Null(), abdm.Int(-42), abdm.Float(2.75), abdm.String("hello 'x'"),
	}
	for _, v := range vals {
		back, err := FromValue(v).ToValue()
		if err != nil {
			t.Fatal(err)
		}
		if back.Kind() != v.Kind() || (!v.IsNull() && !back.Equal(v)) {
			t.Errorf("round trip %v -> %v", v, back)
		}
	}
	if _, err := (Value{Kind: 99}).ToValue(); err == nil {
		t.Error("bad kind accepted")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	r := abdm.NewRecord("f",
		abdm.Keyword{Attr: "a", Val: abdm.Int(1)},
		abdm.Keyword{Attr: "b", Val: abdm.Null()},
		abdm.Keyword{Attr: "c", Val: abdm.String("x")})
	r.Text = "note"
	back, err := FromRecord(r).ToRecord()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(r) {
		t.Errorf("record round trip: %v vs %v", back, r)
	}
	if nilRec := FromRecord(nil); len(nilRec.Keywords) != 0 {
		t.Error("nil record should encode empty")
	}
}

func TestRequestRoundTripAllKinds(t *testing.T) {
	reqs := []*abdl.Request{
		abdl.NewInsert(abdm.NewRecord("f", abdm.Keyword{Attr: "a", Val: abdm.Int(1)})),
		abdl.NewDelete(abdm.And(abdm.Predicate{Attr: "a", Op: abdm.OpLt, Val: abdm.Int(5)})),
		abdl.NewUpdate(abdm.And(abdm.Predicate{Attr: "a", Op: abdm.OpEq, Val: abdm.Int(1)}),
			abdl.Modifier{Attr: "a", Val: abdm.Null()}),
		abdl.NewRetrieve(abdm.Query{
			{{Attr: "a", Op: abdm.OpGe, Val: abdm.Int(1)}},
			{{Attr: "b", Op: abdm.OpEq, Val: abdm.String("x")}},
		}, "a", "b").WithBy("a"),
		abdl.NewRetrieveCommon(
			abdm.And(abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("f")}),
			"a",
			abdm.And(abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("g")}),
			abdl.AllAttrs,
		),
	}
	for _, req := range reqs {
		back, err := FromRequest(req).ToRequest()
		if err != nil {
			t.Fatal(err)
		}
		if back.String() != req.String() {
			t.Errorf("request round trip:\n got %s\nwant %s", back, req)
		}
	}
}

func TestResultRoundTrip(t *testing.T) {
	res := &kdb.Result{
		Op:    abdl.Retrieve,
		Count: 3,
		Cost:  kdb.Cost{BlocksRead: 7, DirProbes: 2, RecordsExam: 40, FilesTouched: 1},
		Records: []kdb.StoredRecord{
			{ID: 5, Rec: abdm.NewRecord("f", abdm.Keyword{Attr: "a", Val: abdm.Int(1)})},
		},
		Groups: []kdb.Group{{
			By: abdm.String("CS"),
			Recs: []kdb.StoredRecord{
				{ID: 5, Rec: abdm.NewRecord("f", abdm.Keyword{Attr: "a", Val: abdm.Int(1)})},
			},
			Aggs: []kdb.AggValue{{
				Item: abdl.TargetItem{Agg: abdl.AggSum, Attr: "a"},
				Val:  abdm.Int(1),
			}},
		}},
	}
	back, err := FromResult(res).ToResult()
	if err != nil {
		t.Fatal(err)
	}
	if back.Op != res.Op || back.Count != res.Count || back.Cost != res.Cost {
		t.Errorf("scalars differ: %+v vs %+v", back, res)
	}
	if len(back.Records) != 1 || back.Records[0].ID != 5 || !back.Records[0].Rec.Equal(res.Records[0].Rec) {
		t.Error("records differ")
	}
	if len(back.Groups) != 1 || !back.Groups[0].By.Equal(res.Groups[0].By) ||
		back.Groups[0].Aggs[0].Val.AsInt() != 1 {
		t.Error("groups differ")
	}
}

func TestEnvelopeGobRoundTrip(t *testing.T) {
	req := abdl.NewRetrieve(abdm.And(
		abdm.Predicate{Attr: "a", Op: abdm.OpEq, Val: abdm.Int(1)}), abdl.AllAttrs)
	wreq := FromRequest(req)
	env := Envelope{Seq: 9, Action: "exec", Req: &wreq}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&env); err != nil {
		t.Fatal(err)
	}
	var back Envelope
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if back.Seq != 9 || back.Action != "exec" || back.Req == nil {
		t.Fatalf("envelope = %+v", back)
	}
	breq, err := back.Req.ToRequest()
	if err != nil {
		t.Fatal(err)
	}
	if breq.String() != req.String() {
		t.Error("request mangled through gob")
	}
}

// Property: any int/string keyword list survives the wire.
func TestRecordWireProperty(t *testing.T) {
	f := func(a int64, s string) bool {
		r := abdm.NewRecord("f",
			abdm.Keyword{Attr: "n", Val: abdm.Int(a)},
			abdm.Keyword{Attr: "s", Val: abdm.String(s)})
		back, err := FromRecord(r).ToRecord()
		return err == nil && back.Equal(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
