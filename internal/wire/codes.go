package wire

// Code is a stable machine-readable error code carried on the wire. Remote
// clients dispatch on the code — retry a deadlock victim from BEGIN, back off
// on admission-control refusals, redial another front end on drain — exactly
// like in-process callers dispatch on the typed errors. The numbers are part
// of the protocol and MUST NOT be renumbered; add new codes at the end. The
// table is documented in DESIGN.md ("Serving tier & wire protocol v2").
type Code uint16

// Wire error codes.
const (
	// CodeOK: no error.
	CodeOK Code = 0
	// CodeInternal: unclassified server-side failure; not retryable.
	CodeInternal Code = 1
	// CodeParse: the statement failed to parse or translate; resending the
	// same text will fail the same way.
	CodeParse Code = 2
	// CodeNoDatabase: the named database is not in the catalog
	// (core.ErrNoDatabase).
	CodeNoDatabase Code = 3
	// CodeWrongModel: the language interface cannot serve the database's
	// model (core.ErrWrongModel).
	CodeWrongModel Code = 4
	// CodeUnknownLanguage: the language name is not one of the five
	// interfaces.
	CodeUnknownLanguage Code = 5
	// CodeDeadlock: the transaction was aborted as a deadlock victim
	// (txn.ErrDeadlock); retry the whole transaction from BEGIN.
	CodeDeadlock Code = 6
	// CodeLockTimeout: a lock wait exceeded the manager's bound
	// (txn.ErrLockTimeout); the transaction was aborted, retry from BEGIN.
	CodeLockTimeout Code = 7
	// CodeTxnAborted: the transaction was rolled back for another cause
	// (*txn.AbortedError); retry from BEGIN.
	CodeTxnAborted Code = 8
	// CodeReadOnly: a mutation inside a read-only snapshot transaction
	// (txn.ErrReadOnly); the transaction stays open.
	CodeReadOnly Code = 9
	// CodeNoTxn: COMMIT/ROLLBACK with no open transaction, or BEGIN with one
	// already open.
	CodeNoTxn Code = 10
	// CodeDraining: the server is draining; the request was NOT executed.
	// Retryable — redial or wait.
	CodeDraining Code = 11
	// CodeRateLimited: the session exceeded its statement rate; the request
	// was NOT executed. Retryable after backoff.
	CodeRateLimited Code = 12
	// CodeBackpressure: the session's pending-statement queue is full; the
	// request was NOT executed. Retryable after the in-flight work drains.
	CodeBackpressure Code = 13
	// CodeSessionLimit: an admission cap (global, per-connection or
	// per-database) refused the open. Retryable elsewhere or later.
	CodeSessionLimit Code = 14
	// CodeNoSession: the session id is unknown on this connection.
	CodeNoSession Code = 15
	// CodeProto: the peer violated the protocol (bad frame, bad handshake).
	CodeProto Code = 16
	// CodeNoWatch: the watch id is unknown on this connection.
	CodeNoWatch Code = 17
	// CodeWatchLimit: the per-connection watch cap refused the WATCH; it was
	// NOT opened. Retryable elsewhere or after closing other watches.
	CodeWatchLimit Code = 18
	// CodeView: a view-registry failure — CREATE VIEW on a taken name, DROP
	// VIEW on an unknown one.
	CodeView Code = 19
)

var codeNames = [...]string{
	CodeOK:              "ok",
	CodeInternal:        "internal",
	CodeParse:           "parse",
	CodeNoDatabase:      "no-database",
	CodeWrongModel:      "wrong-model",
	CodeUnknownLanguage: "unknown-language",
	CodeDeadlock:        "deadlock",
	CodeLockTimeout:     "lock-timeout",
	CodeTxnAborted:      "txn-aborted",
	CodeReadOnly:        "read-only",
	CodeNoTxn:           "no-txn",
	CodeDraining:        "draining",
	CodeRateLimited:     "rate-limited",
	CodeBackpressure:    "backpressure",
	CodeSessionLimit:    "session-limit",
	CodeNoSession:       "no-session",
	CodeProto:           "protocol",
	CodeNoWatch:         "no-watch",
	CodeWatchLimit:      "watch-limit",
	CodeView:            "view",
}

// String names the code.
func (c Code) String() string {
	if int(c) < len(codeNames) && codeNames[c] != "" {
		return codeNames[c]
	}
	return "code(?)"
}

// Retryable reports whether the failed request can be resent as-is: either
// the server never executed it (admission control, drain) or the transaction
// was rolled back cleanly and can rerun from BEGIN (deadlock victim, lock
// timeout).
func (c Code) Retryable() bool {
	switch c {
	case CodeDeadlock, CodeLockTimeout, CodeTxnAborted,
		CodeDraining, CodeRateLimited, CodeBackpressure, CodeSessionLimit,
		CodeWatchLimit:
		return true
	}
	return false
}

// NotExecuted reports whether the server is guaranteed not to have run the
// statement at all — the admission-control refusals — so even non-idempotent
// work is safe to resend.
func (c Code) NotExecuted() bool {
	switch c {
	case CodeDraining, CodeRateLimited, CodeBackpressure, CodeSessionLimit,
		CodeWatchLimit:
		return true
	}
	return false
}
