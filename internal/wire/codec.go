package wire

// The framing-v2 binary codec for the controller→backend bus. Envelopes were
// gob streams through PR 6; gob's per-message type negotiation and reflection
// were the dominant per-message cost on the bus, so v2 encodes every field
// positionally with the frame.go primitives. The layout below is frozen —
// codec_test.go pins golden frames byte for byte.
//
// Field order (all fields always present, in this order):
//
//	Envelope := version seq action errcode err n
//	            req? reqs[] res? results[]
//	            since after limit migs[] next epoch ids[]
//
// Optional pointers are a presence bool followed by the value; collections a
// uvarint count followed by the elements.

import "io"

func appendValue(b []byte, v Value) []byte {
	b = append(b, v.Kind)
	b = appendVarint(b, v.I)
	b = appendFloat(b, v.F)
	return appendString(b, v.S)
}

func (d *dec) value() Value {
	var v Value
	v.Kind = d.byte()
	v.I = d.varint()
	v.F = d.float()
	v.S = d.string()
	return v
}

func appendKeyword(b []byte, k Keyword) []byte {
	b = appendString(b, k.Attr)
	return appendValue(b, k.Val)
}

func (d *dec) keyword() Keyword {
	return Keyword{Attr: d.string(), Val: d.value()}
}

func appendRecord(b []byte, r Record) []byte {
	b = appendUvarint(b, uint64(len(r.Keywords)))
	for _, k := range r.Keywords {
		b = appendKeyword(b, k)
	}
	return appendString(b, r.Text)
}

func (d *dec) record() Record {
	var r Record
	if n := d.length(); n > 0 {
		r.Keywords = make([]Keyword, n)
		for i := range r.Keywords {
			r.Keywords[i] = d.keyword()
		}
	}
	r.Text = d.string()
	return r
}

func appendQuery(b []byte, q Query) []byte {
	b = appendUvarint(b, uint64(len(q)))
	for _, conj := range q {
		b = appendUvarint(b, uint64(len(conj)))
		for _, p := range conj {
			b = appendString(b, p.Attr)
			b = append(b, p.Op)
			b = appendValue(b, p.Val)
		}
	}
	return b
}

func (d *dec) query() Query {
	n := d.length()
	if n == 0 {
		return nil
	}
	q := make(Query, n)
	for i := range q {
		m := d.length()
		q[i] = make([]Predicate, m)
		for j := range q[i] {
			q[i][j] = Predicate{Attr: d.string(), Op: d.byte(), Val: d.value()}
		}
	}
	return q
}

func appendTargetItem(b []byte, t TargetItem) []byte {
	b = appendVarint(b, int64(t.Agg))
	return appendString(b, t.Attr)
}

func (d *dec) targetItem() TargetItem {
	return TargetItem{Agg: int(d.varint()), Attr: d.string()}
}

func appendRequest(b []byte, r Request) []byte {
	b = appendVarint(b, int64(r.Kind))
	b = appendBool(b, r.HasRec)
	b = appendRecord(b, r.Record)
	b = appendQuery(b, r.Query)
	b = appendUvarint(b, uint64(len(r.Mods)))
	for _, m := range r.Mods {
		b = appendKeyword(b, m)
	}
	b = appendUvarint(b, uint64(len(r.Target)))
	for _, t := range r.Target {
		b = appendTargetItem(b, t)
	}
	b = appendString(b, r.By)
	b = appendString(b, r.Common)
	b = appendQuery(b, r.Query2)
	b = appendUvarint(b, r.ForceID)
	b = appendUvarint(b, r.TxnID)
	b = appendUvarint(b, r.SnapEpoch)
	b = appendBool(b, r.NoVersion)
	return appendUvarint(b, r.MvccEpoch)
}

func (d *dec) request() Request {
	var r Request
	r.Kind = int(d.varint())
	r.HasRec = d.bool()
	r.Record = d.record()
	r.Query = d.query()
	if n := d.length(); n > 0 {
		r.Mods = make([]Keyword, n)
		for i := range r.Mods {
			r.Mods[i] = d.keyword()
		}
	}
	if n := d.length(); n > 0 {
		r.Target = make([]TargetItem, n)
		for i := range r.Target {
			r.Target[i] = d.targetItem()
		}
	}
	r.By = d.string()
	r.Common = d.string()
	r.Query2 = d.query()
	r.ForceID = d.uvarint()
	r.TxnID = d.uvarint()
	r.SnapEpoch = d.uvarint()
	r.NoVersion = d.bool()
	r.MvccEpoch = d.uvarint()
	return r
}

func appendStored(b []byte, s StoredRecord) []byte {
	b = appendUvarint(b, s.ID)
	return appendRecord(b, s.Rec)
}

func (d *dec) stored() StoredRecord {
	return StoredRecord{ID: d.uvarint(), Rec: d.record()}
}

func appendResult(b []byte, r Result) []byte {
	b = appendVarint(b, int64(r.Op))
	b = appendUvarint(b, uint64(len(r.Records)))
	for _, s := range r.Records {
		b = appendStored(b, s)
	}
	b = appendUvarint(b, uint64(len(r.Groups)))
	for _, g := range r.Groups {
		b = appendValue(b, g.By)
		b = appendUvarint(b, uint64(len(g.Recs)))
		for _, s := range g.Recs {
			b = appendStored(b, s)
		}
		b = appendUvarint(b, uint64(len(g.Aggs)))
		for _, a := range g.Aggs {
			b = appendTargetItem(b, a.Item)
			b = appendValue(b, a.Val)
		}
	}
	b = appendVarint(b, int64(r.Count))
	b = appendUvarint(b, uint64(len(r.Affected)))
	for _, id := range r.Affected {
		b = appendUvarint(b, id)
	}
	b = appendVarint(b, int64(r.Cost.FilesTouched))
	b = appendVarint(b, int64(r.Cost.BlocksRead))
	b = appendVarint(b, int64(r.Cost.BlocksWrit))
	b = appendVarint(b, int64(r.Cost.DirProbes))
	b = appendVarint(b, int64(r.Cost.RecordsExam))
	return appendVarint(b, int64(r.Versions))
}

func (d *dec) result() Result {
	var r Result
	r.Op = int(d.varint())
	if n := d.length(); n > 0 {
		r.Records = make([]StoredRecord, n)
		for i := range r.Records {
			r.Records[i] = d.stored()
		}
	}
	if n := d.length(); n > 0 {
		r.Groups = make([]Group, n)
		for i := range r.Groups {
			g := &r.Groups[i]
			g.By = d.value()
			if m := d.length(); m > 0 {
				g.Recs = make([]StoredRecord, m)
				for j := range g.Recs {
					g.Recs[j] = d.stored()
				}
			}
			if m := d.length(); m > 0 {
				g.Aggs = make([]AggValue, m)
				for j := range g.Aggs {
					g.Aggs[j] = AggValue{Item: d.targetItem(), Val: d.value()}
				}
			}
		}
	}
	r.Count = int(d.varint())
	if n := d.length(); n > 0 {
		r.Affected = make([]uint64, n)
		for i := range r.Affected {
			r.Affected[i] = d.uvarint()
		}
	}
	r.Cost.FilesTouched = int(d.varint())
	r.Cost.BlocksRead = int(d.varint())
	r.Cost.BlocksWrit = int(d.varint())
	r.Cost.DirProbes = int(d.varint())
	r.Cost.RecordsExam = int(d.varint())
	r.Versions = int(d.varint())
	return r
}

func appendMig(b []byte, m Mig) []byte {
	b = appendString(b, m.File)
	b = appendUvarint(b, m.ID)
	b = appendBool(b, m.HasLive)
	b = appendRecord(b, m.Live)
	b = appendUvarint(b, uint64(len(m.Chain)))
	for _, v := range m.Chain {
		b = appendUvarint(b, v.Epoch)
		b = appendUvarint(b, v.Txn)
		b = appendBool(b, v.HasRec)
		b = appendRecord(b, v.Rec)
	}
	return b
}

func (d *dec) mig() Mig {
	var m Mig
	m.File = d.string()
	m.ID = d.uvarint()
	m.HasLive = d.bool()
	m.Live = d.record()
	if n := d.length(); n > 0 {
		m.Chain = make([]MigVersion, n)
		for i := range m.Chain {
			v := &m.Chain[i]
			v.Epoch = d.uvarint()
			v.Txn = d.uvarint()
			v.HasRec = d.bool()
			v.Rec = d.record()
		}
	}
	return m
}

// EncodeEnvelope renders one bus envelope as a framing-v2 payload.
func EncodeEnvelope(env *Envelope) []byte {
	b := make([]byte, 0, 128)
	b = append(b, Version)
	b = appendUvarint(b, env.Seq)
	b = appendString(b, env.Action)
	b = appendUvarint(b, uint64(env.ErrCode))
	b = appendString(b, env.Err)
	b = appendVarint(b, int64(env.N))
	b = appendBool(b, env.Req != nil)
	if env.Req != nil {
		b = appendRequest(b, *env.Req)
	}
	b = appendUvarint(b, uint64(len(env.Reqs)))
	for _, r := range env.Reqs {
		b = appendRequest(b, r)
	}
	b = appendBool(b, env.Res != nil)
	if env.Res != nil {
		b = appendResult(b, *env.Res)
	}
	b = appendUvarint(b, uint64(len(env.Results)))
	for _, r := range env.Results {
		b = appendResult(b, r)
	}
	b = appendUvarint(b, env.Since)
	b = appendUvarint(b, env.After)
	b = appendVarint(b, int64(env.Limit))
	b = appendUvarint(b, uint64(len(env.Migs)))
	for _, m := range env.Migs {
		b = appendMig(b, m)
	}
	b = appendUvarint(b, env.Next)
	b = appendUvarint(b, env.Epoch)
	b = appendUvarint(b, uint64(len(env.IDs)))
	for _, id := range env.IDs {
		b = appendUvarint(b, id)
	}
	return b
}

// DecodeEnvelope parses a framing-v2 payload back into a bus envelope.
func DecodeEnvelope(payload []byte) (*Envelope, error) {
	d := &dec{b: payload}
	d.checkVersion()
	var env Envelope
	env.Seq = d.uvarint()
	env.Action = d.string()
	env.ErrCode = Code(d.uvarint())
	env.Err = d.string()
	env.N = int(d.varint())
	if d.bool() {
		req := d.request()
		env.Req = &req
	}
	if n := d.length(); n > 0 {
		env.Reqs = make([]Request, n)
		for i := range env.Reqs {
			env.Reqs[i] = d.request()
		}
	}
	if d.bool() {
		res := d.result()
		env.Res = &res
	}
	if n := d.length(); n > 0 {
		env.Results = make([]Result, n)
		for i := range env.Results {
			env.Results[i] = d.result()
		}
	}
	env.Since = d.uvarint()
	env.After = d.uvarint()
	env.Limit = int(d.varint())
	if n := d.length(); n > 0 {
		env.Migs = make([]Mig, n)
		for i := range env.Migs {
			env.Migs[i] = d.mig()
		}
	}
	env.Next = d.uvarint()
	env.Epoch = d.uvarint()
	if n := d.length(); n > 0 {
		env.IDs = make([]uint64, n)
		for i := range env.IDs {
			env.IDs[i] = d.uvarint()
		}
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return &env, nil
}

// WriteEnvelope frames and writes one envelope.
func WriteEnvelope(w io.Writer, env *Envelope) error {
	return WriteFrame(w, EncodeEnvelope(env))
}

// ReadEnvelope reads and parses one framed envelope (max 0 = DefaultMaxFrame).
func ReadEnvelope(r io.Reader, max int) (*Envelope, error) {
	payload, err := ReadFrame(r, max)
	if err != nil {
		return nil, err
	}
	return DecodeEnvelope(payload)
}
