package txn

import "context"

// ctxKey is the context key carrying the session's open transaction through
// the language-interface layers. The KMS implementations already thread the
// request context down to the kernel controller, so attaching the
// transaction here gives all five language interfaces transactional
// execution without per-KMS changes.
type ctxKey struct{}

// NewContext returns a context carrying the transaction.
func NewContext(ctx context.Context, tx *Txn) context.Context {
	return context.WithValue(ctx, ctxKey{}, tx)
}

// FromContext extracts the transaction carried by the context, if any.
func FromContext(ctx context.Context) (*Txn, bool) {
	tx, ok := ctx.Value(ctxKey{}).(*Txn)
	return tx, ok
}
