package txn

import (
	"errors"
	"sync"
	"time"
)

// Mode is a lock mode of the multi-granularity scheme. Transactions lock the
// whole store (the root resource) in an intention mode and individual ABDM
// files in S or X; requests whose qualification carries no FILE predicate can
// touch any file, so they lock the root itself in S or X.
type Mode int

// Lock modes, weakest to strongest. SIX arises only as the upgrade of S+IX
// on the root (a transaction that scanned every file and then wrote one).
const (
	modeNone Mode = iota
	IS
	IX
	S
	SIX
	X
)

var modeNames = [...]string{"none", "IS", "IX", "S", "SIX", "X"}

// String names the mode.
func (m Mode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return "mode(?)"
}

// compatible reports whether two transactions may hold a and b on the same
// resource at once — the standard multi-granularity compatibility matrix.
func compatible(a, b Mode) bool {
	switch a {
	case IS:
		return b != X
	case IX:
		return b == IS || b == IX
	case S:
		return b == IS || b == S
	case SIX:
		return b == IS
	case X:
		return false
	}
	return true
}

// lub is the least mode covering both a and b: the mode a holder must
// convert to when it already holds a and requests b.
func lub(a, b Mode) Mode {
	if a == b {
		return a
	}
	if a > b {
		a, b = b, a
	}
	switch {
	case a == modeNone:
		return b
	case b == X:
		return X
	case a == IS:
		return b
	case a == IX && b == S:
		return SIX
	case a == IX && b == SIX:
		return SIX
	case a == S && b == SIX:
		return SIX
	}
	return X
}

// rootResource is the lock name of the whole store; ABDM file names are
// never empty, so the root cannot collide with a file.
const rootResource = ""

// Lock-wait failures. Both abort the waiting transaction: a deadlock victim
// is chosen by the wait-for-graph detector (the youngest transaction of the
// cycle), a timeout is the fallback for waits the detector cannot resolve.
var (
	// ErrDeadlock reports the transaction was chosen as a deadlock victim.
	ErrDeadlock = errors.New("txn: aborted as deadlock victim")
	// ErrLockTimeout reports a lock wait exceeded the manager's timeout.
	ErrLockTimeout = errors.New("txn: lock wait timeout")
)

// waiter is one blocked lock request.
type waiter struct {
	tx      *Txn
	resName string
	target  Mode // lub of the held and requested modes
	ready   chan struct{}
	err     error // set before ready is closed when the wait fails
	granted bool
}

// resource is one lockable unit: the root or one ABDM file.
type resource struct {
	holders map[uint64]Mode
	queue   []*waiter
}

// lockTable is the strict-2PL lock manager: locks accumulate per transaction
// and release only at commit or abort (releaseAll).
type lockTable struct {
	mu      sync.Mutex
	res     map[string]*resource
	waiting map[uint64]*waiter // one blocked request per transaction
	timeout time.Duration

	// onWait observes every completed lock wait (granted or not);
	// onDeadlock fires once per detected cycle. Both may be nil.
	onWait     func(d time.Duration)
	onDeadlock func()
}

func newLockTable(timeout time.Duration) *lockTable {
	return &lockTable{
		res:     make(map[string]*resource),
		waiting: make(map[uint64]*waiter),
		timeout: timeout,
	}
}

func (lt *lockTable) resource(name string) *resource {
	r := lt.res[name]
	if r == nil {
		r = &resource{holders: make(map[uint64]Mode)}
		lt.res[name] = r
	}
	return r
}

// grantable reports whether tx may hold target on r alongside every other
// current holder (its own holder entry, if upgrading, is ignored).
func (r *resource) grantable(txID uint64, target Mode) bool {
	for id, m := range r.holders {
		if id == txID {
			continue
		}
		if !compatible(target, m) {
			return false
		}
	}
	return true
}

// queueBlocks reports whether a fresh request for target must queue behind a
// waiter it conflicts with. Without this check a stream of S requests can be
// granted past a queued X-upgrade forever — each S holder deadlocks against
// the upgrader, aborts, retries, and re-takes S while the upgrader starves:
// a livelock with no global progress. FIFO fairness over conflicting
// requests restores progress; lock conversions bypass the queue (they
// already hold the resource, so making them wait behind fresh requests
// would deadlock against themselves).
func (r *resource) queueBlocks(target Mode) bool {
	for _, w := range r.queue {
		if !compatible(target, w.target) {
			return true
		}
	}
	return false
}

// acquire takes the lock, blocking until it is granted, the transaction is
// chosen as a deadlock victim, or the wait times out. Re-acquiring a covered
// mode is free; a stronger request converts the held lock.
func (lt *lockTable) acquire(tx *Txn, name string, want Mode) error {
	lt.mu.Lock()
	held := tx.locks[name]
	target := lub(held, want)
	if target == held {
		lt.mu.Unlock()
		return nil
	}
	r := lt.resource(name)
	if r.grantable(tx.id, target) && (held != modeNone || !r.queueBlocks(target)) {
		r.holders[tx.id] = target
		tx.locks[name] = target
		lt.mu.Unlock()
		return nil
	}
	w := &waiter{tx: tx, resName: name, target: target, ready: make(chan struct{})}
	r.queue = append(r.queue, w)
	lt.waiting[tx.id] = w
	if cycle := lt.findCycle(tx.id); len(cycle) > 0 {
		if lt.onDeadlock != nil {
			lt.onDeadlock()
		}
		victim := cycle[0]
		for _, id := range cycle {
			if id > victim {
				victim = id
			}
		}
		vw := lt.waiting[victim]
		lt.removeWaiter(vw)
		vw.err = ErrDeadlock
		close(vw.ready)
		// The victim's vacated queue slot may unblock waiters queued
		// behind it under the FIFO fairness rule.
		lt.sweep(vw.resName)
		if victim == tx.id {
			lt.mu.Unlock()
			return ErrDeadlock
		}
	}
	lt.mu.Unlock()

	start := time.Now()
	timer := time.NewTimer(lt.timeout)
	defer timer.Stop()
	select {
	case <-w.ready:
		lt.observeWait(time.Since(start))
		return w.err
	case <-timer.C:
	}
	lt.mu.Lock()
	if w.granted {
		// Granted in the race with the timer: keep the lock.
		lt.mu.Unlock()
		lt.observeWait(time.Since(start))
		return nil
	}
	lt.removeWaiter(w)
	lt.sweep(w.resName)
	lt.mu.Unlock()
	lt.observeWait(time.Since(start))
	return ErrLockTimeout
}

func (lt *lockTable) observeWait(d time.Duration) {
	if lt.onWait != nil {
		lt.onWait(d)
	}
}

// removeWaiter drops w from its resource queue and the waiting map.
// Caller holds lt.mu.
func (lt *lockTable) removeWaiter(w *waiter) {
	r := lt.res[w.resName]
	for i, q := range r.queue {
		if q == w {
			r.queue = append(r.queue[:i], r.queue[i+1:]...)
			break
		}
	}
	if lt.waiting[w.tx.id] == w {
		delete(lt.waiting, w.tx.id)
	}
}

// findCycle looks for a wait-for cycle through the newly blocked
// transaction: an edge runs from each waiter to every holder whose mode
// conflicts with the waiter's target, and to every earlier queued waiter it
// conflicts with (FIFO fairness grants those first, so they are waited on
// just as surely as holders). Only waiting transactions have outgoing
// edges, so every member of a cycle is a waiter. It returns the cycle's
// members (empty when start is not on a cycle). Caller holds lt.mu.
func (lt *lockTable) findCycle(start uint64) []uint64 {
	var path []uint64
	onPath := make(map[uint64]bool)
	visited := make(map[uint64]bool)
	var dfs func(id uint64) []uint64
	var follow func(id, next uint64) []uint64
	dfs = func(id uint64) []uint64 {
		w := lt.waiting[id]
		if w == nil {
			return nil
		}
		path = append(path, id)
		onPath[id] = true
		visited[id] = true
		r := lt.res[w.resName]
		for hid, m := range r.holders {
			if hid == id || compatible(w.target, m) {
				continue
			}
			if c := follow(id, hid); c != nil {
				return c
			}
		}
		for _, q := range r.queue {
			if q == w {
				break
			}
			if q.tx.id == id || compatible(w.target, q.target) {
				continue
			}
			if c := follow(id, q.tx.id); c != nil {
				return c
			}
		}
		path = path[:len(path)-1]
		delete(onPath, id)
		return nil
	}
	follow = func(id, next uint64) []uint64 {
		if onPath[next] {
			// Cycle: the path suffix from next.
			for i, p := range path {
				if p == next {
					return append([]uint64(nil), path[i:]...)
				}
			}
		}
		if !visited[next] {
			return dfs(next)
		}
		return nil
	}
	return dfs(start)
}

// releaseAll drops every lock the transaction holds and grants any waiter
// the releases unblocked.
func (lt *lockTable) releaseAll(tx *Txn) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if len(tx.locks) == 0 {
		return
	}
	touched := make([]string, 0, len(tx.locks))
	for name := range tx.locks {
		if r := lt.res[name]; r != nil {
			delete(r.holders, tx.id)
			touched = append(touched, name)
		}
	}
	tx.locks = make(map[string]Mode)
	for _, name := range touched {
		lt.sweep(name)
	}
}

// sweep grants queued waiters that are now compatible with the resource's
// holders, in FIFO order: a still-blocked waiter bars every later fresh
// request (the same fairness rule acquire applies at enqueue), but lock
// conversions may be granted past it — the converter already holds the
// resource, so holding it back can only delay the queue further.
// Caller holds lt.mu.
func (lt *lockTable) sweep(name string) {
	r := lt.res[name]
	if r == nil {
		return
	}
	blocked := false
	for i := 0; i < len(r.queue); {
		w := r.queue[i]
		conversion := w.tx.locks[w.resName] != modeNone
		if r.grantable(w.tx.id, w.target) && (conversion || !blocked) {
			r.holders[w.tx.id] = w.target
			w.tx.locks[w.resName] = w.target
			w.granted = true
			r.queue = append(r.queue[:i], r.queue[i+1:]...)
			if lt.waiting[w.tx.id] == w {
				delete(lt.waiting, w.tx.id)
			}
			close(w.ready)
			continue
		}
		blocked = true
		i++
	}
	if len(r.holders) == 0 && len(r.queue) == 0 {
		delete(lt.res, name)
	}
}
