// Package txn is the transaction subsystem of the multi-lingual database
// system: it gives every session BEGIN/COMMIT/ABORT semantics over the
// existing LIL→KMS→KC→MBDS pipeline.
//
// Concurrency control is strict two-phase locking at ABDM-file granularity
// (the multi-granularity IS/IX/S/SIX/X scheme with a root resource standing
// for the whole store), with a wait-for-graph deadlock detector that aborts
// the youngest transaction of a cycle and a lock-wait timeout as fallback.
// Atomicity is undo-based: before every DELETE or UPDATE the manager captures
// before-images of the qualifying records, and every INSERT records its
// assigned database key, so ABORT restores the store exactly by deleting by
// key and re-inserting the images in reverse order. Durability is redo-based:
// a committing transaction hands its buffered mutation log to a CommitSink
// (the kc journal) which frames it with begin/commit markers and flushes once
// per commit batch — group commit.
package txn

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/kdb"
	"mlds/internal/obs"
	"mlds/internal/wire"
)

// Executor runs ABDL requests against the kernel. *mbds.System satisfies it;
// the manager deliberately sits above MBDS and below kc so undo and
// before-image traffic bypasses the kc trace and journal.
type Executor interface {
	ExecTimedCtx(ctx context.Context, req *abdl.Request) (*kdb.Result, time.Duration, error)
	ExecBatchCtx(ctx context.Context, reqs []*abdl.Request) ([]*kdb.Result, time.Duration, error)
}

// JournalRec is one redo-log record of a transaction: the mutating request
// in wire form plus the controller's key-allocator position (so replay
// restores key allocation exactly, as the v1 journal did). Affected pins the
// database keys the mutation touched, so change-data-capture consumers can
// apply UPDATE and DELETE deltas by key instead of re-evaluating the query
// (which would observe post-commit state, not the state the statement saw).
type JournalRec struct {
	Req      wire.Request
	Key      int64
	Affected []uint64
}

// CommitRecord is one committing transaction's redo log. Epoch is the MVCC
// commit epoch the batch was stamped with (0 when MVCC is off or the batch
// stamped nothing), and Pos is the sink's journal position — the count of
// committed data entries through and including this record — when the sink
// implements PosReader. Together they let a lossless tailer detect exactly
// which journal range a dropped record covered and re-read it.
type CommitRecord struct {
	ID      uint64
	Entries []JournalRec
	Epoch   uint64
	Pos     uint64
}

// CommitSink receives commit batches and abort notices. WriteCommits must
// persist every record — framed so recovery can tell committed work from
// uncommitted — with a single flush for the whole batch; that one call is
// the group-commit window.
type CommitSink interface {
	WriteCommits(recs []CommitRecord) error
	WriteAbort(id uint64) error
}

// PosReader is optionally implemented by a CommitSink that counts committed
// data entries (the kc journal does). The group-commit leader reads the
// position once per flushed batch and distributes per-record end positions
// onto the published CommitRecords; batches are serialized by the leader, so
// the read is exact.
type PosReader interface {
	JournalPos() uint64
}

// EpochNoter is optionally implemented by a CommitSink that tracks which
// journal prefix each commit epoch corresponds to (the kc journal does, for
// fuzzy checkpoints). After a batch is durable and its versions are stamped,
// the group-commit leader calls NoteEpoch with the published epoch — under
// the stamp barrier, so the pairing of epoch to sink position is exact.
type EpochNoter interface {
	NoteEpoch(epoch uint64)
}

// Config configures a Manager.
type Config struct {
	Exec Executor   // kernel executor (required)
	Sink CommitSink // commit-record sink; nil = no durability layer attached

	// KeyPos reports the controller's current key-allocator position for
	// journal records; nil means keys are not tracked.
	KeyPos func() int64

	// LockTimeout bounds every lock wait; a waiter past it aborts with
	// ErrLockTimeout. Zero means DefaultLockTimeout.
	LockTimeout time.Duration

	// Metrics and DB label the manager's metric series. A nil registry
	// disables metrics.
	Metrics *obs.Registry
	DB      string

	// MVCC enables multi-version snapshot reads (see mvcc.go): mutations
	// write pending versions stamped at group commit, BeginSnapshot pins
	// lock-free read-only transactions, and a watermark GC prunes history.
	// Off, the manager is pure strict 2PL and sends no MVCC traffic — unit
	// harnesses with fake executors stay undisturbed.
	MVCC bool
}

// DefaultLockTimeout is the lock-wait bound when Config.LockTimeout is zero:
// long enough that the wait-for-graph detector resolves genuine deadlocks
// first, short enough that an undetectable stall cannot hang a session.
const DefaultLockTimeout = 2 * time.Second

// State is a transaction's lifecycle state.
type State int

// Transaction states.
const (
	Active State = iota
	Committed
	Aborted
)

var stateNames = [...]string{"active", "committed", "aborted"}

// String names the state.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return "state(?)"
}

// undoRec reverses one applied record mutation: delete the record stored
// under id, then, if image is non-nil, re-insert the image under the same
// id. The pair is idempotent, so undo also repairs partially-applied
// broadcasts.
type undoRec struct {
	id    abdm.RecordID
	file  string
	image *abdm.Record // nil: the mutation was an INSERT — deletion suffices
}

// Txn is one transaction. A Txn is not safe for concurrent statements; the
// manager is safe for concurrent transactions.
type Txn struct {
	id uint64
	m  *Manager

	mu    sync.Mutex
	state State
	undo  []undoRec
	redo  []JournalRec

	// readOnly marks a snapshot transaction (BeginSnapshot): it reads the
	// version chains at epoch snap and never takes a lock.
	readOnly bool
	snap     uint64

	// touched records that at least one mutation reached the kernel — even a
	// failed one may have left pending versions on some backends, so abort
	// must broadcast MVCC-ABORT.
	touched bool

	// locks is this transaction's held lock set, keyed by resource name.
	// Guarded by the manager's lock table mutex, not tx.mu.
	locks map[string]Mode
}

// ID returns the transaction's id. Ids increase monotonically, so a larger
// id means a younger transaction — the deadlock victim ordering.
func (t *Txn) ID() uint64 { return t.id }

// State returns the transaction's lifecycle state.
func (t *Txn) State() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// AbortedError reports that a statement's transaction was rolled back by the
// manager — as a deadlock victim, on lock timeout, or because undo was
// required. The transaction no longer exists; the session must BEGIN anew.
type AbortedError struct {
	ID    uint64
	Cause error
}

// Error describes the abort.
func (e *AbortedError) Error() string {
	return fmt.Sprintf("txn %d aborted: %v", e.ID, e.Cause)
}

// Unwrap exposes the abort cause (e.g. ErrDeadlock, ErrLockTimeout).
func (e *AbortedError) Unwrap() error { return e.Cause }

// ErrNotActive reports an operation on a committed or aborted transaction.
var ErrNotActive = fmt.Errorf("txn: transaction is not active")

// commitReq is one transaction waiting in the group-commit queue.
type commitReq struct {
	rec  CommitRecord
	done chan error
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Begins    uint64
	Commits   uint64
	Aborts    uint64
	Deadlocks uint64
}

// Manager coordinates transactions over one kernel database.
type Manager struct {
	cfg   Config
	locks *lockTable
	ids   atomic.Uint64

	// Group commit: the first committer becomes the flush leader and drains
	// the queue — every transaction enqueued while a flush is in progress
	// rides the leader's next WriteCommits call.
	cmu      sync.Mutex
	queue    []commitReq
	flushing bool

	// Commit-stream subscribers (SubscribeCommits): fed by the leader after
	// each batch is durable and stamped.
	subMu   sync.Mutex
	subs    map[uint64]*CommitSub
	nextSub uint64

	begins    atomic.Uint64
	commits   atomic.Uint64
	aborts    atomic.Uint64
	deadlocks atomic.Uint64

	// MVCC state (Config.MVCC; see mvcc.go). clock is the last published
	// commit epoch; snaps registers each live snapshot's pinned epoch so the
	// GC watermark never overtakes a reader. stampMu is the stamp barrier:
	// held around every stamp broadcast, so WithStampBarrier callers observe
	// whole epochs — never a half-stamped batch.
	stampMu        sync.Mutex
	clock          atomic.Uint64
	smu            sync.Mutex
	snaps          map[uint64]uint64
	lastGC         uint64
	stampedBatches atomic.Uint64
	snapReads      atomic.Uint64
	gcPruned       atomic.Uint64

	mCommits    *obs.Counter
	mAborts     *obs.Counter
	mDeadlocks  *obs.Counter
	mLockWait   *obs.Histogram
	mSnapReads  *obs.Counter
	mGCPruned   *obs.Counter
	mVersions   *obs.Gauge
	mSubDropped *obs.Counter
}

// NewManager builds a transaction manager over the executor.
func NewManager(cfg Config) *Manager {
	if cfg.LockTimeout <= 0 {
		cfg.LockTimeout = DefaultLockTimeout
	}
	m := &Manager{cfg: cfg, locks: newLockTable(cfg.LockTimeout)}
	reg := cfg.Metrics
	dbL := obs.L("db", cfg.DB)
	m.mCommits = reg.Counter("mlds_txn_commits_total",
		"transactions committed", dbL)
	m.mAborts = reg.Counter("mlds_txn_aborts_total",
		"transactions aborted (explicit ROLLBACK, deadlock, timeout, or statement failure)", dbL)
	m.mDeadlocks = reg.Counter("mlds_txn_deadlocks_total",
		"deadlock cycles detected by the wait-for-graph detector", dbL)
	m.mLockWait = reg.Histogram("mlds_txn_lock_wait_seconds",
		"time spent blocked on the lock table per lock wait", nil, dbL)
	m.mSnapReads = reg.Counter("mlds_mvcc_snapshot_reads_total",
		"statements served lock-free from MVCC snapshots", dbL)
	m.mGCPruned = reg.Counter("mlds_mvcc_gc_pruned_total",
		"record versions pruned by the MVCC watermark GC", dbL)
	m.mVersions = reg.Gauge("mlds_mvcc_versions",
		"live record versions across the kernel backends, as of the last GC sweep", dbL)
	m.mSubDropped = reg.Counter("mlds_commit_sub_dropped_total",
		"commit records dropped from full commit-stream subscriber buffers (tailers resynchronize from the journal)", dbL)
	if cfg.MVCC {
		m.clock.Store(1)
		m.lastGC = 1
		m.snaps = make(map[uint64]uint64)
	}
	m.locks.onWait = func(d time.Duration) { m.mLockWait.Observe(d.Seconds()) }
	m.locks.onDeadlock = func() {
		m.deadlocks.Add(1)
		m.mDeadlocks.Inc()
	}
	return m
}

// Begin starts a transaction.
func (m *Manager) Begin() *Txn {
	m.begins.Add(1)
	return &Txn{
		id:    m.ids.Add(1),
		m:     m,
		locks: make(map[string]Mode),
	}
}

// Stats returns the manager's counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Begins:    m.begins.Load(),
		Commits:   m.commits.Load(),
		Aborts:    m.aborts.Load(),
		Deadlocks: m.deadlocks.Load(),
	}
}

// lockStep is one entry of a request's lock plan.
type lockStep struct {
	name string
	mode Mode
}

// lockPlan computes the locks a request needs: the root resource in an
// intention mode plus each named file in S or X — or, when the request's
// qualification does not confine it to named files, the root itself in
// S or X.
func lockPlan(req *abdl.Request) []lockStep {
	write := false
	var files []string
	confined := true
	switch req.Kind {
	case abdl.Insert:
		write = true
		files = []string{req.Record.File()}
	case abdl.Delete, abdl.Update:
		write = true
		files, confined = req.Query.Files()
		if req.Kind == abdl.Delete && req.ForceID != 0 {
			// Targeted delete ignores the qualification and may touch any
			// file, so it needs the root exclusively.
			confined = false
		}
	case abdl.Retrieve:
		files, confined = req.Query.Files()
	case abdl.RetrieveCommon:
		f1, ok1 := req.Query.Files()
		f2, ok2 := req.Query2.Files()
		confined = ok1 && ok2
		files = append(f1, f2...)
	}
	fileMode, rootMode := S, IS
	if write {
		fileMode, rootMode = X, IX
	}
	if !confined {
		return []lockStep{{rootResource, fileMode}}
	}
	plan := []lockStep{{rootResource, rootMode}}
	sort.Strings(files)
	prev := "\x00"
	for _, f := range files {
		if f != prev {
			plan = append(plan, lockStep{f, fileMode})
			prev = f
		}
	}
	return plan
}

// acquirePlan takes every lock of the plan in order (root first, then files
// sorted), returning the first lock failure.
func (m *Manager) acquirePlan(tx *Txn, plan []lockStep) error {
	for _, st := range plan {
		if err := m.locks.acquire(tx, st.name, st.mode); err != nil {
			return err
		}
	}
	return nil
}

func isMutation(k abdl.Kind) bool {
	return k == abdl.Insert || k == abdl.Delete || k == abdl.Update
}

// beforeImages retrieves full copies of every record a DELETE or UPDATE will
// touch. The retrieve runs against the executor directly, below kc, so it
// appears in no trace and no journal.
func (m *Manager) beforeImages(ctx context.Context, req *abdl.Request) ([]undoRec, error) {
	if req.Kind != abdl.Delete && req.Kind != abdl.Update {
		return nil, nil
	}
	if req.Kind == abdl.Delete && req.ForceID != 0 {
		// Key-targeted deletes are the undo primitive itself; they never
		// originate from sessions, and imaging them content-free is not
		// possible, so they carry no undo.
		return nil, nil
	}
	probe := abdl.NewRetrieve(req.Query, abdl.AllAttrs)
	res, _, err := m.cfg.Exec.ExecTimedCtx(ctx, probe)
	if err != nil {
		return nil, fmt.Errorf("txn: before-image capture: %w", err)
	}
	undo := make([]undoRec, 0, len(res.Records))
	for _, sr := range res.Records {
		undo = append(undo, undoRec{id: sr.ID, file: sr.Rec.File(), image: sr.Rec.Clone()})
	}
	return undo, nil
}

// journalRec builds the redo record for an applied mutation. An INSERT that
// let the kernel assign its database key is journalled with that key pinned
// (ForceID), so a replay against a checkpoint image re-creates the record
// under the identical key regardless of allocator state.
func (m *Manager) journalRec(req *abdl.Request, res *kdb.Result) JournalRec {
	rec := JournalRec{Req: wire.FromRequest(req)}
	if req.Kind == abdl.Insert && req.ForceID == 0 && res != nil && len(res.Affected) > 0 {
		rec.Req.ForceID = uint64(res.Affected[0])
	}
	if res != nil && len(res.Affected) > 0 {
		rec.Affected = make([]uint64, len(res.Affected))
		for i, id := range res.Affected {
			rec.Affected[i] = uint64(id)
		}
	}
	if m.cfg.KeyPos != nil {
		rec.Key = m.cfg.KeyPos()
	}
	return rec
}

// WithStampBarrier runs fn while the stamp barrier is held: no commit batch
// is mid-stamp, so every backend's version chains hold whole epochs only. A
// checkpoint takes its fence inside the barrier — the epoch it reads is then
// an exact batch boundary. Group commit keeps flushing throughout; only the
// visibility step queues behind fn.
func (m *Manager) WithStampBarrier(fn func()) {
	m.stampMu.Lock()
	defer m.stampMu.Unlock()
	fn()
}

// SeedClock advances the commit clock to at least epoch. Recovery uses it
// after mounting a checkpoint image so new commit epochs continue past the
// image's epoch instead of restarting from 1 (which would stamp new versions
// below already-restored history).
func (m *Manager) SeedClock(epoch uint64) {
	if !m.cfg.MVCC {
		return
	}
	for {
		cur := m.clock.Load()
		if epoch <= cur || m.clock.CompareAndSwap(cur, epoch) {
			break
		}
	}
	m.smu.Lock()
	if epoch > m.lastGC {
		m.lastGC = epoch
	}
	m.smu.Unlock()
}

// Exec runs one statement inside the transaction: acquire locks (strict 2PL
// — held to commit/abort), capture before-images, execute, and buffer undo
// and redo. A lock failure (deadlock victim, timeout) rolls the whole
// transaction back and returns *AbortedError; a plain execution failure
// leaves the transaction active.
func (m *Manager) Exec(ctx context.Context, tx *Txn, req *abdl.Request) (*kdb.Result, time.Duration, error) {
	tx.mu.Lock()
	if tx.state != Active {
		tx.mu.Unlock()
		return nil, 0, ErrNotActive
	}
	if isMutation(req.Kind) && !tx.readOnly {
		tx.touched = true
	}
	tx.mu.Unlock()
	if tx.readOnly {
		return m.execSnapshot(ctx, tx, req)
	}
	if err := m.acquirePlan(tx, lockPlan(req)); err != nil {
		m.rollback(tx)
		return nil, 0, &AbortedError{ID: tx.id, Cause: err}
	}
	undo, err := m.beforeImages(ctx, req)
	if err != nil {
		return nil, 0, err
	}
	res, d, err := m.cfg.Exec.ExecTimedCtx(ctx, m.stampTxnID(tx, req))
	if err != nil {
		// The statement failed but the transaction survives. A broadcast
		// may have applied on some backends before failing; keeping the
		// before-images lets a later ABORT repair even that.
		tx.mu.Lock()
		tx.undo = append(tx.undo, undo...)
		tx.mu.Unlock()
		return nil, d, err
	}
	if isMutation(req.Kind) {
		if req.Kind == abdl.Insert {
			for _, id := range res.Affected {
				undo = append(undo, undoRec{id: id, file: req.Record.File()})
			}
		}
		tx.mu.Lock()
		tx.undo = append(tx.undo, undo...)
		tx.redo = append(tx.redo, m.journalRec(req, res))
		tx.mu.Unlock()
	}
	return res, d, nil
}

// ExecBatch runs a whole request round inside the transaction: the union of
// every request's locks is acquired up front, before-images are captured for
// each mutation, and the round executes as one kernel batch.
func (m *Manager) ExecBatch(ctx context.Context, tx *Txn, reqs []*abdl.Request) ([]*kdb.Result, time.Duration, error) {
	tx.mu.Lock()
	if tx.state != Active {
		tx.mu.Unlock()
		return nil, 0, ErrNotActive
	}
	if !tx.readOnly {
		for _, req := range reqs {
			if isMutation(req.Kind) {
				tx.touched = true
				break
			}
		}
	}
	tx.mu.Unlock()
	if tx.readOnly {
		return m.execSnapshotBatch(ctx, tx, reqs)
	}
	merged := make(map[string]Mode)
	for _, req := range reqs {
		for _, st := range lockPlan(req) {
			merged[st.name] = lub(merged[st.name], st.mode)
		}
	}
	names := make([]string, 0, len(merged))
	for name := range merged {
		names = append(names, name)
	}
	sort.Strings(names) // root ("") sorts first
	plan := make([]lockStep, 0, len(names))
	for _, name := range names {
		plan = append(plan, lockStep{name, merged[name]})
	}
	if err := m.acquirePlan(tx, plan); err != nil {
		m.rollback(tx)
		return nil, 0, &AbortedError{ID: tx.id, Cause: err}
	}
	var undo []undoRec
	for _, req := range reqs {
		u, err := m.beforeImages(ctx, req)
		if err != nil {
			return nil, 0, err
		}
		undo = append(undo, u...)
	}
	stamped := reqs
	if m.cfg.MVCC {
		stamped = make([]*abdl.Request, len(reqs))
		for i, req := range reqs {
			stamped[i] = m.stampTxnID(tx, req)
		}
	}
	results, d, err := m.cfg.Exec.ExecBatchCtx(ctx, stamped)
	if err != nil {
		tx.mu.Lock()
		tx.undo = append(tx.undo, undo...)
		tx.mu.Unlock()
		return nil, d, err
	}
	var redo []JournalRec
	for i, req := range reqs {
		if !isMutation(req.Kind) {
			continue
		}
		if req.Kind == abdl.Insert {
			for _, id := range results[i].Affected {
				undo = append(undo, undoRec{id: id, file: req.Record.File()})
			}
		}
		redo = append(redo, m.journalRec(req, results[i]))
	}
	tx.mu.Lock()
	tx.undo = append(tx.undo, undo...)
	tx.redo = append(tx.redo, redo...)
	tx.mu.Unlock()
	return results, d, nil
}

// Commit commits the transaction. Read-only transactions release their locks
// and return; writers join the group-commit queue, where the first committer
// becomes the flush leader and persists every queued commit record with a
// single sink flush.
func (m *Manager) Commit(tx *Txn) error {
	tx.mu.Lock()
	if tx.state != Active {
		tx.mu.Unlock()
		return ErrNotActive
	}
	redo := tx.redo
	wrote := tx.touched
	tx.state = Committed
	tx.undo, tx.redo = nil, nil
	tx.mu.Unlock()

	if tx.readOnly {
		m.endSnapshot(tx)
		m.commits.Add(1)
		m.mCommits.Inc()
		return nil
	}
	var err error
	if (len(redo) > 0 && m.cfg.Sink != nil) || (wrote && m.cfg.MVCC) {
		err = m.groupCommit(CommitRecord{ID: tx.id, Entries: redo})
	}
	m.locks.releaseAll(tx)
	m.commits.Add(1)
	m.mCommits.Inc()
	return err
}

// groupCommit enqueues the record and either waits for the current leader's
// next flush or becomes the leader and drains the queue.
func (m *Manager) groupCommit(rec CommitRecord) error {
	req := commitReq{rec: rec, done: make(chan error, 1)}
	m.cmu.Lock()
	m.queue = append(m.queue, req)
	if m.flushing {
		m.cmu.Unlock()
		return <-req.done
	}
	m.flushing = true
	for len(m.queue) > 0 {
		batch := m.queue
		m.queue = nil
		m.cmu.Unlock()
		recs := make([]CommitRecord, len(batch))
		for i, b := range batch {
			recs[i] = b.rec
		}
		var err error
		if m.cfg.Sink != nil {
			err = m.cfg.Sink.WriteCommits(recs)
			if err == nil {
				if pr, ok := m.cfg.Sink.(PosReader); ok {
					// Distribute the batch's end position onto each record:
					// the sink counts committed data entries, batches are
					// serialized by the leader, and aborts write no data
					// entries, so walking the batch backwards from the end
					// recovers every record's exact journal position.
					pos := pr.JournalPos()
					for i := len(recs) - 1; i >= 0; i-- {
						recs[i].Pos = pos
						pos -= uint64(len(recs[i].Entries))
					}
				}
			}
		}
		if err == nil && m.cfg.MVCC {
			// Durable first, visible second: pending versions are stamped
			// with one epoch for the whole batch only after the sink flush.
			// The stamp barrier keeps checkpoint fences off half-stamped
			// batches; on publication the sink learns which of its positions
			// the new epoch corresponds to.
			m.stampMu.Lock()
			if epoch, ok := m.stampEpoch(recs); ok {
				if noter, isNoter := m.cfg.Sink.(EpochNoter); isNoter {
					noter.NoteEpoch(epoch)
				}
				for i := range recs {
					recs[i].Epoch = epoch
				}
			}
			m.stampMu.Unlock()
		}
		if err == nil {
			m.publishCommits(recs)
		}
		for _, b := range batch {
			b.done <- err
		}
		m.cmu.Lock()
	}
	m.flushing = false
	m.cmu.Unlock()
	return <-req.done
}

// Abort rolls the transaction back: applied mutations are undone in reverse
// order, the abort is noted in the journal, and all locks release. Aborting
// a finished transaction is a no-op.
func (m *Manager) Abort(tx *Txn) error {
	return m.rollback(tx)
}

func (m *Manager) rollback(tx *Txn) error {
	tx.mu.Lock()
	if tx.state != Active {
		tx.mu.Unlock()
		return nil
	}
	undo := tx.undo
	wrote := len(tx.redo) > 0
	touched := tx.touched
	tx.state = Aborted
	tx.undo, tx.redo = nil, nil
	tx.mu.Unlock()

	if tx.readOnly {
		m.endSnapshot(tx)
		m.aborts.Add(1)
		m.mAborts.Inc()
		return nil
	}
	if touched {
		// Drop the pending versions before undo repairs the live state, so a
		// later commit epoch can never resurrect them.
		m.discardVersions(tx)
	}
	err := m.applyUndo(undo)
	if wrote && m.cfg.Sink != nil {
		if werr := m.cfg.Sink.WriteAbort(tx.id); err == nil {
			err = werr
		}
	}
	m.locks.releaseAll(tx)
	m.aborts.Add(1)
	m.mAborts.Inc()
	return err
}

// applyUndo reverses the transaction's applied mutations, newest first. Each
// step deletes the current record under the key (a broadcast reaches every
// backend and replica) and, for DELETE/UPDATE images, re-inserts the
// before-image pinned to the same key.
func (m *Manager) applyUndo(undo []undoRec) error {
	ctx := context.Background()
	var firstErr error
	for i := len(undo) - 1; i >= 0; i-- {
		u := undo[i]
		del := abdl.NewDelete(abdm.And(abdm.Predicate{
			Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String(u.file),
		}))
		del.ForceID = u.id
		del.NoVersion = true // undo restores history, it doesn't write new history
		if _, _, err := m.cfg.Exec.ExecTimedCtx(ctx, del); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("txn: undo delete of record %d: %w", u.id, err)
		}
		if u.image != nil {
			ins := abdl.NewInsert(u.image)
			ins.ForceID = u.id
			ins.NoVersion = true
			if _, _, err := m.cfg.Exec.ExecTimedCtx(ctx, ins); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("txn: undo restore of record %d: %w", u.id, err)
			}
		}
	}
	return firstErr
}
