package txn

import (
	"context"
	"strings"
	"testing"

	"mlds/internal/obs"
)

// TestSubscribeCommits: every committed transaction's redo log is published
// exactly once to every subscriber, aborts publish nothing, and Close is
// idempotent.
func TestSubscribeCommits(t *testing.T) {
	m, _ := newManager(t, Config{MVCC: true})
	a := m.SubscribeCommits(16)
	b := m.SubscribeCommits(16)
	defer b.Close()

	tx := m.Begin()
	if _, _, err := m.Exec(context.Background(), tx, insert("f", 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(tx); err != nil {
		t.Fatal(err)
	}
	aborted := m.Begin()
	if _, _, err := m.Exec(context.Background(), aborted, insert("f", 2)); err != nil {
		t.Fatal(err)
	}
	if err := m.Abort(aborted); err != nil {
		t.Fatal(err)
	}

	for _, sub := range []*CommitSub{a, b} {
		rec := <-sub.C
		if rec.ID != tx.ID() || len(rec.Entries) != 1 {
			t.Fatalf("published record = %+v", rec)
		}
		select {
		case extra := <-sub.C:
			t.Fatalf("aborted transaction published: %+v", extra)
		default:
		}
	}
	a.Close()
	a.Close() // idempotent
	if _, ok := <-a.C; ok {
		t.Fatal("C open after Close")
	}
}

// TestSubscribeDroppedMetric: overflowing a subscriber's buffer never blocks
// commits; it counts on the subscription and on the
// mlds_commit_sub_dropped_total counter.
func TestSubscribeDroppedMetric(t *testing.T) {
	reg := obs.NewRegistry()
	m, _ := newManager(t, Config{MVCC: true, Metrics: reg, DB: "d"})
	sub := m.SubscribeCommits(1)
	defer sub.Close()

	for v := int64(1); v <= 5; v++ {
		tx := m.Begin()
		if _, _, err := m.Exec(context.Background(), tx, insert("f", v)); err != nil {
			t.Fatal(err)
		}
		if err := m.Commit(tx); err != nil {
			t.Fatal(err)
		}
	}
	// Buffer of 1, nothing drained: 4 of the 5 records must drop.
	if got := sub.Dropped(); got != 4 {
		t.Fatalf("Dropped() = %d, want 4", got)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `mlds_commit_sub_dropped_total{db="d"} 4`) {
		t.Fatalf("metric missing or wrong:\n%s", sb.String())
	}
}
