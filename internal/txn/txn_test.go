package txn

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/mbds"
)

// newManager builds a manager over a real two-backend kernel with files
// "f" and "g" (one int attribute x each).
func newManager(t *testing.T, cfg Config) (*Manager, *mbds.System) {
	t.Helper()
	dir := abdm.NewDirectory()
	if err := dir.DefineAttr("x", abdm.KindInt); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"f", "g"} {
		if err := dir.DefineFile(f, []string{"x"}); err != nil {
			t.Fatal(err)
		}
	}
	sys, err := mbds.New(dir, mbds.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	cfg.Exec = sys
	return NewManager(cfg), sys
}

func insert(file string, v int64) *abdl.Request {
	return abdl.NewInsert(abdm.NewRecord(file, abdm.Keyword{Attr: "x", Val: abdm.Int(v)}))
}

func retrieveEq(v int64) *abdl.Request {
	return abdl.NewRetrieve(abdm.And(
		abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("f")},
		abdm.Predicate{Attr: "x", Op: abdm.OpEq, Val: abdm.Int(v)}), abdl.AllAttrs)
}

func update(from, to int64) *abdl.Request {
	return abdl.NewUpdate(abdm.And(
		abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("f")},
		abdm.Predicate{Attr: "x", Op: abdm.OpEq, Val: abdm.Int(from)}),
		abdl.Modifier{Attr: "x", Val: abdm.Int(to)})
}

func countEq(t *testing.T, m *Manager, v int64) int {
	t.Helper()
	tx := m.Begin()
	defer m.Commit(tx)
	res, _, err := m.Exec(context.Background(), tx, retrieveEq(v))
	if err != nil {
		t.Fatal(err)
	}
	return len(res.Records)
}

func TestCompatMatrix(t *testing.T) {
	cases := []struct {
		a, b Mode
		want bool
	}{
		{IS, X, false}, {IS, SIX, true}, {IX, IX, true}, {IX, S, false},
		{S, S, true}, {S, IX, false}, {SIX, IS, true}, {SIX, S, false},
		{X, IS, false}, {X, X, false},
	}
	for _, c := range cases {
		if got := compatible(c.a, c.b); got != c.want {
			t.Errorf("compatible(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := compatible(c.b, c.a); got != c.want {
			t.Errorf("compatible(%v, %v) = %v, want %v", c.b, c.a, got, c.want)
		}
	}
}

func TestLub(t *testing.T) {
	cases := []struct{ a, b, want Mode }{
		{modeNone, S, S}, {IS, IX, IX}, {S, IX, SIX}, {IX, S, SIX},
		{S, X, X}, {SIX, IX, SIX}, {S, S, S}, {IS, X, X},
	}
	for _, c := range cases {
		if got := lub(c.a, c.b); got != c.want {
			t.Errorf("lub(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestCommitAndAbortRestore: an aborted transaction's INSERT, UPDATE, and
// DELETE are all rolled back exactly; a committed one persists.
func TestCommitAndAbortRestore(t *testing.T) {
	m, _ := newManager(t, Config{})
	ctx := context.Background()

	tx := m.Begin()
	for _, v := range []int64{1, 2} {
		if _, _, err := m.Exec(ctx, tx, insert("f", v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Commit(tx); err != nil {
		t.Fatal(err)
	}

	tx = m.Begin()
	if _, _, err := m.Exec(ctx, tx, insert("f", 3)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Exec(ctx, tx, update(1, 10)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Exec(ctx, tx, abdl.NewDelete(abdm.And(
		abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("f")},
		abdm.Predicate{Attr: "x", Op: abdm.OpEq, Val: abdm.Int(2)}))); err != nil {
		t.Fatal(err)
	}
	// Inside the transaction the changes are visible.
	if res, _, err := m.Exec(ctx, tx, retrieveEq(10)); err != nil || len(res.Records) != 1 {
		t.Fatalf("in-txn update invisible: res=%v err=%v", res, err)
	}
	if err := m.Abort(tx); err != nil {
		t.Fatal(err)
	}

	for v, want := range map[int64]int{1: 1, 2: 1, 3: 0, 10: 0} {
		if got := countEq(t, m, v); got != want {
			t.Errorf("after abort, count(x=%d) = %d, want %d", v, got, want)
		}
	}
	st := m.Stats()
	if st.Commits == 0 || st.Aborts != 1 {
		t.Errorf("stats = %+v, want 1 abort and some commits", st)
	}
}

// TestStatementAfterFinish: statements on a finished transaction fail with
// ErrNotActive, and finishing twice is harmless.
func TestStatementAfterFinish(t *testing.T) {
	m, _ := newManager(t, Config{})
	ctx := context.Background()
	tx := m.Begin()
	if err := m.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Exec(ctx, tx, insert("f", 1)); !errors.Is(err, ErrNotActive) {
		t.Errorf("exec on committed txn: %v, want ErrNotActive", err)
	}
	if err := m.Commit(tx); !errors.Is(err, ErrNotActive) {
		t.Errorf("second commit: %v, want ErrNotActive", err)
	}
	if err := m.Abort(tx); err != nil {
		t.Errorf("abort after commit should be a no-op: %v", err)
	}
}

// TestSharedLocksCoexist: two readers of the same file proceed without
// blocking each other.
func TestSharedLocksCoexist(t *testing.T) {
	m, _ := newManager(t, Config{LockTimeout: 200 * time.Millisecond})
	ctx := context.Background()
	t1, t2 := m.Begin(), m.Begin()
	if _, _, err := m.Exec(ctx, t1, retrieveEq(1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Exec(ctx, t2, retrieveEq(1)); err != nil {
		t.Fatal(err)
	}
	m.Commit(t1)
	m.Commit(t2)
}

// TestWriterBlocksUntilCommit: a writer holding X on a file blocks a second
// writer until commit releases the lock.
func TestWriterBlocksUntilCommit(t *testing.T) {
	m, _ := newManager(t, Config{LockTimeout: 5 * time.Second})
	ctx := context.Background()
	t1 := m.Begin()
	if _, _, err := m.Exec(ctx, t1, insert("f", 1)); err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		t2 := m.Begin()
		close(entered)
		_, _, err := m.Exec(ctx, t2, insert("f", 2))
		if err == nil {
			err = m.Commit(t2)
		}
		done <- err
	}()
	<-entered
	select {
	case err := <-done:
		t.Fatalf("second writer finished while first held X: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := m.Commit(t1); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("second writer failed after release: %v", err)
	}
	if got := countEq(t, m, 2); got != 1 {
		t.Errorf("count(x=2) = %d, want 1", got)
	}
}

// TestDeadlockVictimIsYoungest: two transactions locking files f and g in
// opposite orders deadlock; the detector aborts the younger one and the
// older completes.
func TestDeadlockVictimIsYoungest(t *testing.T) {
	m, _ := newManager(t, Config{LockTimeout: 10 * time.Second})
	ctx := context.Background()
	older, younger := m.Begin(), m.Begin()
	if younger.ID() <= older.ID() {
		t.Fatalf("ids not monotonic: %d then %d", older.ID(), younger.ID())
	}
	if _, _, err := m.Exec(ctx, older, insert("f", 1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Exec(ctx, younger, insert("g", 1)); err != nil {
		t.Fatal(err)
	}
	olderDone := make(chan error, 1)
	go func() {
		// Blocks on younger's X(g) until the detector kills younger.
		_, _, err := m.Exec(ctx, older, insert("g", 2))
		olderDone <- err
	}()
	// Give the older transaction time to block, then close the cycle.
	time.Sleep(50 * time.Millisecond)
	_, _, err := m.Exec(ctx, younger, insert("f", 2))
	var ae *AbortedError
	if !errors.As(err, &ae) || !errors.Is(err, ErrDeadlock) {
		t.Fatalf("younger got %v, want AbortedError wrapping ErrDeadlock", err)
	}
	if younger.State() != Aborted {
		t.Errorf("younger state = %v, want aborted", younger.State())
	}
	if err := <-olderDone; err != nil {
		t.Fatalf("older transaction failed after victim abort: %v", err)
	}
	if err := m.Commit(older); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Deadlocks == 0 {
		t.Error("deadlock not counted")
	}
	// Younger's insert into g was rolled back; older's survived.
	tx := m.Begin()
	res, _, err := m.Exec(ctx, tx, abdl.NewRetrieve(abdm.And(
		abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("g")}), abdl.AllAttrs))
	if err != nil {
		t.Fatal(err)
	}
	m.Commit(tx)
	if len(res.Records) != 1 {
		t.Errorf("file g holds %d records, want only the older txn's 1", len(res.Records))
	}
}

// TestLockTimeout: a waiter that cannot be granted and is not on a cycle
// aborts with ErrLockTimeout.
func TestLockTimeout(t *testing.T) {
	m, _ := newManager(t, Config{LockTimeout: 60 * time.Millisecond})
	ctx := context.Background()
	holder := m.Begin()
	if _, _, err := m.Exec(ctx, holder, insert("f", 1)); err != nil {
		t.Fatal(err)
	}
	waiterTx := m.Begin()
	_, _, err := m.Exec(ctx, waiterTx, insert("f", 2))
	if !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("got %v, want ErrLockTimeout", err)
	}
	if err := m.Commit(holder); err != nil {
		t.Fatal(err)
	}
}

// TestUnqualifiedQueryLocksRoot: a query with no FILE restriction locks the
// root in S, which blocks any writer's IX.
func TestUnqualifiedQueryLocksRoot(t *testing.T) {
	m, _ := newManager(t, Config{LockTimeout: 60 * time.Millisecond})
	ctx := context.Background()
	reader := m.Begin()
	scan := abdl.NewRetrieve(abdm.And(
		abdm.Predicate{Attr: "x", Op: abdm.OpGe, Val: abdm.Int(0)}), abdl.AllAttrs)
	if _, _, err := m.Exec(ctx, reader, scan); err != nil {
		t.Fatal(err)
	}
	writer := m.Begin()
	_, _, err := m.Exec(ctx, writer, insert("f", 1))
	if !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("writer got %v, want ErrLockTimeout against root S", err)
	}
	m.Commit(reader)
}

// sinkRecorder captures WriteCommits batches.
type sinkRecorder struct {
	mu      sync.Mutex
	batches [][]CommitRecord
	aborts  []uint64
}

func (s *sinkRecorder) WriteCommits(recs []CommitRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make([]CommitRecord, len(recs))
	copy(cp, recs)
	s.batches = append(s.batches, cp)
	return nil
}

func (s *sinkRecorder) WriteAbort(id uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.aborts = append(s.aborts, id)
	return nil
}

// TestGroupCommitBatches: concurrent committers produce fewer sink flushes
// than commits, and read-only transactions never reach the sink.
func TestGroupCommitBatches(t *testing.T) {
	sink := &sinkRecorder{}
	m, _ := newManager(t, Config{Sink: sink})
	ctx := context.Background()

	ro := m.Begin()
	if _, _, err := m.Exec(ctx, ro, retrieveEq(1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(ro); err != nil {
		t.Fatal(err)
	}
	if len(sink.batches) != 0 {
		t.Fatalf("read-only commit reached the sink: %v", sink.batches)
	}

	const writers = 16
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tx := m.Begin()
			if _, _, err := m.Exec(ctx, tx, insert("g", int64(i))); err != nil {
				t.Error(err)
				m.Abort(tx)
				return
			}
			if err := m.Commit(tx); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	sink.mu.Lock()
	defer sink.mu.Unlock()
	total := 0
	for _, b := range sink.batches {
		total += len(b)
	}
	if total != writers {
		t.Fatalf("sink saw %d commit records, want %d", total, writers)
	}
	// Not a strict guarantee, but with 16 writers racing one flush leader
	// at least one batch should carry more than one record — and there can
	// never be more flushes than commits.
	if len(sink.batches) > writers {
		t.Errorf("%d flushes for %d commits", len(sink.batches), writers)
	}
}

// TestExecBatchUndo: a batch aborts atomically with its transaction.
func TestExecBatchUndo(t *testing.T) {
	m, _ := newManager(t, Config{})
	ctx := context.Background()
	tx := m.Begin()
	if _, _, err := m.ExecBatch(ctx, tx, []*abdl.Request{
		insert("f", 1), insert("f", 2), insert("g", 3),
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.Abort(tx); err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{1, 2} {
		if got := countEq(t, m, v); got != 0 {
			t.Errorf("after batch abort, count(x=%d) = %d, want 0", v, got)
		}
	}
}

// TestUndoWithReplicas: the delete-by-key + reinsert-by-key undo pair
// restores every replica copy of a record across backends.
func TestUndoWithReplicas(t *testing.T) {
	dir := abdm.NewDirectory()
	if err := dir.DefineAttr("x", abdm.KindInt); err != nil {
		t.Fatal(err)
	}
	if err := dir.DefineFile("f", []string{"x"}); err != nil {
		t.Fatal(err)
	}
	cfg := mbds.DefaultConfig(3)
	cfg.Replicas = 1
	sys, err := mbds.New(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	m := NewManager(Config{Exec: sys})
	ctx := context.Background()

	tx := m.Begin()
	if _, _, err := m.Exec(ctx, tx, insert("f", 7)); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(tx); err != nil {
		t.Fatal(err)
	}
	tx = m.Begin()
	if _, _, err := m.Exec(ctx, tx, update(7, 8)); err != nil {
		t.Fatal(err)
	}
	if err := m.Abort(tx); err != nil {
		t.Fatal(err)
	}
	res, _, err := sys.ExecTimedCtx(ctx, retrieveEq(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 {
		t.Fatalf("after abort, %d records with x=7, want 1 (deduped)", len(res.Records))
	}
	if got, _, _ := sys.ExecTimedCtx(ctx, retrieveEq(8)); len(got.Records) != 0 {
		t.Fatalf("aborted update still visible: %d records with x=8", len(got.Records))
	}
}
