package txn

import (
	"sync"
	"sync/atomic"
)

// CommitSub is a subscription to the manager's committed-transaction stream.
// The group-commit leader publishes every CommitRecord of a batch after the
// sink flush and epoch stamp succeed, so a record on C is durable and
// visible. Delivery is non-blocking: if the subscriber falls behind its
// buffer, records are counted in Dropped rather than stalling commits —
// consumers needing completeness size the buffer for their workload and
// check Dropped afterwards.
type CommitSub struct {
	C       <-chan CommitRecord
	ch      chan CommitRecord
	id      uint64
	m       *Manager
	dropped atomic.Uint64
	once    sync.Once
}

// Dropped reports how many commit records were discarded because the
// subscriber's buffer was full.
func (s *CommitSub) Dropped() uint64 { return s.dropped.Load() }

// Close cancels the subscription and closes C. Safe to call more than once.
func (s *CommitSub) Close() {
	s.once.Do(func() {
		// Delete and close under one critical section: publishCommits sends
		// while holding subMu, so no send can race the close.
		s.m.subMu.Lock()
		delete(s.m.subs, s.id)
		close(s.ch)
		s.m.subMu.Unlock()
	})
}

// SubscribeCommits registers a subscriber for committed redo logs with the
// given channel buffer (minimum 1). Migration drills and failover oracles
// use it to know exactly which writes the system acknowledged as committed.
func (m *Manager) SubscribeCommits(buf int) *CommitSub {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan CommitRecord, buf)
	s := &CommitSub{C: ch, ch: ch, m: m}
	m.subMu.Lock()
	m.nextSub++
	s.id = m.nextSub
	if m.subs == nil {
		m.subs = make(map[uint64]*CommitSub)
	}
	m.subs[s.id] = s
	m.subMu.Unlock()
	return s
}

// publishCommits fans a flushed-and-stamped batch out to every subscriber.
// Called by the group-commit leader only after durability and visibility are
// established; never blocks.
func (m *Manager) publishCommits(recs []CommitRecord) {
	m.subMu.Lock()
	defer m.subMu.Unlock()
	for _, rec := range recs {
		for _, s := range m.subs {
			select {
			case s.ch <- rec:
			default:
				s.dropped.Add(1)
				m.mSubDropped.Inc()
			}
		}
	}
}
