package txn

import (
	"context"
	"errors"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/kdb"
)

// Multi-version snapshot transactions.
//
// With Config.MVCC set, the manager layers snapshot isolation for readers
// over the existing strict-2PL writers:
//
//   - A commit clock issues monotonically increasing epochs. The group-commit
//     leader, after its batch is durable, broadcasts one MVCC-COMMIT per
//     committed transaction stamping their pending versions with the batch's
//     epoch, then publishes the epoch — so a snapshot pinned at the published
//     clock can never observe a half-stamped transaction.
//   - BeginSnapshot pins a read-only transaction at the published clock. Its
//     statements skip the lock table entirely: each RETRIEVE is rewritten to
//     a snapshot read (Request.SnapEpoch) resolved against the version
//     chains, and mutations fail with ErrReadOnly.
//   - A watermark — the oldest live snapshot's epoch, or the clock when no
//     snapshot is live — drives garbage collection: MVCC-GC broadcasts prune
//     every version no current or future snapshot can observe. GC runs when
//     a snapshot ends and periodically as write commits accumulate.

// ErrReadOnly reports a mutation attempted inside a read-only snapshot
// transaction. The transaction stays active; only the statement fails.
var ErrReadOnly = errors.New("txn: read-only transaction cannot execute mutations")

// gcEvery is how many stamped commit batches elapse between periodic GC
// sweeps. Without it, a writer-only workload (no snapshots ever ending)
// would accumulate superseded versions forever.
const gcEvery = 32

// BeginSnapshot starts a read-only transaction pinned at the current commit
// epoch. It acquires no locks, buffers no undo or redo, and holds only a
// registry entry that bounds the garbage-collection watermark until it ends.
// Without Config.MVCC the transaction is still read-only and lock-free but
// reads live state (no version chains exist to snapshot).
func (m *Manager) BeginSnapshot() *Txn {
	m.begins.Add(1)
	tx := &Txn{
		id:       m.ids.Add(1),
		m:        m,
		readOnly: true,
		locks:    make(map[string]Mode),
	}
	if m.cfg.MVCC {
		m.smu.Lock()
		tx.snap = m.clock.Load()
		m.snaps[tx.id] = tx.snap
		m.smu.Unlock()
	}
	return tx
}

// ReadOnly reports whether the transaction is a snapshot reader.
func (t *Txn) ReadOnly() bool { return t.readOnly }

// SnapshotEpoch returns the commit epoch a snapshot transaction reads at
// (zero for read-write transactions).
func (t *Txn) SnapshotEpoch() uint64 { return t.snap }

// execSnapshot runs one statement of a read-only transaction: no locks, no
// undo, no redo — the request is rewritten to read the version chains at the
// transaction's pinned epoch.
func (m *Manager) execSnapshot(ctx context.Context, tx *Txn, req *abdl.Request) (*kdb.Result, time.Duration, error) {
	if isMutation(req.Kind) {
		return nil, 0, ErrReadOnly
	}
	cp := *req
	cp.SnapEpoch = tx.snap
	res, d, err := m.cfg.Exec.ExecTimedCtx(ctx, &cp)
	if err == nil {
		m.snapReads.Add(1)
		m.mSnapReads.Inc()
	}
	return res, d, err
}

// execSnapshotBatch is execSnapshot for a whole request round: every request
// must be a read, and the round executes as one kernel batch at the pinned
// epoch.
func (m *Manager) execSnapshotBatch(ctx context.Context, tx *Txn, reqs []*abdl.Request) ([]*kdb.Result, time.Duration, error) {
	snapped := make([]*abdl.Request, len(reqs))
	for i, req := range reqs {
		if isMutation(req.Kind) {
			return nil, 0, ErrReadOnly
		}
		cp := *req
		cp.SnapEpoch = tx.snap
		snapped[i] = &cp
	}
	results, d, err := m.cfg.Exec.ExecBatchCtx(ctx, snapped)
	if err == nil {
		m.snapReads.Add(uint64(len(snapped)))
		m.mSnapReads.Add(uint64(len(snapped)))
	}
	return results, d, err
}

// stampTxnID rewrites a mutation to carry the transaction's id, so the
// backends record its versions as pending under that transaction. Reads and
// non-MVCC managers pass through unchanged.
func (m *Manager) stampTxnID(tx *Txn, req *abdl.Request) *abdl.Request {
	if !m.cfg.MVCC || !isMutation(req.Kind) {
		return req
	}
	cp := *req
	cp.TxnID = tx.id
	return &cp
}

// endSnapshot unregisters a finished snapshot transaction and, now that the
// watermark may have advanced, considers a GC sweep.
func (m *Manager) endSnapshot(tx *Txn) {
	if !m.cfg.MVCC {
		return
	}
	m.smu.Lock()
	delete(m.snaps, tx.id)
	m.smu.Unlock()
	m.maybeGC()
}

// stampEpoch makes a durable commit batch visible to snapshots: one epoch is
// allocated for the whole batch, every transaction's pending versions are
// stamped with it in a single kernel round, and only then is the epoch
// published. Exactly one group-commit leader runs at a time, so epochs are
// monotonic. On a broadcast failure the epoch is not published — the batch
// stays durable and live, but snapshots keep reading the previous epoch
// rather than risk observing a half-stamped batch. It returns the epoch and
// whether it was published; the caller holds the stamp barrier.
func (m *Manager) stampEpoch(recs []CommitRecord) (uint64, bool) {
	epoch := m.clock.Load() + 1
	reqs := make([]*abdl.Request, len(recs))
	for i, rec := range recs {
		reqs[i] = &abdl.Request{Kind: abdl.MvccCommit, TxnID: rec.ID, MvccEpoch: epoch}
	}
	if _, _, err := m.cfg.Exec.ExecBatchCtx(context.Background(), reqs); err != nil {
		return epoch, false
	}
	m.clock.Store(epoch)
	if m.stampedBatches.Add(1)%gcEvery == 0 {
		m.maybeGC()
	}
	return epoch, true
}

// discardVersions drops an aborted transaction's pending versions on every
// backend. Undo restores the live state separately (with NoVersion set, so
// the restoration itself writes no history).
func (m *Manager) discardVersions(tx *Txn) {
	if !m.cfg.MVCC {
		return
	}
	req := &abdl.Request{Kind: abdl.MvccAbort, TxnID: tx.id}
	_, _, _ = m.cfg.Exec.ExecTimedCtx(context.Background(), req)
}

// maybeGC broadcasts an MVCC-GC sweep when the watermark — the oldest live
// snapshot's epoch, or the published clock when none is live — has advanced
// past the last sweep. The pruned count and surviving version total feed the
// mlds_mvcc metrics.
func (m *Manager) maybeGC() {
	if !m.cfg.MVCC {
		return
	}
	m.smu.Lock()
	w := m.clock.Load()
	for _, at := range m.snaps {
		if at < w {
			w = at
		}
	}
	if w <= m.lastGC {
		m.smu.Unlock()
		return
	}
	m.lastGC = w
	m.smu.Unlock()
	res, _, err := m.cfg.Exec.ExecTimedCtx(context.Background(),
		&abdl.Request{Kind: abdl.MvccGC, MvccEpoch: w})
	if err != nil || res == nil {
		return
	}
	m.gcPruned.Add(uint64(res.Count))
	m.mGCPruned.Add(uint64(res.Count))
	m.mVersions.Set(int64(res.Versions))
}

// MVCCStats is a point-in-time snapshot of the manager's MVCC counters.
type MVCCStats struct {
	Epoch         uint64 // last published commit epoch
	LiveSnapshots int    // snapshot transactions currently registered
	SnapshotReads uint64 // statements served from snapshots
	GCPruned      uint64 // versions pruned by GC sweeps
}

// MVCCStats returns the manager's MVCC counters (zero-valued when MVCC is
// disabled).
func (m *Manager) MVCCStats() MVCCStats {
	st := MVCCStats{
		Epoch:         m.clock.Load(),
		SnapshotReads: m.snapReads.Load(),
		GCPruned:      m.gcPruned.Load(),
	}
	if m.cfg.MVCC {
		m.smu.Lock()
		st.LiveSnapshots = len(m.snaps)
		m.smu.Unlock()
	}
	return st
}
