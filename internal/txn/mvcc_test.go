package txn

import (
	"context"
	"errors"
	"testing"
	"time"

	"mlds/internal/abdl"
)

// TestSnapshotIgnoresLaterCommits: a snapshot pinned before a commit keeps
// reading the pre-commit state; a snapshot pinned after sees the new state.
func TestSnapshotIgnoresLaterCommits(t *testing.T) {
	m, _ := newManager(t, Config{MVCC: true})
	ctx := context.Background()

	tx := m.Begin()
	if _, _, err := m.Exec(ctx, tx, insert("f", 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(tx); err != nil {
		t.Fatal(err)
	}

	old := m.BeginSnapshot()

	tx = m.Begin()
	if _, _, err := m.Exec(ctx, tx, update(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(tx); err != nil {
		t.Fatal(err)
	}

	res, _, err := m.Exec(ctx, old, retrieveEq(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 {
		t.Fatalf("old snapshot lost x=1: %d records", len(res.Records))
	}
	res, _, err = m.Exec(ctx, old, retrieveEq(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 {
		t.Fatalf("old snapshot sees the later commit: %d records", len(res.Records))
	}
	if err := m.Commit(old); err != nil {
		t.Fatal(err)
	}

	fresh := m.BeginSnapshot()
	res, _, err = m.Exec(ctx, fresh, retrieveEq(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 {
		t.Fatalf("fresh snapshot misses the commit: %d records", len(res.Records))
	}
	if err := m.Commit(fresh); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotRejectsMutations: every mutation kind fails with ErrReadOnly,
// in both single and batch execution, and the transaction stays usable.
func TestSnapshotRejectsMutations(t *testing.T) {
	m, _ := newManager(t, Config{MVCC: true})
	ctx := context.Background()
	tx := m.BeginSnapshot()
	if !tx.ReadOnly() {
		t.Fatal("BeginSnapshot transaction not read-only")
	}
	if _, _, err := m.Exec(ctx, tx, insert("f", 1)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("insert in snapshot: err=%v, want ErrReadOnly", err)
	}
	if _, _, err := m.ExecBatch(ctx, tx, []*abdl.Request{retrieveEq(1), insert("f", 2)}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("batch with mutation: err=%v, want ErrReadOnly", err)
	}
	// The statement failed; the snapshot itself is still usable.
	if _, _, err := m.Exec(ctx, tx, retrieveEq(1)); err != nil {
		t.Fatalf("snapshot unusable after rejected mutation: %v", err)
	}
	if err := m.Commit(tx); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotSkipsLockTable: a snapshot read completes while a writer holds
// an exclusive lock on the file — and does not see the uncommitted write.
func TestSnapshotSkipsLockTable(t *testing.T) {
	m, _ := newManager(t, Config{MVCC: true, LockTimeout: 50 * time.Millisecond})
	ctx := context.Background()

	tx := m.Begin()
	if _, _, err := m.Exec(ctx, tx, insert("f", 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(tx); err != nil {
		t.Fatal(err)
	}

	writer := m.Begin()
	if _, _, err := m.Exec(ctx, writer, update(1, 9)); err != nil {
		t.Fatal(err)
	}
	// The writer holds X on "f". A 2PL reader would block and time out; the
	// snapshot reads through immediately.
	snap := m.BeginSnapshot()
	done := make(chan error, 1)
	go func() {
		res, _, err := m.Exec(ctx, snap, retrieveEq(1))
		if err == nil && len(res.Records) != 1 {
			err = errors.New("snapshot does not see committed x=1")
		}
		if err == nil {
			if r2, _, e2 := m.Exec(ctx, snap, retrieveEq(9)); e2 != nil {
				err = e2
			} else if len(r2.Records) != 0 {
				err = errors.New("snapshot sees uncommitted x=9")
			}
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("snapshot read blocked behind a writer lock")
	}
	m.Commit(snap)
	if err := m.Commit(writer); err != nil {
		t.Fatal(err)
	}
}

// TestAbortedWritesNeverVisible: an aborted transaction's versions are
// discarded; no later snapshot can observe them.
func TestAbortedWritesNeverVisible(t *testing.T) {
	m, _ := newManager(t, Config{MVCC: true})
	ctx := context.Background()

	tx := m.Begin()
	if _, _, err := m.Exec(ctx, tx, insert("f", 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(tx); err != nil {
		t.Fatal(err)
	}

	bad := m.Begin()
	if _, _, err := m.Exec(ctx, bad, update(1, 666)); err != nil {
		t.Fatal(err)
	}
	if err := m.Abort(bad); err != nil {
		t.Fatal(err)
	}

	// Advance the clock past the abort with another commit.
	tx = m.Begin()
	if _, _, err := m.Exec(ctx, tx, insert("g", 5)); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(tx); err != nil {
		t.Fatal(err)
	}

	snap := m.BeginSnapshot()
	res, _, err := m.Exec(ctx, snap, retrieveEq(666))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 {
		t.Fatalf("aborted write visible to snapshot: %d records", len(res.Records))
	}
	res, _, err = m.Exec(ctx, snap, retrieveEq(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 {
		t.Fatalf("pre-abort state lost: %d records", len(res.Records))
	}
	m.Commit(snap)
}

// TestSnapshotWatermarkBlocksGC: versions a live snapshot still needs
// survive GC; once the snapshot ends they are reclaimed.
func TestSnapshotWatermarkBlocksGC(t *testing.T) {
	m, sys := newManager(t, Config{MVCC: true})
	ctx := context.Background()

	tx := m.Begin()
	if _, _, err := m.Exec(ctx, tx, insert("f", 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(tx); err != nil {
		t.Fatal(err)
	}

	pinned := m.BeginSnapshot()

	// Supersede x=1 twice; the pinned snapshot still needs the original.
	for _, v := range []int64{2, 3} {
		tx := m.Begin()
		if _, _, err := m.Exec(ctx, tx, update(v-1, v)); err != nil {
			t.Fatal(err)
		}
		if err := m.Commit(tx); err != nil {
			t.Fatal(err)
		}
	}

	res, _, err := m.Exec(ctx, pinned, retrieveEq(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 {
		t.Fatalf("pinned snapshot lost its version: %d records", len(res.Records))
	}

	if err := m.Commit(pinned); err != nil {
		t.Fatal(err)
	}
	// Ending the snapshot advanced the watermark and ran GC: the two
	// superseded versions (x=1, x=2) are gone from every backend.
	st := m.MVCCStats()
	if st.GCPruned == 0 {
		t.Fatalf("GC pruned nothing after snapshot ended: %+v", st)
	}
	if st.LiveSnapshots != 0 {
		t.Fatalf("snapshot still registered: %+v", st)
	}
	_ = sys

	// The live state is intact.
	if n := countEq(t, m, 3); n != 1 {
		t.Fatalf("live x=3 count=%d, want 1", n)
	}
}

// TestSnapshotStatsAndMetrics: the mlds_mvcc counters and MVCCStats track
// snapshot reads, the epoch, and live snapshots.
func TestSnapshotStatsAndMetrics(t *testing.T) {
	m, _ := newManager(t, Config{MVCC: true})
	ctx := context.Background()

	st0 := m.MVCCStats()
	if st0.Epoch == 0 {
		t.Fatal("MVCC clock not initialised")
	}

	tx := m.Begin()
	if _, _, err := m.Exec(ctx, tx, insert("f", 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if st := m.MVCCStats(); st.Epoch != st0.Epoch+1 {
		t.Fatalf("epoch after one commit = %d, want %d", st.Epoch, st0.Epoch+1)
	}

	snap := m.BeginSnapshot()
	if st := m.MVCCStats(); st.LiveSnapshots != 1 {
		t.Fatalf("live snapshots = %d, want 1", st.LiveSnapshots)
	}
	if _, _, err := m.Exec(ctx, snap, retrieveEq(1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.ExecBatch(ctx, snap, []*abdl.Request{retrieveEq(1), retrieveEq(2)}); err != nil {
		t.Fatal(err)
	}
	if err := m.Abort(snap); err != nil {
		t.Fatal(err)
	}
	st := m.MVCCStats()
	if st.SnapshotReads != 3 {
		t.Fatalf("snapshot reads = %d, want 3", st.SnapshotReads)
	}
	if st.LiveSnapshots != 0 {
		t.Fatalf("live snapshots after rollback = %d, want 0", st.LiveSnapshots)
	}
}

// TestSnapshotWithoutMVCC: BeginSnapshot on a non-MVCC manager still yields
// a working lock-free read-only transaction over live state.
func TestSnapshotWithoutMVCC(t *testing.T) {
	m, _ := newManager(t, Config{})
	ctx := context.Background()

	tx := m.Begin()
	if _, _, err := m.Exec(ctx, tx, insert("f", 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(tx); err != nil {
		t.Fatal(err)
	}
	snap := m.BeginSnapshot()
	if _, _, err := m.Exec(ctx, snap, insert("f", 2)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("mutation in read-only txn: %v, want ErrReadOnly", err)
	}
	res, _, err := m.Exec(ctx, snap, retrieveEq(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 {
		t.Fatalf("read-only live read found %d records, want 1", len(res.Records))
	}
	if err := m.Commit(snap); err != nil {
		t.Fatal(err)
	}
}
