package abdl

import (
	"testing"
	"testing/quick"

	"mlds/internal/abdm"
)

func mustParse(t *testing.T, src string) *Request {
	t.Helper()
	r, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return r
}

func TestParseInsert(t *testing.T) {
	r := mustParse(t, "INSERT (<FILE, course>, <title, 'Advanced Database'>, <credits, 4>, <rating, 4.5>)")
	if r.Kind != Insert {
		t.Fatalf("kind = %v", r.Kind)
	}
	if r.Record.File() != "course" {
		t.Errorf("file = %q", r.Record.File())
	}
	if v, _ := r.Record.Get("title"); v.AsString() != "Advanced Database" {
		t.Errorf("title = %v", v)
	}
	if v, _ := r.Record.Get("credits"); v.Kind() != abdm.KindInt || v.AsInt() != 4 {
		t.Errorf("credits = %v", v)
	}
	if v, _ := r.Record.Get("rating"); v.Kind() != abdm.KindFloat || v.AsFloat() != 4.5 {
		t.Errorf("rating = %v", v)
	}
}

func TestParseInsertNull(t *testing.T) {
	r := mustParse(t, "INSERT (<FILE, f>, <advisor, NULL>)")
	if v, ok := r.Record.Get("advisor"); !ok || !v.IsNull() {
		t.Errorf("advisor = %v,%v, want NULL", v, ok)
	}
}

func TestParseDelete(t *testing.T) {
	r := mustParse(t, "DELETE ((FILE = course) AND (credits < 3))")
	if r.Kind != Delete {
		t.Fatalf("kind = %v", r.Kind)
	}
	if len(r.Query) != 1 || len(r.Query[0]) != 2 {
		t.Fatalf("query shape = %v", r.Query)
	}
	if r.Query[0][1].Op != abdm.OpLt {
		t.Errorf("op = %v", r.Query[0][1].Op)
	}
}

func TestParseUpdate(t *testing.T) {
	r := mustParse(t, "UPDATE ((FILE = course) AND (title = 'DB')) (credits = 4) (rating = 4.5)")
	if r.Kind != Update || len(r.Mods) != 2 {
		t.Fatalf("kind=%v mods=%v", r.Kind, r.Mods)
	}
	if r.Mods[0].Attr != "credits" || r.Mods[0].Val.AsInt() != 4 {
		t.Errorf("mod0 = %v", r.Mods[0])
	}
	if r.Mods[1].Val.Kind() != abdm.KindFloat {
		t.Errorf("mod1 kind = %v", r.Mods[1].Val.Kind())
	}
}

func TestParseUpdateNullModifier(t *testing.T) {
	r := mustParse(t, "UPDATE ((FILE = f) AND (k = 7)) (advisor = NULL)")
	if !r.Mods[0].Val.IsNull() {
		t.Error("modifier NULL not parsed")
	}
}

func TestParseRetrieve(t *testing.T) {
	r := mustParse(t, "RETRIEVE ((FILE = course) AND (title = 'Advanced Database')) (title, dept, semester, credits) BY course")
	if r.Kind != Retrieve {
		t.Fatalf("kind = %v", r.Kind)
	}
	if len(r.Target) != 4 || r.Target[0].Attr != "title" {
		t.Errorf("target = %v", r.Target)
	}
	if r.By != "course" {
		t.Errorf("by = %q", r.By)
	}
}

func TestParseRetrieveAllAttributes(t *testing.T) {
	r := mustParse(t, "RETRIEVE ((FILE = person)) (all attributes)")
	if len(r.Target) != 1 || r.Target[0].Attr != AllAttrs {
		t.Errorf("target = %v", r.Target)
	}
}

func TestParseRetrieveAggregates(t *testing.T) {
	r := mustParse(t, "RETRIEVE ((FILE = course)) (COUNT(title), AVG(credits), MAX(rating)) BY dept")
	wantAggs := []Aggregate{AggCount, AggAvg, AggMax}
	if len(r.Target) != 3 {
		t.Fatalf("target = %v", r.Target)
	}
	for i, a := range wantAggs {
		if r.Target[i].Agg != a {
			t.Errorf("target[%d].Agg = %v, want %v", i, r.Target[i].Agg, a)
		}
	}
}

func TestParseDisjunction(t *testing.T) {
	r := mustParse(t, "RETRIEVE (((FILE = student)) OR ((FILE = faculty))) (all attributes)")
	if len(r.Query) != 2 {
		t.Fatalf("DNF terms = %d, want 2", len(r.Query))
	}
}

func TestParseDistributesAndOverOr(t *testing.T) {
	r := mustParse(t, "DELETE ((FILE = f) AND ((x = 1) OR (x = 2)))")
	if len(r.Query) != 2 {
		t.Fatalf("DNF terms = %d, want 2: %v", len(r.Query), r.Query)
	}
	for _, conj := range r.Query {
		if len(conj) != 2 {
			t.Errorf("conjunction = %v, want FILE + x predicates", conj)
		}
		if f, ok := conj.File(); !ok || f != "f" {
			t.Errorf("conjunction lost FILE predicate: %v", conj)
		}
	}
}

func TestParseNestedParens(t *testing.T) {
	r := mustParse(t, "DELETE ((((FILE = f))) AND (((a = 1) OR (b = 2))))")
	if len(r.Query) != 2 {
		t.Fatalf("DNF terms = %d", len(r.Query))
	}
}

func TestParseOperators(t *testing.T) {
	ops := map[string]abdm.Op{
		"=": abdm.OpEq, "!=": abdm.OpNe, "<>": abdm.OpNe,
		"<": abdm.OpLt, "<=": abdm.OpLe, ">": abdm.OpGt, ">=": abdm.OpGe,
	}
	for spell, want := range ops {
		r := mustParse(t, "DELETE ((x "+spell+" 5))")
		if got := r.Query[0][0].Op; got != want {
			t.Errorf("op %q parsed as %v, want %v", spell, got, want)
		}
	}
}

func TestParseQuotedStringEscapes(t *testing.T) {
	r := mustParse(t, "DELETE ((name = 'O''Brien'))")
	if got := r.Query[0][0].Val.AsString(); got != "O'Brien" {
		t.Errorf("escaped string = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FROB ((x = 1))",
		"INSERT ()",
		"INSERT (<FILE course>)",
		"DELETE ((x = ))",
		"DELETE ((x 1))",
		"UPDATE ((x = 1))",
		"RETRIEVE ((x = 1))",
		"RETRIEVE ((x = 1)) (a) BY",
		"DELETE ((name = 'unterminated))",
		"DELETE ((x = 1)) trailing",
		"UPDATE ((x = 1)) (y < 2)",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseTransaction(t *testing.T) {
	tx, err := ParseTransaction(`
-- load two records
INSERT (<FILE, f>, <a, 1>)
INSERT (<FILE, f>, <a, 2>)

RETRIEVE ((FILE = f)) (all attributes)
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(tx) != 3 {
		t.Fatalf("len = %d", len(tx))
	}
	if tx[2].Kind != Retrieve {
		t.Errorf("last kind = %v", tx[2].Kind)
	}
	if _, err := ParseTransaction("\n-- nothing\n"); err == nil {
		t.Error("empty transaction should fail")
	}
}

// Property: Parse(String(r)) reproduces the request for retrievals with
// integer predicates.
func TestParsePrintRoundTrip(t *testing.T) {
	f := func(n int64, m int64) bool {
		orig := NewRetrieve(
			abdm.And(
				abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("f")},
				abdm.Predicate{Attr: "x", Op: abdm.OpGe, Val: abdm.Int(n)},
				abdm.Predicate{Attr: "y", Op: abdm.OpLt, Val: abdm.Int(m)},
			),
			"x", "y",
		)
		back, err := Parse(orig.String())
		if err != nil {
			return false
		}
		return back.String() == orig.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseInsertPrintRoundTrip(t *testing.T) {
	src := "INSERT (<FILE, 'course'>, <title, 'Advanced Database'>, <credits, 4>)"
	r := mustParse(t, src)
	if got := r.String(); got != src {
		t.Errorf("round trip:\n got %q\nwant %q", got, src)
	}
}
