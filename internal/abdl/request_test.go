package abdl

import (
	"strings"
	"testing"

	"mlds/internal/abdm"
)

func TestRequestValidate(t *testing.T) {
	ok := []*Request{
		NewInsert(abdm.NewRecord("f", abdm.Keyword{Attr: "a", Val: abdm.Int(1)})),
		NewDelete(abdm.And(abdm.Predicate{Attr: "a", Op: abdm.OpEq, Val: abdm.Int(1)})),
		NewUpdate(abdm.And(abdm.Predicate{Attr: "a", Op: abdm.OpEq, Val: abdm.Int(1)}),
			Modifier{Attr: "a", Val: abdm.Int(2)}),
		NewRetrieve(nil, AllAttrs),
	}
	for i, r := range ok {
		if err := r.Validate(); err != nil {
			t.Errorf("valid request %d rejected: %v", i, err)
		}
	}
	bad := []*Request{
		{Kind: Insert},
		{Kind: Insert, Record: &abdm.Record{Keywords: []abdm.Keyword{{Attr: "a", Val: abdm.Int(1)}}}}, // no FILE
		{Kind: Delete},
		{Kind: Update, Query: abdm.And(abdm.Predicate{Attr: "a", Op: abdm.OpEq, Val: abdm.Int(1)})}, // no mods
		{Kind: Retrieve},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("invalid request %d accepted", i)
		}
	}
}

func TestRequestString(t *testing.T) {
	r := NewRetrieve(
		abdm.And(
			abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("course")},
			abdm.Predicate{Attr: "title", Op: abdm.OpEq, Val: abdm.String("Advanced Database")},
		),
		"title", "credits",
	).WithBy("dept")
	want := "RETRIEVE ((FILE = 'course') AND (title = 'Advanced Database')) (title, credits) BY dept"
	if got := r.String(); got != want {
		t.Errorf("String() =\n%q want\n%q", got, want)
	}
}

func TestTargetItemString(t *testing.T) {
	if got := (TargetItem{Attr: AllAttrs}).String(); got != "all attributes" {
		t.Errorf("all-attrs String = %q", got)
	}
	if got := (TargetItem{Agg: AggCount, Attr: "title"}).String(); got != "COUNT(title)" {
		t.Errorf("agg String = %q", got)
	}
}

func TestTransactionString(t *testing.T) {
	tx := Transaction{
		NewDelete(abdm.And(abdm.Predicate{Attr: "a", Op: abdm.OpEq, Val: abdm.Int(1)})),
		NewRetrieve(nil, AllAttrs),
	}
	if got := tx.String(); !strings.Contains(got, "\n") {
		t.Errorf("transaction should be newline separated: %q", got)
	}
}
