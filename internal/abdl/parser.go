package abdl

import (
	"fmt"
	"strings"

	"mlds/internal/abdm"
)

// Parse parses the text of one ABDL request. The accepted grammar follows
// the thesis's request sketches:
//
//	INSERT   (<FILE, course>, <title, 'DB'>, <credits, 4>)
//	DELETE   ((FILE = course) AND (credits < 3))
//	UPDATE   ((FILE = course) AND (title = 'DB')) (credits = 4)
//	RETRIEVE ((FILE = course) OR (FILE = dept)) (title, COUNT(credits)) BY dept
//	RETRIEVE (...) (all attributes)
//
// Queries may combine predicates with AND/OR and parentheses; the parser
// normalises the boolean expression to disjunctive normal form.
func Parse(src string) (*Request, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	req, err := p.parseRequest()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("abdl: trailing input after request: %s", p.tok)
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return req, nil
}

// ParseTransaction parses newline-separated requests; blank lines and lines
// starting with "--" are ignored.
func ParseTransaction(src string) (Transaction, error) {
	var tx Transaction
	for ln, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "--") {
			continue
		}
		req, err := Parse(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		tx = append(tx, req)
	}
	if len(tx) == 0 {
		return nil, fmt.Errorf("abdl: empty transaction")
	}
	return tx, nil
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	if p.tok.kind != k {
		return token{}, fmt.Errorf("abdl: expected %s, found %s", what, p.tok)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

func (p *parser) parseRequest() (*Request, error) {
	op, err := p.expect(tokIdent, "operation name")
	if err != nil {
		return nil, err
	}
	switch strings.ToUpper(op.text) {
	case "INSERT":
		rec, err := p.parseKeywordList()
		if err != nil {
			return nil, err
		}
		return &Request{Kind: Insert, Record: rec}, nil
	case "DELETE":
		q, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		return &Request{Kind: Delete, Query: q}, nil
	case "UPDATE":
		q, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		mods, err := p.parseModifiers()
		if err != nil {
			return nil, err
		}
		return &Request{Kind: Update, Query: q, Mods: mods}, nil
	case "RETRIEVE", "RETRIEVE-COMMON":
		kind := Retrieve
		if strings.ToUpper(op.text) == "RETRIEVE-COMMON" {
			kind = RetrieveCommon
		}
		q, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		target, err := p.parseTargetList()
		if err != nil {
			return nil, err
		}
		req := &Request{Kind: kind, Query: q, Target: target}
		if kind == RetrieveCommon {
			if p.tok.kind != tokIdent || !strings.EqualFold(p.tok.text, "COMMON") {
				return nil, fmt.Errorf("abdl: RETRIEVE-COMMON requires a COMMON clause, found %s", p.tok)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			attr, err := p.expect(tokIdent, "common attribute")
			if err != nil {
				return nil, err
			}
			req.Common = attr.text
			q2, err := p.parseQuery()
			if err != nil {
				return nil, err
			}
			req.Query2 = q2
		}
		if p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, "BY") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			by, err := p.expect(tokIdent, "by-clause attribute")
			if err != nil {
				return nil, err
			}
			req.By = by.text
		}
		return req, nil
	default:
		return nil, fmt.Errorf("abdl: unknown operation %q", op.text)
	}
}

// parseKeywordList parses (<attr, value>, <attr, value>, ...).
func (p *parser) parseKeywordList() (*abdm.Record, error) {
	p.lex.angleMode = true
	defer func() { p.lex.angleMode = false }()
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	rec := &abdm.Record{}
	for {
		if _, err := p.expect(tokLAngle, "'<'"); err != nil {
			return nil, err
		}
		attr, err := p.expect(tokIdent, "attribute name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokComma, "','"); err != nil {
			return nil, err
		}
		val, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRAngle, "'>'"); err != nil {
			return nil, err
		}
		rec.Set(attr.text, val)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	return rec, nil
}

// parseValue parses a literal: number, quoted string, NULL, or a bare word
// (which ABDL treats as a string, matching the thesis's unquoted file names).
func (p *parser) parseValue() (abdm.Value, error) {
	switch p.tok.kind {
	case tokNumber:
		v := abdm.InferValue(p.tok.text)
		return v, p.advance()
	case tokString:
		v := abdm.String(p.tok.text)
		return v, p.advance()
	case tokIdent:
		if strings.EqualFold(p.tok.text, "NULL") {
			return abdm.Null(), p.advance()
		}
		v := abdm.String(p.tok.text)
		return v, p.advance()
	default:
		return abdm.Value{}, fmt.Errorf("abdl: expected a value, found %s", p.tok)
	}
}

// boolExpr is the intermediate boolean tree normalised to DNF.
type boolExpr struct {
	pred     *abdm.Predicate
	op       string // "AND" or "OR" for interior nodes
	lhs, rhs *boolExpr
}

// parseQuery parses a parenthesised boolean combination of predicates and
// returns its disjunctive normal form.
func (p *parser) parseQuery() (abdm.Query, error) {
	if _, err := p.expect(tokLParen, "'(' opening query"); err != nil {
		return nil, err
	}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen, "')' closing query"); err != nil {
		return nil, err
	}
	return toDNF(e), nil
}

func (p *parser) parseOr() (*boolExpr, error) {
	lhs, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, "OR") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		lhs = &boolExpr{op: "OR", lhs: lhs, rhs: rhs}
	}
	return lhs, nil
}

func (p *parser) parseAnd() (*boolExpr, error) {
	lhs, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, "AND") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		lhs = &boolExpr{op: "AND", lhs: lhs, rhs: rhs}
	}
	return lhs, nil
}

// parseTerm parses either a parenthesised subexpression or a bare predicate.
// A '(' could open either; we disambiguate by peeking at what follows the
// first identifier.
func (p *parser) parseTerm() (*boolExpr, error) {
	if p.tok.kind == tokLParen {
		if err := p.advance(); err != nil {
			return nil, err
		}
		// Predicate form: ident op value ')'. Subexpression otherwise.
		if p.tok.kind == tokIdent && !isBoolWord(p.tok.text) {
			save := *p.lex
			saveTok := p.tok
			attr := p.tok.text
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind == tokOp {
				pred, err := p.finishPredicate(attr)
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tokRParen, "')' closing predicate"); err != nil {
					return nil, err
				}
				return &boolExpr{pred: pred}, nil
			}
			// Not a predicate — rewind and parse as subexpression.
			*p.lex = save
			p.tok = saveTok
		}
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	}
	// Bare predicate without parentheses.
	attr, err := p.expect(tokIdent, "attribute name")
	if err != nil {
		return nil, err
	}
	pred, err := p.finishPredicate(attr.text)
	if err != nil {
		return nil, err
	}
	return &boolExpr{pred: pred}, nil
}

func isBoolWord(s string) bool {
	return strings.EqualFold(s, "AND") || strings.EqualFold(s, "OR")
}

func (p *parser) finishPredicate(attr string) (*abdm.Predicate, error) {
	opTok, err := p.expect(tokOp, "relational operator")
	if err != nil {
		return nil, err
	}
	op, err := abdm.ParseOp(opTok.text)
	if err != nil {
		return nil, err
	}
	val, err := p.parseValue()
	if err != nil {
		return nil, err
	}
	return &abdm.Predicate{Attr: attr, Op: op, Val: val}, nil
}

// toDNF normalises the boolean tree by distributing AND over OR.
func toDNF(e *boolExpr) abdm.Query {
	if e == nil {
		return nil
	}
	if e.pred != nil {
		return abdm.Query{abdm.Conjunction{*e.pred}}
	}
	l, r := toDNF(e.lhs), toDNF(e.rhs)
	if e.op == "OR" {
		return append(append(abdm.Query{}, l...), r...)
	}
	// AND: cross product of conjunctions.
	out := make(abdm.Query, 0, len(l)*len(r))
	for _, lc := range l {
		for _, rc := range r {
			conj := make(abdm.Conjunction, 0, len(lc)+len(rc))
			conj = append(conj, lc...)
			conj = append(conj, rc...)
			out = append(out, conj)
		}
	}
	return out
}

// parseModifiers parses one or more (attr = value) groups.
func (p *parser) parseModifiers() ([]Modifier, error) {
	var mods []Modifier
	for p.tok.kind == tokLParen {
		if err := p.advance(); err != nil {
			return nil, err
		}
		attr, err := p.expect(tokIdent, "modifier attribute")
		if err != nil {
			return nil, err
		}
		opTok, err := p.expect(tokOp, "'='")
		if err != nil {
			return nil, err
		}
		if opTok.text != "=" {
			return nil, fmt.Errorf("abdl: modifier must use '=', found %q", opTok.text)
		}
		val, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')' closing modifier"); err != nil {
			return nil, err
		}
		mods = append(mods, Modifier{Attr: attr.text, Val: val})
	}
	if len(mods) == 0 {
		return nil, fmt.Errorf("abdl: UPDATE requires at least one modifier")
	}
	return mods, nil
}

// parseTargetList parses (item, item, ...) where item is attr, AGG(attr),
// "all attributes", or "*".
func (p *parser) parseTargetList() ([]TargetItem, error) {
	if _, err := p.expect(tokLParen, "'(' opening target list"); err != nil {
		return nil, err
	}
	var items []TargetItem
	for {
		switch {
		case p.tok.kind == tokOp && p.tok.text == "=": // impossible; defensive
			return nil, fmt.Errorf("abdl: bad target list")
		case p.tok.kind == tokIdent:
			word := p.tok.text
			if err := p.advance(); err != nil {
				return nil, err
			}
			if strings.EqualFold(word, "all") && p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, "attributes") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				items = append(items, TargetItem{Attr: AllAttrs})
				break
			}
			if agg := parseAgg(word); agg != AggNone && p.tok.kind == tokLParen {
				if err := p.advance(); err != nil {
					return nil, err
				}
				attr, err := p.expect(tokIdent, "aggregate attribute")
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tokRParen, "')'"); err != nil {
					return nil, err
				}
				items = append(items, TargetItem{Agg: agg, Attr: attr.text})
				break
			}
			items = append(items, TargetItem{Attr: word})
		default:
			return nil, fmt.Errorf("abdl: expected target attribute, found %s", p.tok)
		}
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen, "')' closing target list"); err != nil {
		return nil, err
	}
	return items, nil
}

func parseAgg(word string) Aggregate {
	switch strings.ToUpper(word) {
	case "AVG":
		return AggAvg
	case "COUNT":
		return AggCount
	case "SUM":
		return AggSum
	case "MAX":
		return AggMax
	case "MIN":
		return AggMin
	}
	return AggNone
}
