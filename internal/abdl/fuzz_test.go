package abdl

import "testing"

// FuzzParse: the ABDL parser must never panic, and anything it accepts must
// print and reparse to the same canonical text.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"INSERT (<FILE, course>, <title, 'DB'>, <credits, 4>)",
		"DELETE ((FILE = course) AND (credits < 3))",
		"UPDATE ((a = 1)) (b = NULL)",
		"RETRIEVE ((FILE = x) OR (FILE = y)) (all attributes) BY a",
		"RETRIEVE ((a = 'it''s')) (COUNT(a), MAX(b))",
		"RETRIEVE-COMMON ((FILE = 'emp')) (name) COMMON dept ((FILE = 'proj'))",
		"INSERT (<a, -3.5e2>)",
		"DELETE (((((a = 1)))))",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		req, err := Parse(src)
		if err != nil {
			return
		}
		text := req.String()
		again, err := Parse(text)
		if err != nil {
			t.Fatalf("canonical text rejected: %q: %v", text, err)
		}
		if again.String() != text {
			t.Fatalf("canonical text unstable: %q -> %q", text, again.String())
		}
	})
}
