package abdl

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokLParen
	tokRParen
	tokLAngle
	tokRAngle
	tokComma
	tokIdent  // bare word: attribute names, keywords like AND/OR/BY/NULL
	tokString // 'quoted'
	tokNumber // integer or float literal
	tokOp     // relational operator: = != <> <= >= < >
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lexer tokenises ABDL request text. The '<' rune is context sensitive — it
// opens a keyword in an INSERT list and is an operator in a query — so the
// lexer exposes both readings and the parser picks by context via the
// angleMode flag.
type lexer struct {
	src       string
	pos       int
	angleMode bool // when true, '<' and '>' lex as brackets, not operators
}

func newLexer(src string) *lexer { return &lexer{src: src} }

func (l *lexer) errf(pos int, format string, args ...any) error {
	return fmt.Errorf("abdl: %s (at byte %d of %q)", fmt.Sprintf(format, args...), pos, clip(l.src))
}

func clip(s string) string {
	if len(s) > 60 {
		return s[:57] + "..."
	}
	return s
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentRune(r rune) bool {
	return r == '_' || r == '-' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && (l.src[l.pos] == ' ' || l.src[l.pos] == '\t' || l.src[l.pos] == '\n' || l.src[l.pos] == '\r') {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case c == ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case c == ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case c == '<' && l.angleMode:
		l.pos++
		return token{tokLAngle, "<", start}, nil
	case c == '>' && l.angleMode:
		l.pos++
		return token{tokRAngle, ">", start}, nil
	case c == '=':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
		}
		return token{tokOp, "=", start}, nil
	case c == '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{tokOp, "!=", start}, nil
		}
		return token{}, l.errf(start, "unexpected '!'")
	case c == '<':
		l.pos++
		if l.pos < len(l.src) {
			switch l.src[l.pos] {
			case '=':
				l.pos++
				return token{tokOp, "<=", start}, nil
			case '>':
				l.pos++
				return token{tokOp, "!=", start}, nil
			}
		}
		return token{tokOp, "<", start}, nil
	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{tokOp, ">=", start}, nil
		}
		return token{tokOp, ">", start}, nil
	case c == '\'':
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errf(start, "unterminated string literal")
			}
			if l.src[l.pos] == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
		return token{tokString, b.String(), start}, nil
	case c >= '0' && c <= '9' || c == '-' || c == '+':
		l.pos++
		for l.pos < len(l.src) {
			c := l.src[l.pos]
			if c >= '0' && c <= '9' || c == '.' || c == 'e' || c == 'E' ||
				((c == '-' || c == '+') && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E')) {
				l.pos++
				continue
			}
			break
		}
		return token{tokNumber, l.src[start:l.pos], start}, nil
	case isIdentStart(rune(c)):
		l.pos++
		for l.pos < len(l.src) && isIdentRune(rune(l.src[l.pos])) {
			l.pos++
		}
		return token{tokIdent, l.src[start:l.pos], start}, nil
	default:
		return token{}, l.errf(start, "unexpected character %q", c)
	}
}
