// Package abdl implements the attribute-based data language (ABDL), the
// kernel data language of the Multi-Lingual Database System.
//
// ABDL provides five operations — INSERT, DELETE, UPDATE, RETRIEVE, and
// RETRIEVE-COMMON — each qualified as the model requires: INSERT by a keyword
// list, DELETE by a query, UPDATE by a query and a modifier, RETRIEVE by a
// query, a target list and an optional by-clause. A transaction groups two or
// more sequentially executed requests.
package abdl

import (
	"fmt"
	"strings"

	"mlds/internal/abdm"
)

// Kind identifies an ABDL operation.
type Kind int

// The five ABDL operations, plus the kernel-internal MVCC administration
// operations the transaction manager broadcasts to every backend. The MVCC
// kinds have no ABDL text form: they are not expressible by any language
// interface and never appear in the kc trace or journal.
const (
	Insert Kind = iota
	Delete
	Update
	Retrieve
	RetrieveCommon

	// MvccCommit stamps every pending version written under TxnID with the
	// commit epoch MvccEpoch, making the transaction visible to snapshots
	// taken at or after that epoch.
	MvccCommit
	// MvccAbort discards every pending version written under TxnID.
	MvccAbort
	// MvccGC prunes versions superseded at or below the watermark epoch
	// MvccEpoch — versions no live snapshot can still observe.
	MvccGC
)

var kindNames = [...]string{"INSERT", "DELETE", "UPDATE", "RETRIEVE", "RETRIEVE-COMMON",
	"MVCC-COMMIT", "MVCC-ABORT", "MVCC-GC"}

// String returns the operation's ABDL spelling.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Aggregate is an optional aggregate operation applied to a target-list item.
type Aggregate int

// Aggregate operations.
const (
	AggNone Aggregate = iota
	AggAvg
	AggCount
	AggSum
	AggMax
	AggMin
)

var aggNames = [...]string{"", "AVG", "COUNT", "SUM", "MAX", "MIN"}

// String returns the aggregate's ABDL spelling ("" for none).
func (a Aggregate) String() string {
	if int(a) < len(aggNames) {
		return aggNames[a]
	}
	return fmt.Sprintf("agg(%d)", int(a))
}

// AllAttrs is the target-list sentinel requesting every attribute of each
// retrieved record ("all attributes" in the thesis's request sketches).
const AllAttrs = "*"

// TargetItem is one element of a RETRIEVE target list: an output attribute,
// optionally wrapped in an aggregate.
type TargetItem struct {
	Agg  Aggregate
	Attr string
}

// String renders the item as attr or AGG(attr).
func (t TargetItem) String() string {
	if t.Agg == AggNone {
		if t.Attr == AllAttrs {
			return "all attributes"
		}
		return t.Attr
	}
	return t.Agg.String() + "(" + t.Attr + ")"
}

// Modifier is one UPDATE assignment: the named attribute of every qualifying
// record is set to the value.
type Modifier struct {
	Attr string
	Val  abdm.Value
}

// String renders the modifier as (attr = value).
func (m Modifier) String() string {
	return "(" + m.Attr + " = " + m.Val.String() + ")"
}

// Request is one ABDL request.
type Request struct {
	Kind   Kind
	Record *abdm.Record // INSERT: the keyword list to store
	Query  abdm.Query   // DELETE, UPDATE, RETRIEVE: the qualification
	Mods   []Modifier   // UPDATE: how the target records change
	Target []TargetItem // RETRIEVE: output attributes
	By     string       // RETRIEVE: optional by-clause attribute
	Common string       // RETRIEVE-COMMON: the common attribute
	Query2 abdm.Query   // RETRIEVE-COMMON: the second qualification

	// ForceID, when nonzero, pins the database key an INSERT stores the
	// record under, replacing any existing record with that key. The kernel's
	// replication layer sets it so every copy of a record lives under one
	// key (and so replicated INSERTs are idempotent under retry). On a
	// DELETE it targets exactly that key, ignoring the qualification — the
	// transaction manager's undo path erases records this way. It is not
	// expressible in ABDL text.
	ForceID abdm.RecordID

	// TxnID, when nonzero on a mutation, marks the versions it writes as
	// pending under that transaction: invisible to snapshots until an
	// MVCC-COMMIT stamps them with a commit epoch. The transaction manager
	// sets it; zero (bulk load, journal replay, auto-stamped paths) commits
	// the version immediately at the store's current epoch. On MVCC-COMMIT
	// and MVCC-ABORT it names the transaction being stamped or discarded.
	// Not expressible in ABDL text.
	TxnID uint64

	// SnapEpoch, when nonzero on a RETRIEVE or RETRIEVE-COMMON, reads from
	// the version chains as of that commit epoch instead of the live store —
	// a lock-free snapshot read. Mutations reject it. Not expressible in
	// ABDL text.
	SnapEpoch uint64

	// NoVersion suppresses version-chain bookkeeping for a mutation. The
	// transaction manager's undo path sets it: undo restores the live store
	// to the chain's newest committed state, so recording it as a fresh
	// version would only duplicate history. Not expressible in ABDL text.
	NoVersion bool

	// MvccEpoch carries the commit epoch of an MVCC-COMMIT or the watermark
	// of an MVCC-GC. Not expressible in ABDL text.
	MvccEpoch uint64
}

// NewInsert builds an INSERT request for the record.
func NewInsert(rec *abdm.Record) *Request { return &Request{Kind: Insert, Record: rec} }

// NewDelete builds a DELETE request qualified by q.
func NewDelete(q abdm.Query) *Request { return &Request{Kind: Delete, Query: q} }

// NewUpdate builds an UPDATE request qualified by q applying mods.
func NewUpdate(q abdm.Query, mods ...Modifier) *Request {
	return &Request{Kind: Update, Query: q, Mods: mods}
}

// NewRetrieve builds a RETRIEVE request qualified by q returning the target
// attributes (AllAttrs for every attribute).
func NewRetrieve(q abdm.Query, target ...string) *Request {
	r := &Request{Kind: Retrieve, Query: q}
	for _, a := range target {
		r.Target = append(r.Target, TargetItem{Attr: a})
	}
	return r
}

// WithBy sets the by-clause attribute and returns the request.
func (r *Request) WithBy(attr string) *Request {
	r.By = attr
	return r
}

// Validate performs structural checks: the right qualifications must be
// present for the operation.
func (r *Request) Validate() error {
	if r.SnapEpoch != 0 && r.Kind != Retrieve && r.Kind != RetrieveCommon {
		return fmt.Errorf("abdl: %v cannot run against a snapshot", r.Kind)
	}
	switch r.Kind {
	case Insert:
		if r.Record == nil || len(r.Record.Keywords) == 0 {
			return fmt.Errorf("abdl: INSERT requires a keyword list")
		}
		if r.Record.File() == "" {
			return fmt.Errorf("abdl: INSERT keyword list must begin with a FILE keyword")
		}
	case Delete:
		if len(r.Query) == 0 {
			return fmt.Errorf("abdl: DELETE requires a query")
		}
	case Update:
		if len(r.Query) == 0 {
			return fmt.Errorf("abdl: UPDATE requires a query")
		}
		if len(r.Mods) == 0 {
			return fmt.Errorf("abdl: UPDATE requires a modifier")
		}
	case Retrieve:
		if len(r.Target) == 0 {
			return fmt.Errorf("abdl: RETRIEVE requires a target list")
		}
	case RetrieveCommon:
		if len(r.Target) == 0 {
			return fmt.Errorf("abdl: RETRIEVE-COMMON requires a target list")
		}
		if r.Common == "" {
			return fmt.Errorf("abdl: RETRIEVE-COMMON requires a common attribute")
		}
		if len(r.Query2) == 0 {
			return fmt.Errorf("abdl: RETRIEVE-COMMON requires a second query")
		}
	case MvccCommit:
		if r.TxnID == 0 {
			return fmt.Errorf("abdl: MVCC-COMMIT requires a transaction id")
		}
		if r.MvccEpoch == 0 {
			return fmt.Errorf("abdl: MVCC-COMMIT requires a commit epoch")
		}
	case MvccAbort:
		if r.TxnID == 0 {
			return fmt.Errorf("abdl: MVCC-ABORT requires a transaction id")
		}
	case MvccGC:
		if r.MvccEpoch == 0 {
			return fmt.Errorf("abdl: MVCC-GC requires a watermark epoch")
		}
	default:
		return fmt.Errorf("abdl: unknown request kind %d", r.Kind)
	}
	return nil
}

// String renders the request in the canonical ABDL text form accepted by
// Parse.
func (r *Request) String() string {
	var b strings.Builder
	b.WriteString(r.Kind.String())
	b.WriteByte(' ')
	switch r.Kind {
	case Insert:
		b.WriteString(r.Record.String())
	case Delete:
		b.WriteString(r.Query.String())
	case Update:
		b.WriteString(r.Query.String())
		for _, m := range r.Mods {
			b.WriteByte(' ')
			b.WriteString(m.String())
		}
	case Retrieve, RetrieveCommon:
		b.WriteString(r.Query.String())
		b.WriteString(" (")
		for i, t := range r.Target {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(t.String())
		}
		b.WriteByte(')')
		if r.Kind == RetrieveCommon {
			b.WriteString(" COMMON ")
			b.WriteString(r.Common)
			b.WriteByte(' ')
			b.WriteString(r.Query2.String())
		}
		if r.By != "" {
			b.WriteString(" BY ")
			b.WriteString(r.By)
		}
	case MvccCommit:
		fmt.Fprintf(&b, "txn=%d epoch=%d", r.TxnID, r.MvccEpoch)
	case MvccAbort:
		fmt.Fprintf(&b, "txn=%d", r.TxnID)
	case MvccGC:
		fmt.Fprintf(&b, "watermark=%d", r.MvccEpoch)
	}
	return b.String()
}

// NewRetrieveCommon builds a RETRIEVE-COMMON request: it returns the target
// projections of records matching q1 whose value for the common attribute
// also occurs under that attribute in some record matching q2.
func NewRetrieveCommon(q1 abdm.Query, common string, q2 abdm.Query, target ...string) *Request {
	r := &Request{Kind: RetrieveCommon, Query: q1, Common: common, Query2: q2}
	for _, a := range target {
		r.Target = append(r.Target, TargetItem{Attr: a})
	}
	return r
}

// Transaction is a group of sequentially executed requests.
type Transaction []*Request

// String renders the transaction one request per line.
func (t Transaction) String() string {
	parts := make([]string, len(t))
	for i, r := range t {
		parts[i] = r.String()
	}
	return strings.Join(parts, "\n")
}
