// Package abdl implements the attribute-based data language (ABDL), the
// kernel data language of the Multi-Lingual Database System.
//
// ABDL provides five operations — INSERT, DELETE, UPDATE, RETRIEVE, and
// RETRIEVE-COMMON — each qualified as the model requires: INSERT by a keyword
// list, DELETE by a query, UPDATE by a query and a modifier, RETRIEVE by a
// query, a target list and an optional by-clause. A transaction groups two or
// more sequentially executed requests.
package abdl

import (
	"fmt"
	"strings"

	"mlds/internal/abdm"
)

// Kind identifies an ABDL operation.
type Kind int

// The five ABDL operations.
const (
	Insert Kind = iota
	Delete
	Update
	Retrieve
	RetrieveCommon
)

var kindNames = [...]string{"INSERT", "DELETE", "UPDATE", "RETRIEVE", "RETRIEVE-COMMON"}

// String returns the operation's ABDL spelling.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Aggregate is an optional aggregate operation applied to a target-list item.
type Aggregate int

// Aggregate operations.
const (
	AggNone Aggregate = iota
	AggAvg
	AggCount
	AggSum
	AggMax
	AggMin
)

var aggNames = [...]string{"", "AVG", "COUNT", "SUM", "MAX", "MIN"}

// String returns the aggregate's ABDL spelling ("" for none).
func (a Aggregate) String() string {
	if int(a) < len(aggNames) {
		return aggNames[a]
	}
	return fmt.Sprintf("agg(%d)", int(a))
}

// AllAttrs is the target-list sentinel requesting every attribute of each
// retrieved record ("all attributes" in the thesis's request sketches).
const AllAttrs = "*"

// TargetItem is one element of a RETRIEVE target list: an output attribute,
// optionally wrapped in an aggregate.
type TargetItem struct {
	Agg  Aggregate
	Attr string
}

// String renders the item as attr or AGG(attr).
func (t TargetItem) String() string {
	if t.Agg == AggNone {
		if t.Attr == AllAttrs {
			return "all attributes"
		}
		return t.Attr
	}
	return t.Agg.String() + "(" + t.Attr + ")"
}

// Modifier is one UPDATE assignment: the named attribute of every qualifying
// record is set to the value.
type Modifier struct {
	Attr string
	Val  abdm.Value
}

// String renders the modifier as (attr = value).
func (m Modifier) String() string {
	return "(" + m.Attr + " = " + m.Val.String() + ")"
}

// Request is one ABDL request.
type Request struct {
	Kind   Kind
	Record *abdm.Record // INSERT: the keyword list to store
	Query  abdm.Query   // DELETE, UPDATE, RETRIEVE: the qualification
	Mods   []Modifier   // UPDATE: how the target records change
	Target []TargetItem // RETRIEVE: output attributes
	By     string       // RETRIEVE: optional by-clause attribute
	Common string       // RETRIEVE-COMMON: the common attribute
	Query2 abdm.Query   // RETRIEVE-COMMON: the second qualification

	// ForceID, when nonzero, pins the database key an INSERT stores the
	// record under, replacing any existing record with that key. The kernel's
	// replication layer sets it so every copy of a record lives under one
	// key (and so replicated INSERTs are idempotent under retry). On a
	// DELETE it targets exactly that key, ignoring the qualification — the
	// transaction manager's undo path erases records this way. It is not
	// expressible in ABDL text.
	ForceID abdm.RecordID
}

// NewInsert builds an INSERT request for the record.
func NewInsert(rec *abdm.Record) *Request { return &Request{Kind: Insert, Record: rec} }

// NewDelete builds a DELETE request qualified by q.
func NewDelete(q abdm.Query) *Request { return &Request{Kind: Delete, Query: q} }

// NewUpdate builds an UPDATE request qualified by q applying mods.
func NewUpdate(q abdm.Query, mods ...Modifier) *Request {
	return &Request{Kind: Update, Query: q, Mods: mods}
}

// NewRetrieve builds a RETRIEVE request qualified by q returning the target
// attributes (AllAttrs for every attribute).
func NewRetrieve(q abdm.Query, target ...string) *Request {
	r := &Request{Kind: Retrieve, Query: q}
	for _, a := range target {
		r.Target = append(r.Target, TargetItem{Attr: a})
	}
	return r
}

// WithBy sets the by-clause attribute and returns the request.
func (r *Request) WithBy(attr string) *Request {
	r.By = attr
	return r
}

// Validate performs structural checks: the right qualifications must be
// present for the operation.
func (r *Request) Validate() error {
	switch r.Kind {
	case Insert:
		if r.Record == nil || len(r.Record.Keywords) == 0 {
			return fmt.Errorf("abdl: INSERT requires a keyword list")
		}
		if r.Record.File() == "" {
			return fmt.Errorf("abdl: INSERT keyword list must begin with a FILE keyword")
		}
	case Delete:
		if len(r.Query) == 0 {
			return fmt.Errorf("abdl: DELETE requires a query")
		}
	case Update:
		if len(r.Query) == 0 {
			return fmt.Errorf("abdl: UPDATE requires a query")
		}
		if len(r.Mods) == 0 {
			return fmt.Errorf("abdl: UPDATE requires a modifier")
		}
	case Retrieve:
		if len(r.Target) == 0 {
			return fmt.Errorf("abdl: RETRIEVE requires a target list")
		}
	case RetrieveCommon:
		if len(r.Target) == 0 {
			return fmt.Errorf("abdl: RETRIEVE-COMMON requires a target list")
		}
		if r.Common == "" {
			return fmt.Errorf("abdl: RETRIEVE-COMMON requires a common attribute")
		}
		if len(r.Query2) == 0 {
			return fmt.Errorf("abdl: RETRIEVE-COMMON requires a second query")
		}
	default:
		return fmt.Errorf("abdl: unknown request kind %d", r.Kind)
	}
	return nil
}

// String renders the request in the canonical ABDL text form accepted by
// Parse.
func (r *Request) String() string {
	var b strings.Builder
	b.WriteString(r.Kind.String())
	b.WriteByte(' ')
	switch r.Kind {
	case Insert:
		b.WriteString(r.Record.String())
	case Delete:
		b.WriteString(r.Query.String())
	case Update:
		b.WriteString(r.Query.String())
		for _, m := range r.Mods {
			b.WriteByte(' ')
			b.WriteString(m.String())
		}
	case Retrieve, RetrieveCommon:
		b.WriteString(r.Query.String())
		b.WriteString(" (")
		for i, t := range r.Target {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(t.String())
		}
		b.WriteByte(')')
		if r.Kind == RetrieveCommon {
			b.WriteString(" COMMON ")
			b.WriteString(r.Common)
			b.WriteByte(' ')
			b.WriteString(r.Query2.String())
		}
		if r.By != "" {
			b.WriteString(" BY ")
			b.WriteString(r.By)
		}
	}
	return b.String()
}

// NewRetrieveCommon builds a RETRIEVE-COMMON request: it returns the target
// projections of records matching q1 whose value for the common attribute
// also occurs under that attribute in some record matching q2.
func NewRetrieveCommon(q1 abdm.Query, common string, q2 abdm.Query, target ...string) *Request {
	r := &Request{Kind: RetrieveCommon, Query: q1, Common: common, Query2: q2}
	for _, a := range target {
		r.Target = append(r.Target, TargetItem{Attr: a})
	}
	return r
}

// Transaction is a group of sequentially executed requests.
type Transaction []*Request

// String renders the transaction one request per line.
func (t Transaction) String() string {
	parts := make([]string, len(t))
	for i, r := range t {
		parts[i] = r.String()
	}
	return strings.Join(parts, "\n")
}
