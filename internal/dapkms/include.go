package dapkms

import (
	"fmt"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/currency"
	"mlds/internal/daplex"
	"mlds/internal/funcmodel"
	"mlds/internal/xform"
)

// Include adds members to a multi-valued function over the matching
// entities: entity targets for entity-valued functions (one-to-many or
// many-to-many), a scalar literal for scalar multi-valued functions.
func (i *Interface) Include(st *daplex.Include) error {
	owners, fn, aset, err := i.resolveMV(st.Type, st.Func, st.Where)
	if err != nil {
		return err
	}
	if fn.Result.IsEntity() == st.HasScalar {
		return fmt.Errorf("dapkms: INCLUDE target does not match function %q's range", st.Func)
	}
	var targets []currency.Key
	var scalar abdm.Value
	if st.HasScalar {
		want, _ := i.ab.Dir.AttrKind(st.Func)
		scalar, err = coerce(st.ScalarVal, want)
		if err != nil {
			return fmt.Errorf("dapkms: %q: %w", st.Func, err)
		}
	} else {
		if st.TargetType != fn.Result.Entity {
			// Subtypes of the range are also acceptable targets.
			okSub := false
			for _, anc := range i.fun.AncestorChain(st.TargetType) {
				if anc == fn.Result.Entity {
					okSub = true
				}
			}
			if !okSub {
				return fmt.Errorf("dapkms: function %q ranges over %q, not %q", st.Func, fn.Result.Entity, st.TargetType)
			}
		}
		targets, err = i.resolveWhere(st.TargetType, st.TargetWhere)
		if err != nil {
			return err
		}
		if len(targets) == 0 {
			return fmt.Errorf("dapkms: INCLUDE matched no target entities")
		}
	}

	for _, owner := range owners {
		switch aset.Place {
		case xform.PlaceOwnerAttr:
			vals := targetValues(targets, scalar, st.HasScalar)
			for _, v := range vals {
				if err := i.includeOwnerSide(aset, owner, v); err != nil {
					return err
				}
			}
		case xform.PlaceLinkAttr:
			si, _ := i.mapping.SetFor(st.Func)
			for _, tgt := range targets {
				link := abdm.NewRecord(si.LinkRecord)
				link.Set(i.ab.KeyOf(si.LinkRecord), abdm.Int(i.kc.NextKey()))
				link.Set(st.Func, abdm.Int(owner))
				link.Set(si.PairSet, abdm.Int(tgt))
				if _, err := i.kcExec(abdl.NewInsert(link)); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("dapkms: function %q is not multi-valued over its owner", st.Func)
		}
	}
	return nil
}

// Exclude removes members from a multi-valued function.
func (i *Interface) Exclude(st *daplex.Exclude) error {
	owners, fn, aset, err := i.resolveMV(st.Type, st.Func, st.Where)
	if err != nil {
		return err
	}
	if fn.Result.IsEntity() == st.HasScalar {
		return fmt.Errorf("dapkms: EXCLUDE target does not match function %q's range", st.Func)
	}
	var targets []currency.Key
	var scalar abdm.Value
	if st.HasScalar {
		want, _ := i.ab.Dir.AttrKind(st.Func)
		scalar, err = coerce(st.ScalarVal, want)
		if err != nil {
			return fmt.Errorf("dapkms: %q: %w", st.Func, err)
		}
	} else {
		targets, err = i.resolveWhere(st.TargetType, st.TargetWhere)
		if err != nil {
			return err
		}
	}
	for _, owner := range owners {
		switch aset.Place {
		case xform.PlaceOwnerAttr:
			for _, v := range targetValues(targets, scalar, st.HasScalar) {
				if err := i.excludeOwnerSide(aset, owner, v); err != nil {
					return err
				}
			}
		case xform.PlaceLinkAttr:
			si, _ := i.mapping.SetFor(st.Func)
			for _, tgt := range targets {
				q := abdm.And(
					filePredOf(si.LinkRecord),
					abdm.Predicate{Attr: st.Func, Op: abdm.OpEq, Val: abdm.Int(owner)},
					abdm.Predicate{Attr: si.PairSet, Op: abdm.OpEq, Val: abdm.Int(tgt)},
				)
				if _, err := i.kcExec(abdl.NewDelete(q)); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("dapkms: function %q is not multi-valued over its owner", st.Func)
		}
	}
	return nil
}

// resolveMV resolves a multi-valued function, its kernel placement, and the
// owner keys selected by the WHERE clause.
func (i *Interface) resolveMV(typeName, fnName string, where []daplex.Cond) ([]currency.Key, *funcmodel.Function, xform.ABSet, error) {
	home, fn, err := i.homeOf(typeName, fnName)
	if err != nil {
		return nil, nil, xform.ABSet{}, err
	}
	_ = home
	if !fn.SetValued {
		return nil, nil, xform.ABSet{}, fmt.Errorf("dapkms: function %q is single-valued; use LET", fnName)
	}
	aset, ok := i.ab.Sets[fnName]
	if !ok && fn.Result.IsEntity() {
		return nil, nil, xform.ABSet{}, fmt.Errorf("dapkms: function %q has no kernel set", fnName)
	}
	if !fn.Result.IsEntity() {
		// Scalar multi-valued: the attribute lives in the home file, owner
		// side, without a set entry.
		aset = xform.ABSet{Place: xform.PlaceOwnerAttr, File: home, Attr: fnName}
	}
	owners, err := i.resolveWhere(typeName, where)
	if err != nil {
		return nil, nil, xform.ABSet{}, err
	}
	if len(owners) == 0 {
		return nil, nil, xform.ABSet{}, fmt.Errorf("dapkms: no %q entities match the WHERE clause", typeName)
	}
	return owners, fn, aset, nil
}

// includeOwnerSide fills a NULL occurrence of the attribute or inserts a
// record copy — the Chapter VI.D.2.a cases, shared with the CODASYL CONNECT
// translation's semantics.
func (i *Interface) includeOwnerSide(aset xform.ABSet, owner currency.Key, val abdm.Value) error {
	copies, err := i.copiesOf(aset.File, owner)
	if err != nil {
		return err
	}
	if len(copies) == 0 {
		return fmt.Errorf("dapkms: owner %d has no %s record", owner, aset.File)
	}
	hasNull := false
	for _, r := range copies {
		v, ok := r.Get(aset.Attr)
		if ok && v.Equal(val) {
			return nil // already included
		}
		if !ok || v.IsNull() {
			hasNull = true
		}
	}
	keyAttr := i.ab.KeyOf(aset.File)
	if hasNull {
		req := abdl.NewUpdate(
			abdm.And(
				filePredOf(aset.File),
				abdm.Predicate{Attr: keyAttr, Op: abdm.OpEq, Val: abdm.Int(owner)},
				abdm.Predicate{Attr: aset.Attr, Op: abdm.OpEq, Val: abdm.Null()},
			),
			abdl.Modifier{Attr: aset.Attr, Val: val},
		)
		_, err := i.kcExec(req)
		return err
	}
	cp := copies[0].Clone()
	cp.Set(aset.Attr, val)
	_, err = i.kcExec(abdl.NewInsert(cp))
	return err
}

// excludeOwnerSide nulls a singleton occurrence or deletes matching copies.
func (i *Interface) excludeOwnerSide(aset xform.ABSet, owner currency.Key, val abdm.Value) error {
	copies, err := i.copiesOf(aset.File, owner)
	if err != nil {
		return err
	}
	matching, others := 0, 0
	for _, r := range copies {
		if v, ok := r.Get(aset.Attr); ok && v.Equal(val) {
			matching++
		} else {
			others++
		}
	}
	if matching == 0 {
		return fmt.Errorf("dapkms: value %s not in %s of owner %d", val, aset.Attr, owner)
	}
	keyAttr := i.ab.KeyOf(aset.File)
	qual := abdm.And(
		filePredOf(aset.File),
		abdm.Predicate{Attr: keyAttr, Op: abdm.OpEq, Val: abdm.Int(owner)},
		abdm.Predicate{Attr: aset.Attr, Op: abdm.OpEq, Val: val},
	)
	if others > 0 {
		_, err := i.kcExec(abdl.NewDelete(qual))
		return err
	}
	_, err = i.kcExec(abdl.NewUpdate(qual, abdl.Modifier{Attr: aset.Attr, Val: abdm.Null()}))
	return err
}

// copiesOf fetches every kernel record copy of the entity in the file.
func (i *Interface) copiesOf(file string, key currency.Key) ([]*abdm.Record, error) {
	res, err := i.kcExec(abdl.NewRetrieve(abdm.And(
		filePredOf(file),
		abdm.Predicate{Attr: i.ab.KeyOf(file), Op: abdm.OpEq, Val: abdm.Int(key)},
	), abdl.AllAttrs))
	if err != nil {
		return nil, err
	}
	out := make([]*abdm.Record, len(res.Records))
	for n, sr := range res.Records {
		out[n] = sr.Rec
	}
	return out, nil
}

// targetValues folds the entity keys or the scalar literal into values.
func targetValues(targets []currency.Key, scalar abdm.Value, hasScalar bool) []abdm.Value {
	if hasScalar {
		return []abdm.Value{scalar}
	}
	out := make([]abdm.Value, len(targets))
	for n, k := range targets {
		out[n] = abdm.Int(k)
	}
	return out
}
