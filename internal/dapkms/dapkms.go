// Package dapkms implements the kernel mapping system of the Daplex language
// interface: it executes Daplex DML statements against the AB(functional)
// kernel database. Together with the CODASYL-DML translator it demonstrates
// the MLDS goal — the same functional database served to two data models —
// and supplies the reference results the cross-model equivalence experiment
// compares against.
package dapkms

import (
	"context"

	"fmt"
	"sort"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/currency"
	"mlds/internal/daplex"
	"mlds/internal/funcmodel"
	"mlds/internal/kc"
	"mlds/internal/xform"
)

// Interface is one user's Daplex session against a functional database.
type Interface struct {
	fun     *funcmodel.Schema
	mapping *xform.Mapping
	ab      *xform.ABSchema
	kc      *kc.Controller
	reqCtx  context.Context // set by ExecCtx for the statement's duration
}

// New builds a Daplex interface over a transformed functional database.
func New(m *xform.Mapping, ab *xform.ABSchema, ctrl *kc.Controller) *Interface {
	return &Interface{fun: m.Fun, mapping: m, ab: ab, kc: ctrl}
}

// Row is one entity in a FOR EACH result: its key plus the printed function
// values (multi-valued functions yield every value).
type Row struct {
	Key    currency.Key
	Values map[string][]abdm.Value
}

// Exec runs one DML statement. ForEach returns rows; the other statements
// return nil rows.
func (i *Interface) Exec(st daplex.DMLStmt) ([]Row, error) {
	switch v := st.(type) {
	case *daplex.ForEach:
		return i.ForEach(v)
	case *daplex.Create:
		return nil, i.Create(v)
	case *daplex.Let:
		return nil, i.Let(v)
	case *daplex.Destroy:
		return nil, i.Destroy(v)
	case *daplex.Include:
		return nil, i.Include(v)
	case *daplex.Exclude:
		return nil, i.Exclude(v)
	default:
		return nil, fmt.Errorf("dapkms: unsupported statement %T", st)
	}
}

// ExecText parses and runs one DML statement.
func (i *Interface) ExecText(src string) ([]Row, error) {
	st, err := daplex.ParseDML(src)
	if err != nil {
		return nil, err
	}
	return i.Exec(st)
}

// homeOf resolves a function visible on typeName to its declaring type,
// which is the kernel file carrying the function's attribute.
func (i *Interface) homeOf(typeName, fn string) (string, *funcmodel.Function, error) {
	if !i.fun.IsType(typeName) {
		return "", nil, fmt.Errorf("dapkms: unknown type %q", typeName)
	}
	home, f, ok := i.fun.FunctionHome(fn)
	if !ok {
		return "", nil, fmt.Errorf("dapkms: unknown function %q", fn)
	}
	if home != typeName {
		found := false
		for _, anc := range i.fun.AncestorChain(typeName) {
			if anc == home {
				found = true
				break
			}
		}
		if !found {
			return "", nil, fmt.Errorf("dapkms: function %q (of %q) is not applicable to %q", fn, home, typeName)
		}
	}
	return home, f, nil
}

// filePredOf builds the FILE predicate for a type's kernel file.
func filePredOf(typeName string) abdm.Predicate {
	return abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String(typeName)}
}

// keysMatching returns the distinct entity keys in file whose records
// satisfy the conjunction, sorted.
func (i *Interface) keysMatching(file string, conds abdm.Conjunction) (map[currency.Key]bool, error) {
	q := abdm.Conjunction{filePredOf(file)}
	q = append(q, conds...)
	res, err := i.kcExec(abdl.NewRetrieve(abdm.Query{q}, i.ab.KeyOf(file)))
	if err != nil {
		return nil, err
	}
	keys := make(map[currency.Key]bool)
	for _, sr := range res.Records {
		if v, ok := sr.Rec.Get(i.ab.KeyOf(file)); ok && v.Kind() == abdm.KindInt {
			keys[v.AsInt()] = true
		}
	}
	return keys, nil
}

// resolveWhere evaluates a WHERE clause over the type: each condition runs
// against its function's home file, and the per-condition key sets are
// intersected with the type's own key set (a key-equijoin across the
// entity's hierarchy files).
func (i *Interface) resolveWhere(typeName string, where []daplex.Cond) ([]currency.Key, error) {
	result, err := i.keysMatching(typeName, nil)
	if err != nil {
		return nil, err
	}
	for _, c := range where {
		home, f, err := i.homeOf(typeName, c.Func)
		if err != nil {
			return nil, err
		}
		val := c.Val
		if f.Result.IsEntity() && !val.IsNull() && val.Kind() != abdm.KindInt {
			return nil, fmt.Errorf("dapkms: function %q is entity-valued; compare with a key", c.Func)
		}
		ks, err := i.keysMatching(home, abdm.Conjunction{{Attr: c.Func, Op: c.Op, Val: val}})
		if err != nil {
			return nil, err
		}
		for k := range result {
			if !ks[k] {
				delete(result, k)
			}
		}
	}
	out := make([]currency.Key, 0, len(result))
	for k := range result {
		out = append(out, k)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out, nil
}

// ForEach evaluates the retrieval statement and returns one row per
// qualifying entity, keys ascending.
func (i *Interface) ForEach(st *daplex.ForEach) ([]Row, error) {
	keys, err := i.resolveWhere(st.Type, st.Where)
	if err != nil {
		return nil, err
	}
	// Group the printed functions by home file to batch the retrievals.
	homes := make(map[string][]string)
	for _, fn := range st.Print {
		home, _, err := i.homeOf(st.Type, fn)
		if err != nil {
			return nil, err
		}
		homes[home] = append(homes[home], fn)
	}
	rows := make([]Row, len(keys))
	index := make(map[currency.Key]int, len(keys))
	for n, k := range keys {
		rows[n] = Row{Key: k, Values: make(map[string][]abdm.Value)}
		index[k] = n
	}
	if len(keys) == 0 {
		return rows, nil
	}
	for home, fns := range homes {
		q := make(abdm.Query, 0, len(keys))
		for _, k := range keys {
			q = append(q, abdm.Conjunction{
				filePredOf(home),
				{Attr: i.ab.KeyOf(home), Op: abdm.OpEq, Val: abdm.Int(k)},
			})
		}
		res, err := i.kcExec(abdl.NewRetrieve(q, append([]string{i.ab.KeyOf(home)}, fns...)...))
		if err != nil {
			return nil, err
		}
		for _, sr := range res.Records {
			kv, ok := sr.Rec.Get(i.ab.KeyOf(home))
			if !ok {
				continue
			}
			n, ok := index[kv.AsInt()]
			if !ok {
				continue
			}
			for _, fn := range fns {
				v, ok := sr.Rec.Get(fn)
				if !ok || v.IsNull() {
					continue
				}
				if !containsValue(rows[n].Values[fn], v) {
					rows[n].Values[fn] = append(rows[n].Values[fn], v)
				}
			}
		}
	}
	return rows, nil
}

func containsValue(vs []abdm.Value, v abdm.Value) bool {
	for _, x := range vs {
		if x.Equal(v) || (x.IsNull() && v.IsNull()) {
			return true
		}
	}
	return false
}

// Create makes a new entity of the type: one kernel record per file in its
// hierarchy, sharing a fresh key, with the assigned function values placed
// in their home files. Uniqueness constraints are enforced the same way the
// CODASYL STORE translation enforces them.
func (i *Interface) Create(st *daplex.Create) error {
	if !i.fun.IsType(st.Type) {
		return fmt.Errorf("dapkms: unknown type %q", st.Type)
	}
	assigns := make(map[string]map[string]abdm.Value) // home file → fn → value
	for _, a := range st.Assigns {
		home, f, err := i.homeOf(st.Type, a.Func)
		if err != nil {
			return err
		}
		if f.SetValued {
			return fmt.Errorf("dapkms: CREATE cannot assign multi-valued function %q", a.Func)
		}
		want, _ := i.ab.Dir.AttrKind(a.Func)
		val, err := coerce(a.Val, want)
		if err != nil {
			return fmt.Errorf("dapkms: %q: %w", a.Func, err)
		}
		if assigns[home] == nil {
			assigns[home] = make(map[string]abdm.Value)
		}
		assigns[home][a.Func] = val
	}
	// Uniqueness: any constraint whose functions are all assigned.
	for _, u := range i.fun.Uniques {
		applies := u.Within == st.Type
		for _, anc := range i.fun.AncestorChain(st.Type) {
			if anc == u.Within {
				applies = true
			}
		}
		if !applies {
			continue
		}
		conj := abdm.Conjunction{}
		complete := true
		var homeFile string
		for _, fn := range u.Functions {
			home, _, err := i.homeOf(st.Type, fn)
			if err != nil {
				return err
			}
			homeFile = home
			v, ok := assigns[home][fn]
			if !ok || v.IsNull() {
				complete = false
				break
			}
			conj = append(conj, abdm.Predicate{Attr: fn, Op: abdm.OpEq, Val: v})
		}
		if !complete {
			continue
		}
		ks, err := i.keysMatching(homeFile, conj)
		if err != nil {
			return err
		}
		if len(ks) > 0 {
			return fmt.Errorf("dapkms: uniqueness constraint on %v within %q violated", u.Functions, u.Within)
		}
	}
	key := i.kc.NextKey()
	files := append([]string{st.Type}, i.fun.AncestorChain(st.Type)...)
	for _, file := range files {
		rec := abdm.NewRecord(file)
		rec.Set(i.ab.KeyOf(file), abdm.Int(key))
		tmpl, _ := i.ab.Dir.FileTemplate(file)
		for _, attr := range tmpl {
			if rec.Has(attr) {
				continue
			}
			if v, ok := assigns[file][attr]; ok {
				rec.Set(attr, v)
			} else {
				rec.Set(attr, abdm.Null())
			}
		}
		if _, err := i.kcExec(abdl.NewInsert(rec)); err != nil {
			return err
		}
	}
	return nil
}

func coerce(v abdm.Value, want abdm.Kind) (abdm.Value, error) {
	if v.IsNull() || v.Kind() == want {
		return v, nil
	}
	if v.Kind() == abdm.KindInt && want == abdm.KindFloat {
		return abdm.Float(float64(v.AsInt())), nil
	}
	return abdm.Value{}, fmt.Errorf("value %v is %v, function wants %v", v, v.Kind(), want)
}

// Let updates a single-valued function over the matching entities.
func (i *Interface) Let(st *daplex.Let) error {
	home, f, err := i.homeOf(st.Type, st.Func)
	if err != nil {
		return err
	}
	if f.SetValued {
		return fmt.Errorf("dapkms: LET cannot assign multi-valued function %q", st.Func)
	}
	want, _ := i.ab.Dir.AttrKind(st.Func)
	val, err := coerce(st.Val, want)
	if err != nil {
		return fmt.Errorf("dapkms: %q: %w", st.Func, err)
	}
	keys, err := i.resolveWhere(st.Type, st.Where)
	if err != nil {
		return err
	}
	for _, k := range keys {
		req := abdl.NewUpdate(
			abdm.And(filePredOf(home), abdm.Predicate{Attr: i.ab.KeyOf(home), Op: abdm.OpEq, Val: abdm.Int(k)}),
			abdl.Modifier{Attr: st.Func, Val: val},
		)
		if _, err := i.kcExec(req); err != nil {
			return err
		}
	}
	return nil
}

// Destroy removes the matching entities and their subtype hierarchy (the
// Daplex DESTROY semantics), aborting if any entity is referenced by a
// database function.
func (i *Interface) Destroy(st *daplex.Destroy) error {
	keys, err := i.resolveWhere(st.Type, st.Where)
	if err != nil {
		return err
	}
	// The downward closure: the type plus its transitive subtypes.
	files := []string{st.Type}
	for n := 0; n < len(files); n++ {
		files = append(files, i.fun.SubtypesOf(files[n])...)
	}
	for _, k := range keys {
		if err := i.checkUnreferenced(files, k); err != nil {
			return err
		}
	}
	for _, k := range keys {
		for _, file := range files {
			req := abdl.NewDelete(abdm.And(
				filePredOf(file),
				abdm.Predicate{Attr: i.ab.KeyOf(file), Op: abdm.OpEq, Val: abdm.Int(k)},
			))
			if _, err := i.kcExec(req); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkUnreferenced verifies no database function references the entity in
// any of the files being destroyed.
func (i *Interface) checkUnreferenced(files []string, key currency.Key) error {
	inFiles := func(name string) bool {
		for _, f := range files {
			if f == name {
				return true
			}
		}
		return false
	}
	for _, stp := range i.mapping.Net.Sets {
		aset := i.ab.Sets[stp.Name]
		var refFile string
		switch aset.Place {
		case xform.PlaceMemberAttr, xform.PlaceLinkAttr:
			// The attribute holds the OWNER's key: references to an owner
			// being destroyed.
			if !inFiles(stp.Owner) {
				continue
			}
			refFile = aset.File
		case xform.PlaceOwnerAttr:
			// The attribute holds the MEMBER's key.
			if !inFiles(stp.Member) {
				continue
			}
			refFile = aset.File
		default:
			continue
		}
		if inFiles(refFile) {
			continue // the referencing records are being destroyed too
		}
		res, err := i.kcExec(abdl.NewRetrieve(
			abdm.And(filePredOf(refFile),
				abdm.Predicate{Attr: aset.Attr, Op: abdm.OpEq, Val: abdm.Int(key)}),
			i.ab.KeyOf(refFile),
		))
		if err != nil {
			return err
		}
		if len(res.Records) > 0 {
			return fmt.Errorf("dapkms: DESTROY aborted: entity %d is referenced by function %q", key, stp.Name)
		}
	}
	return nil
}
