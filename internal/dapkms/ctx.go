package dapkms

import (
	"context"

	"mlds/internal/abdl"
	"mlds/internal/daplex"
	"mlds/internal/kdb"
)

// ExecCtx executes one Daplex statement under the request context, so the
// controller and kernel attach their trace spans beneath the caller's. An
// Interface serves one session at a time, so storing the context for the
// statement's duration is safe.
func (i *Interface) ExecCtx(ctx context.Context, st daplex.DMLStmt) ([]Row, error) {
	i.reqCtx = ctx
	defer func() { i.reqCtx = nil }()
	return i.Exec(st)
}

// ExecTextCtx is ExecText under a request context.
func (i *Interface) ExecTextCtx(ctx context.Context, src string) ([]Row, error) {
	i.reqCtx = ctx
	defer func() { i.reqCtx = nil }()
	return i.ExecText(src)
}

// kcExec routes every kernel request through the session's current context.
func (i *Interface) kcExec(req *abdl.Request) (*kdb.Result, error) {
	ctx := i.reqCtx
	if ctx == nil {
		ctx = context.Background()
	}
	return i.kc.ExecCtx(ctx, req)
}
