package dapkms

import (
	"fmt"
	"strings"
	"testing"

	"mlds/internal/abdl"
	"mlds/internal/univgen"
)

type abdlRequest = abdl.Request

var abdlParse = abdl.Parse

func itoa(k int64) string { return fmt.Sprint(k) }

func enrollCount(t *testing.T, i *Interface, pname string) int {
	t.Helper()
	rows := run(t, i, "FOR EACH student WHERE pname = '"+pname+"' PRINT enrollments;")
	if len(rows) != 1 {
		t.Fatalf("student %q rows = %d", pname, len(rows))
	}
	return len(rows[0].Values["enrollments"])
}

func TestIncludeOneToMany(t *testing.T) {
	i := newInterface(t)
	before := enrollCount(t, i, "Student 0000")
	run(t, i, "INCLUDE course WHERE title = 'Course 005' IN enrollments OF student WHERE pname = 'Student 0000';")
	after := enrollCount(t, i, "Student 0000")
	if after != before+1 {
		t.Errorf("enrollments %d -> %d, want +1", before, after)
	}
	// Idempotent: including the same course again changes nothing.
	run(t, i, "INCLUDE course WHERE title = 'Course 005' IN enrollments OF student WHERE pname = 'Student 0000';")
	if enrollCount(t, i, "Student 0000") != after {
		t.Error("repeat INCLUDE duplicated the membership")
	}
}

func TestExcludeOneToMany(t *testing.T) {
	i := newInterface(t)
	before := enrollCount(t, i, "Student 0001")
	// Find one of the student's enrolled courses and exclude it.
	rows := run(t, i, "FOR EACH student WHERE pname = 'Student 0001' PRINT enrollments;")
	courseKey := rows[0].Values["enrollments"][0].AsInt()
	crows := run(t, i, "FOR EACH course PRINT title;")
	var title string
	for _, r := range crows {
		if r.Key == courseKey {
			title = r.Values["title"][0].AsString()
		}
	}
	if title == "" {
		t.Fatal("enrolled course not found")
	}
	run(t, i, "EXCLUDE course WHERE title = '"+title+"' FROM enrollments OF student WHERE pname = 'Student 0001';")
	if got := enrollCount(t, i, "Student 0001"); got != before-1 {
		t.Errorf("enrollments %d -> %d, want -1", before, got)
	}
}

func TestIncludeScalarMultiValued(t *testing.T) {
	i := newInterface(t)
	run(t, i, "INCLUDE 'welding' IN skills OF support_staff WHERE pname = 'Staff 000';")
	rows := run(t, i, "FOR EACH support_staff WHERE pname = 'Staff 000' PRINT skills;")
	found := false
	for _, v := range rows[0].Values["skills"] {
		if v.AsString() == "welding" {
			found = true
		}
	}
	if !found {
		t.Errorf("skills = %v", rows[0].Values["skills"])
	}
	run(t, i, "EXCLUDE 'welding' FROM skills OF support_staff WHERE pname = 'Staff 000';")
	rows = run(t, i, "FOR EACH support_staff WHERE pname = 'Staff 000' PRINT skills;")
	for _, v := range rows[0].Values["skills"] {
		if v.AsString() == "welding" {
			t.Error("welding survived EXCLUDE")
		}
	}
}

func TestIncludeManyToMany(t *testing.T) {
	i := newInterface(t)
	// Faculty 000 teaches TeachPerFaculty courses via LINK_1.
	countLinks := func() int {
		rows := run(t, i, "FOR EACH faculty WHERE pname = 'Faculty 000' PRINT pname;")
		if len(rows) != 1 {
			t.Fatal("faculty missing")
		}
		// Count link records whose teaching attr equals this faculty's key.
		res, err := i.kc.Exec(mustParse(t, "RETRIEVE ((FILE = LINK_1) AND (teaching = "+itoa(rows[0].Key)+")) (LINK_1)"))
		if err != nil {
			t.Fatal(err)
		}
		return len(res.Records)
	}
	before := countLinks()
	run(t, i, "INCLUDE course WHERE title = 'Course 009' IN teaching OF faculty WHERE pname = 'Faculty 000';")
	if got := countLinks(); got != before+1 {
		t.Errorf("teaching links %d -> %d", before, got)
	}
	run(t, i, "EXCLUDE course WHERE title = 'Course 009' FROM teaching OF faculty WHERE pname = 'Faculty 000';")
	if got := countLinks(); got != before {
		t.Errorf("links after exclude = %d, want %d", got, before)
	}
}

func TestIncludeValidation(t *testing.T) {
	i := newInterface(t)
	cases := []string{
		// single-valued function
		"INCLUDE faculty WHERE pname = 'Faculty 000' IN advisor OF student WHERE pname = 'Student 0000';",
		// scalar literal into entity-valued function
		"INCLUDE 'x' IN enrollments OF student WHERE pname = 'Student 0000';",
		// entity target into scalar function
		"INCLUDE course WHERE title = 'Course 001' IN skills OF support_staff WHERE pname = 'Staff 000';",
		// wrong range type
		"INCLUDE department WHERE dname = 'Physics' IN enrollments OF student WHERE pname = 'Student 0000';",
		// no owners
		"INCLUDE course WHERE title = 'Course 001' IN enrollments OF student WHERE pname = 'Nobody';",
		// no targets
		"INCLUDE course WHERE title = 'No Course' IN enrollments OF student WHERE pname = 'Student 0000';",
	}
	for _, src := range cases {
		if _, err := i.ExecText(src); err == nil {
			t.Errorf("accepted: %s", src)
		}
	}
	if _, err := i.ExecText("EXCLUDE course WHERE title = 'Advanced Database' FROM enrollments OF student WHERE pname = 'Student 0001';"); err == nil {
		// Student 0001 may or may not take course 0; only assert the
		// not-included error path when it truly is not included.
		_ = err
	}
}

func TestUnivgenStaffNamePrefix(t *testing.T) {
	// Guard: the tests above rely on the generator's staff naming.
	db, err := univgen.Generate(univgen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := db.Instance.Records()
	found := false
	for _, r := range recs {
		if r.File() != "person" {
			continue
		}
		if v, _ := r.Get("pname"); strings.HasPrefix(v.AsString(), "Staff ") {
			found = true
		}
	}
	if !found {
		t.Fatal("generator no longer produces Staff names; update the Include tests")
	}
}

// mustParse parses one ABDL request.
func mustParse(t *testing.T, src string) *abdlRequest {
	t.Helper()
	req, err := abdlParse(src)
	if err != nil {
		t.Fatal(err)
	}
	return req
}
