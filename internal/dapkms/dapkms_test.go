package dapkms

import (
	"strings"
	"testing"

	"mlds/internal/abdm"
	"mlds/internal/kc"
	"mlds/internal/univgen"
)

func newInterface(t *testing.T) *Interface {
	t.Helper()
	db, err := univgen.Generate(univgen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := db.NewKernel(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	if _, err := db.Load(sys); err != nil {
		t.Fatal(err)
	}
	ctrl := kc.New(sys)
	ctrl.SeedKeys(db.Instance.MaxKey())
	return New(db.Mapping, db.AB, ctrl)
}

func run(t *testing.T, i *Interface, src string) []Row {
	t.Helper()
	rows, err := i.ExecText(src)
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	return rows
}

func TestForEachSimple(t *testing.T) {
	i := newInterface(t)
	rows := run(t, i, "FOR EACH course PRINT title, credits;")
	if len(rows) != univgen.SmallConfig().Courses {
		t.Fatalf("courses = %d", len(rows))
	}
	for _, r := range rows {
		if len(r.Values["title"]) != 1 || len(r.Values["credits"]) != 1 {
			t.Errorf("row %d values = %v", r.Key, r.Values)
		}
	}
}

func TestForEachWhere(t *testing.T) {
	i := newInterface(t)
	rows := run(t, i, "FOR EACH student WHERE major = 'Computer Science' PRINT pname, major;")
	if len(rows) != 6 {
		t.Fatalf("CS students = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Values["major"][0].AsString() != "Computer Science" {
			t.Errorf("row %d major = %v", r.Key, r.Values["major"])
		}
		// pname is inherited from person — a cross-file key join.
		if len(r.Values["pname"]) != 1 || !strings.HasPrefix(r.Values["pname"][0].AsString(), "Student") {
			t.Errorf("row %d pname = %v", r.Key, r.Values["pname"])
		}
	}
}

func TestForEachInheritedPredicate(t *testing.T) {
	i := newInterface(t)
	// Filter students by an inherited (person) function.
	rows := run(t, i, "FOR EACH student WHERE pname = 'Student 0000' PRINT major;")
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestForEachNumericComparison(t *testing.T) {
	i := newInterface(t)
	all := run(t, i, "FOR EACH student PRINT gpa;")
	some := run(t, i, "FOR EACH student WHERE gpa >= 3.0 PRINT gpa;")
	if len(some) == 0 || len(some) >= len(all) {
		t.Errorf("gpa filter: %d of %d", len(some), len(all))
	}
	for _, r := range some {
		if r.Values["gpa"][0].AsFloat() < 3.0 {
			t.Errorf("row %d gpa = %v", r.Key, r.Values["gpa"])
		}
	}
}

func TestForEachMultiValued(t *testing.T) {
	i := newInterface(t)
	rows := run(t, i, "FOR EACH student WHERE pname = 'Student 0000' PRINT enrollments;")
	if len(rows) != 1 {
		t.Fatal("student not found")
	}
	if len(rows[0].Values["enrollments"]) != univgen.SmallConfig().EnrollPerStudent {
		t.Errorf("enrollments = %v", rows[0].Values["enrollments"])
	}
}

func TestForEachUnknowns(t *testing.T) {
	i := newInterface(t)
	if _, err := i.ExecText("FOR EACH nothing PRINT x;"); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := i.ExecText("FOR EACH student PRINT nothing;"); err == nil {
		t.Error("unknown function accepted")
	}
	// rank belongs to faculty, not student.
	if _, err := i.ExecText("FOR EACH student PRINT rank;"); err == nil {
		t.Error("inapplicable function accepted")
	}
}

func TestCreateAndRetrieve(t *testing.T) {
	i := newInterface(t)
	run(t, i, "CREATE student (pname := 'Zed', ssn := 555000111, major := 'History', gpa := 3.25);")
	rows := run(t, i, "FOR EACH student WHERE ssn = 555000111 PRINT pname, major, gpa;")
	if len(rows) != 1 {
		t.Fatalf("created student not found: %v", rows)
	}
	v := rows[0].Values
	if v["pname"][0].AsString() != "Zed" || v["major"][0].AsString() != "History" || v["gpa"][0].AsFloat() != 3.25 {
		t.Errorf("values = %v", v)
	}
	// The entity also exists as a person.
	prows := run(t, i, "FOR EACH person WHERE ssn = 555000111 PRINT pname;")
	if len(prows) != 1 || prows[0].Key != rows[0].Key {
		t.Errorf("hierarchy records inconsistent: %v vs %v", prows, rows)
	}
}

func TestCreateUniquenessViolation(t *testing.T) {
	i := newInterface(t)
	run(t, i, "CREATE person (pname := 'A', ssn := 600000001);")
	if _, err := i.ExecText("CREATE person (pname := 'B', ssn := 600000001);"); err == nil {
		t.Error("duplicate ssn accepted")
	}
}

func TestLetUpdatesValue(t *testing.T) {
	i := newInterface(t)
	run(t, i, "LET gpa OF student WHERE pname = 'Student 0001' BE 1.5;")
	rows := run(t, i, "FOR EACH student WHERE pname = 'Student 0001' PRINT gpa;")
	if len(rows) != 1 || rows[0].Values["gpa"][0].AsFloat() != 1.5 {
		t.Errorf("rows = %v", rows)
	}
}

func TestDestroyRemovesHierarchy(t *testing.T) {
	i := newInterface(t)
	run(t, i, "CREATE student (pname := 'Gone', ssn := 700000001, major := 'Art');")
	run(t, i, "DESTROY student WHERE ssn = 700000001;")
	if rows := run(t, i, "FOR EACH student WHERE ssn = 700000001 PRINT major;"); len(rows) != 0 {
		t.Error("destroyed student still present")
	}
}

func TestDestroyReferencedAborts(t *testing.T) {
	i := newInterface(t)
	// Faculty 000 advises students: advisor references must abort DESTROY.
	if _, err := i.ExecText("DESTROY faculty WHERE pname = 'Faculty 000';"); err == nil {
		t.Error("referenced faculty destroyed")
	} else if !strings.Contains(err.Error(), "referenced") {
		t.Errorf("err = %v", err)
	}
}

func TestDestroyEntityDeletesSubtypeRecords(t *testing.T) {
	i := newInterface(t)
	run(t, i, "CREATE student (pname := 'Down', ssn := 700000002, major := 'Art');")
	// Destroying the person removes the student record too (hierarchy).
	run(t, i, "DESTROY person WHERE ssn = 700000002;")
	if rows := run(t, i, "FOR EACH student WHERE ssn = 700000002 PRINT major;"); len(rows) != 0 {
		t.Error("subtype record survived DESTROY of its supertype")
	}
}

func TestRowKeysAscending(t *testing.T) {
	i := newInterface(t)
	rows := run(t, i, "FOR EACH person PRINT pname;")
	for n := 1; n < len(rows); n++ {
		if rows[n-1].Key >= rows[n].Key {
			t.Fatal("rows not in key order")
		}
	}
}

func TestEnumerationLiteral(t *testing.T) {
	i := newInterface(t)
	rows := run(t, i, "FOR EACH faculty WHERE rank = professor PRINT pname, rank;")
	if len(rows) == 0 {
		t.Fatal("no professors found")
	}
	for _, r := range rows {
		if r.Values["rank"][0].AsString() != "professor" {
			t.Errorf("rank = %v", r.Values["rank"])
		}
	}
	_ = abdm.Null()
}
