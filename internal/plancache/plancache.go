// Package plancache memoizes the parse step of the language interfaces: a
// bounded map from (language, normalized statement shape) to the parsed
// statement. Parsing is schema-independent in every MLDS front end and the
// kernel mapping systems treat the ASTs as read-only, so one cached plan can
// be shared by every session of a system.
//
// The key normalizes the statement's whitespace outside quoted literals, so
// statements differing only in layout share one plan — while literals keep
// their exact spelling, since a plan served for one literal must have been
// parsed from that same literal.
package plancache

import (
	"strings"
	"sync"
)

// DefaultSize is the entry bound used when a caller asks for a cache without
// choosing a capacity.
const DefaultSize = 512

// Cache is a bounded statement-plan memo. All methods are safe on a nil
// *Cache (every lookup misses, every fill no-ops), so the session layer can
// run with plan caching disabled without testing for it.
type Cache struct {
	mu  sync.Mutex
	cap int
	m   map[string]any
}

// New builds a cache bounded to capacity entries; capacity <= 0 uses
// DefaultSize.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultSize
	}
	return &Cache{cap: capacity, m: make(map[string]any, 64)}
}

// Key builds the cache key for a statement in a language.
func Key(language, text string) string {
	return language + "\x00" + Normalize(text)
}

// Normalize collapses runs of whitespace outside quoted literals to single
// spaces and trims the ends, producing the statement's shape. Quoted
// regions ('...' and "...") pass through verbatim: two statements whose
// literals differ must not share a plan.
func Normalize(text string) string {
	var b strings.Builder
	b.Grow(len(text))
	var quote byte // the open quote character, 0 outside literals
	pendingSpace := false
	for i := 0; i < len(text); i++ {
		c := text[i]
		if quote != 0 {
			b.WriteByte(c)
			if c == quote {
				quote = 0
			}
			continue
		}
		switch c {
		case ' ', '\t', '\n', '\r', '\f', '\v':
			pendingSpace = true
			continue
		case '\'', '"':
			quote = c
		}
		if pendingSpace && b.Len() > 0 {
			b.WriteByte(' ')
		}
		pendingSpace = false
		b.WriteByte(c)
	}
	return b.String()
}

// Get returns the cached plan for key.
func (c *Cache) Get(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	return v, ok
}

// Put stores a plan, evicting an arbitrary entry when the cache is full and
// the key is new. Parsed plans carry no generation state — a statement's
// parse never goes stale — so eviction is purely a size bound.
func (c *Cache) Put(key string, v any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[key]; !ok && len(c.m) >= c.cap {
		for k := range c.m {
			delete(c.m, k)
			break
		}
	}
	c.m[key] = v
}

// Len reports the number of cached plans.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
