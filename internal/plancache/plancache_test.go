package plancache

import (
	"fmt"
	"sync"
	"testing"
)

func TestNormalizeCollapsesLayout(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT *  FROM t", "SELECT * FROM t"},
		{"  SELECT *\n\tFROM t  ", "SELECT * FROM t"},
		{"a\r\nb", "a b"},
		{"", ""},
		{"   ", ""},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestNormalizePreservesLiterals: whitespace inside quoted literals is
// meaningful — collapsing it would hand a plan parsed from one literal to a
// statement with a different one.
func TestNormalizePreservesLiterals(t *testing.T) {
	a := Normalize(`SELECT * FROM t WHERE name = 'John  Smith'`)
	b := Normalize(`SELECT * FROM t WHERE name = 'John Smith'`)
	if a == b {
		t.Fatalf("literals with different spacing normalized to the same shape %q", a)
	}
	if got := Normalize("a  'x  y'  b"); got != "a 'x  y' b" {
		t.Errorf("Normalize kept literal badly: %q", got)
	}
	if got := Normalize(`a  "x  y"  b`); got != `a "x  y" b` {
		t.Errorf("double-quoted literal: %q", got)
	}
}

func TestKeySeparatesLanguages(t *testing.T) {
	if Key("sql", "GET x") == Key("dli", "GET x") {
		t.Fatal("the same text in two languages shares a key")
	}
}

func TestCacheGetPut(t *testing.T) {
	c := New(4)
	if _, ok := c.Get("k"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put("k", 42)
	v, ok := c.Get("k")
	if !ok || v.(int) != 42 {
		t.Fatalf("Get = %v, %v after Put", v, ok)
	}
}

func TestCacheEviction(t *testing.T) {
	c := New(2)
	for i := 0; i < 5; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	if c.Len() > 2 {
		t.Fatalf("cache holds %d entries, cap is 2", c.Len())
	}
	// Overwriting a resident key does not evict.
	c2 := New(2)
	c2.Put("a", 1)
	c2.Put("b", 2)
	c2.Put("a", 3)
	if c2.Len() != 2 {
		t.Fatalf("overwrite changed occupancy to %d", c2.Len())
	}
	if v, _ := c2.Get("a"); v.(int) != 3 {
		t.Fatal("overwrite did not replace the value")
	}
}

func TestCacheNilSafety(t *testing.T) {
	var c *Cache
	c.Put("k", 1)
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache reported a hit")
	}
	if c.Len() != 0 {
		t.Fatal("nil cache has entries")
	}
}

// TestConcurrentGetPut hammers one cache from many goroutines with
// overlapping key sets — run under -race. The capacity bound must hold at
// every observation point, and a Get that hits must return the value some
// Put stored for that exact key.
func TestConcurrentGetPut(t *testing.T) {
	const workers, rounds, capacity = 8, 500, 32
	c := New(capacity)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				key := fmt.Sprintf("k%d", i%(2*capacity))
				if v, ok := c.Get(key); ok && v.(string) != key {
					t.Errorf("Get(%q) returned foreign plan %v", key, v)
					return
				}
				c.Put(key, key)
				if n := c.Len(); n > capacity {
					t.Errorf("cache grew to %d entries, capacity %d", n, capacity)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
