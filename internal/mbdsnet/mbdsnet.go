// Package mbdsnet puts the MBDS communication bus on a real network: a
// backend serves its kdb store over TCP with a gob-framed protocol, and the
// controller reaches it through a RemoteBackend client that satisfies
// mbds.Executor. This mirrors the original hardware architecture, where the
// controller (master) and the backends (slaves) were separate machines.
package mbdsnet

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"

	"mlds/internal/abdl"
	"mlds/internal/kdb"
	"mlds/internal/wire"
)

// BackendServer serves one backend store to controllers.
type BackendServer struct {
	store *kdb.Store
	ln    net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]bool
	wg     sync.WaitGroup
}

// Serve starts serving the store on the listener. It returns immediately;
// Close stops the server.
func Serve(ln net.Listener, store *kdb.Store) *BackendServer {
	s := &BackendServer{store: store, ln: ln, conns: make(map[net.Conn]bool)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Listen starts a backend server on the TCP address (":0" for an ephemeral
// port).
func Listen(addr string, store *kdb.Store) (*BackendServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Serve(ln, store), nil
}

// Addr reports the server's listen address.
func (s *BackendServer) Addr() string { return s.ln.Addr().String() }

// Store exposes the served store (used by tests and local tooling).
func (s *BackendServer) Store() *kdb.Store { return s.store }

// Close stops accepting and tears down live connections.
func (s *BackendServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *BackendServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *BackendServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var env wire.Envelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		reply := wire.Envelope{Seq: env.Seq}
		switch env.Action {
		case "", "exec":
			if env.Req == nil {
				reply.Err = "mbdsnet: exec without a request"
				break
			}
			req, err := env.Req.ToRequest()
			if err != nil {
				reply.Err = err.Error()
				break
			}
			res, err := s.store.Exec(req)
			if err != nil {
				reply.Err = err.Error()
				break
			}
			wres := wire.FromResult(res)
			reply.Res = &wres
		case "len":
			reply.N = s.store.Len()
		default:
			reply.Err = fmt.Sprintf("mbdsnet: unknown action %q", env.Action)
		}
		if err := enc.Encode(&reply); err != nil {
			return
		}
	}
}

// RemoteBackend is the controller's client for one remote backend. It
// satisfies mbds.Executor. A single connection is shared; requests are
// serialised over it (the original bus was also a shared medium).
type RemoteBackend struct {
	addr string

	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	seq  uint64
}

// Dial connects to a backend server.
func Dial(addr string) (*RemoteBackend, error) {
	rb := &RemoteBackend{addr: addr}
	if err := rb.connect(); err != nil {
		return nil, err
	}
	return rb, nil
}

func (rb *RemoteBackend) connect() error {
	conn, err := net.Dial("tcp", rb.addr)
	if err != nil {
		return fmt.Errorf("mbdsnet: dialing backend %s: %w", rb.addr, err)
	}
	rb.conn = conn
	rb.enc = gob.NewEncoder(conn)
	rb.dec = gob.NewDecoder(conn)
	return nil
}

// Close tears the connection down.
func (rb *RemoteBackend) Close() error {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.conn == nil {
		return nil
	}
	err := rb.conn.Close()
	rb.conn = nil
	return err
}

// roundTrip sends one envelope and waits for its reply, reconnecting once on
// a broken connection.
func (rb *RemoteBackend) roundTrip(env wire.Envelope) (wire.Envelope, error) {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.conn == nil {
		if err := rb.connect(); err != nil {
			return wire.Envelope{}, err
		}
	}
	rb.seq++
	env.Seq = rb.seq
	send := func() (wire.Envelope, error) {
		if err := rb.enc.Encode(&env); err != nil {
			return wire.Envelope{}, err
		}
		var reply wire.Envelope
		if err := rb.dec.Decode(&reply); err != nil {
			return wire.Envelope{}, err
		}
		return reply, nil
	}
	reply, err := send()
	if err != nil {
		// One reconnect attempt: the backend may have restarted.
		if cerr := rb.connect(); cerr != nil {
			return wire.Envelope{}, fmt.Errorf("mbdsnet: backend %s unreachable: %w", rb.addr, err)
		}
		reply, err = send()
		if err != nil {
			return wire.Envelope{}, fmt.Errorf("mbdsnet: backend %s: %w", rb.addr, err)
		}
	}
	if reply.Seq != env.Seq {
		return wire.Envelope{}, fmt.Errorf("mbdsnet: backend %s replied out of order (%d != %d)", rb.addr, reply.Seq, env.Seq)
	}
	return reply, nil
}

// Exec executes one ABDL request on the remote backend.
func (rb *RemoteBackend) Exec(req *abdl.Request) (*kdb.Result, error) {
	wreq := wire.FromRequest(req)
	reply, err := rb.roundTrip(wire.Envelope{Action: "exec", Req: &wreq})
	if err != nil {
		return nil, err
	}
	if reply.Err != "" {
		return nil, errors.New(reply.Err)
	}
	if reply.Res == nil {
		return nil, fmt.Errorf("mbdsnet: backend %s sent an empty reply", rb.addr)
	}
	return reply.Res.ToResult()
}

// Len reports the remote partition's record count.
func (rb *RemoteBackend) Len() (int, error) {
	reply, err := rb.roundTrip(wire.Envelope{Action: "len"})
	if err != nil {
		return 0, err
	}
	if reply.Err != "" {
		return 0, errors.New(reply.Err)
	}
	return reply.N, nil
}
