// Package mbdsnet puts the MBDS communication bus on a real network: a
// backend serves its kdb store over TCP with the framing-v2 length-prefixed
// binary protocol (internal/wire), and the controller reaches it through a
// RemoteBackend client that satisfies mbds.Executor. This mirrors the
// original hardware architecture, where the controller (master) and the
// backends (slaves) were separate machines.
//
// Through PR 6 the bus spoke gob; gob's reflection and per-connection type
// negotiation dominated the per-message cost for the small request envelopes
// the bus mostly carries, so the bus now shares framing v2 with the
// client-facing serving tier — one codec for both hops.
package mbdsnet

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/kdb"
	"mlds/internal/obs"
	"mlds/internal/wire"
)

// BackendServer serves one backend store to controllers.
type BackendServer struct {
	store *kdb.Store
	ln    net.Listener

	mu       sync.Mutex
	closed   bool
	draining atomic.Bool
	conns    map[net.Conn]bool
	wg       sync.WaitGroup

	// Wire-level op counters. The atomics always count (tests assert the
	// one-message-per-backend-per-batch property through them); the obs
	// counters mirror them once Instrument attaches a registry.
	nExec, nBatch, nBatchReqs, nErrors atomic.Uint64

	mExec, mBatch, mBatchReqs, mErrors *obs.Counter // nil until Instrument; nil-safe
}

// OpCounts is a snapshot of a backend server's wire-level op counters.
type OpCounts struct {
	Exec      uint64 // single-request exec messages served
	Batch     uint64 // execbatch messages served
	BatchReqs uint64 // requests carried inside execbatch messages
	Errors    uint64 // ops that returned an error
}

// OpCounts snapshots the server's wire-level op counters.
func (s *BackendServer) OpCounts() OpCounts {
	return OpCounts{
		Exec:      s.nExec.Load(),
		Batch:     s.nBatch.Load(),
		BatchReqs: s.nBatchReqs.Load(),
		Errors:    s.nErrors.Load(),
	}
}

// Serve starts serving the store on the listener. It returns immediately;
// Close stops the server.
func Serve(ln net.Listener, store *kdb.Store) *BackendServer {
	s := &BackendServer{store: store, ln: ln, conns: make(map[net.Conn]bool)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Listen starts a backend server on the TCP address (":0" for an ephemeral
// port).
func Listen(addr string, store *kdb.Store) (*BackendServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Serve(ln, store), nil
}

// Addr reports the server's listen address.
func (s *BackendServer) Addr() string { return s.ln.Addr().String() }

// Store exposes the served store (used by tests and local tooling).
func (s *BackendServer) Store() *kdb.Store { return s.store }

// Drain puts the server into drain mode: connections stay up and every
// subsequent exec/execbatch is answered with a typed CodeDraining refusal —
// never executed, so the controller can safely resend it elsewhere or later —
// instead of the raw connection reset a Close would cause mid-request. The
// maintenance verbs (len, export, import, drop) keep working, since draining
// a backend is exactly when the migration engine needs them. Close completes
// the shutdown.
func (s *BackendServer) Drain() { s.draining.Store(true) }

// Draining reports whether the server is refusing new work.
func (s *BackendServer) Draining() bool { return s.draining.Load() }

// Close stops accepting and tears down live connections.
func (s *BackendServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *BackendServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *BackendServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		envp, err := wire.ReadEnvelope(br, 0)
		if err != nil {
			return
		}
		env := *envp
		reply := wire.Envelope{Seq: env.Seq}
		noteErr := func(msg string) {
			s.nErrors.Add(1)
			s.mErrors.Inc()
			reply.Err = msg
			if reply.ErrCode == wire.CodeOK {
				reply.ErrCode = wire.CodeInternal
			}
		}
		if s.draining.Load() && (env.Action == "" || env.Action == "exec" || env.Action == "execbatch") {
			reply.ErrCode = wire.CodeDraining
			reply.Err = "mbdsnet: backend draining (request not executed)"
			if err := wire.WriteEnvelope(bw, &reply); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
			continue
		}
		switch env.Action {
		case "", "exec":
			s.nExec.Add(1)
			s.mExec.Inc()
			if env.Req == nil {
				noteErr("mbdsnet: exec without a request")
				break
			}
			req, err := env.Req.ToRequest()
			if err != nil {
				noteErr(err.Error())
				break
			}
			res, err := s.store.Exec(req)
			if err != nil {
				noteErr(err.Error())
				break
			}
			wres := wire.FromResult(res)
			reply.Res = &wres
		case "execbatch":
			s.nBatch.Add(1)
			s.mBatch.Inc()
			s.nBatchReqs.Add(uint64(len(env.Reqs)))
			s.mBatchReqs.Add(uint64(len(env.Reqs)))
			reqs := make([]*abdl.Request, len(env.Reqs))
			var convErr error
			for i := range env.Reqs {
				if reqs[i], convErr = env.Reqs[i].ToRequest(); convErr != nil {
					break
				}
			}
			if convErr != nil {
				noteErr(convErr.Error())
				break
			}
			results, err := s.store.ExecBatch(reqs)
			if err != nil {
				noteErr(err.Error())
				break
			}
			reply.Results = make([]wire.Result, len(results))
			for i, res := range results {
				reply.Results[i] = wire.FromResult(res)
			}
		case "len":
			reply.N = s.store.Len()
		case "export":
			recs, next, epoch, err := s.store.ExportSince(env.Since, abdm.RecordID(env.After), env.Limit)
			if err != nil {
				noteErr(err.Error())
				break
			}
			reply.Migs = make([]wire.Mig, len(recs))
			for i := range recs {
				reply.Migs[i] = wire.FromMig(&recs[i])
			}
			reply.Next = uint64(next)
			reply.Epoch = epoch
		case "import":
			recs := make([]kdb.MigRecord, len(env.Migs))
			var convErr error
			for i := range env.Migs {
				if recs[i], convErr = env.Migs[i].ToMig(); convErr != nil {
					break
				}
			}
			if convErr != nil {
				noteErr(convErr.Error())
				break
			}
			n, err := s.store.ImportPartition(recs)
			if err != nil {
				noteErr(err.Error())
				break
			}
			reply.N = n
		case "drop":
			ids := make([]abdm.RecordID, len(env.IDs))
			for i, id := range env.IDs {
				ids[i] = abdm.RecordID(id)
			}
			n, err := s.store.DropRecords(ids)
			if err != nil {
				noteErr(err.Error())
				break
			}
			reply.N = n
		default:
			reply.Err = fmt.Sprintf("mbdsnet: unknown action %q", env.Action)
			reply.ErrCode = wire.CodeProto
		}
		if err := wire.WriteEnvelope(bw, &reply); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// DownError reports a backend that could not be reached: the request was
// never delivered, so resending it is always safe. The multi-backend layer
// recognises this through Transient and retries under its backoff policy.
type DownError struct {
	Addr string
	Err  error
}

// Error describes the unreachable backend.
func (e *DownError) Error() string {
	return fmt.Sprintf("mbdsnet: backend %s unreachable: %v", e.Addr, e.Err)
}

// Unwrap exposes the underlying network error.
func (e *DownError) Unwrap() error { return e.Err }

// Transient marks the failure as retryable.
func (e *DownError) Transient() bool { return true }

// AmbiguousError reports a connection that failed mid-exchange: the request
// may or may not have been delivered and applied. Non-idempotent requests
// (an INSERT allocating a fresh key) are not resent automatically — a lost
// reply after a delivered INSERT would otherwise be applied twice — so the
// ambiguity is surfaced to the caller instead.
type AmbiguousError struct {
	Addr string
	Err  error
}

// Error describes the ambiguous outcome.
func (e *AmbiguousError) Error() string {
	return fmt.Sprintf("mbdsnet: backend %s failed mid-request (outcome unknown, not resent): %v", e.Addr, e.Err)
}

// Unwrap exposes the underlying network error.
func (e *AmbiguousError) Unwrap() error { return e.Err }

// MaybeApplied reports that the request may have executed on the backend.
func (e *AmbiguousError) MaybeApplied() bool { return true }

// Transient marks the failure as a backend-side fault (it counts toward the
// circuit breaker; the retry policy still refuses to resend non-idempotent
// requests after it).
func (e *AmbiguousError) Transient() bool { return true }

// DrainingError reports a backend that is draining: the request was
// delivered but deliberately NOT executed, so resending it — to a replica, a
// migrated-to backend, or the same backend after its restart — is always
// safe, even for non-idempotent requests. The multi-backend layer recognises
// it through Transient and retries under its backoff policy; since
// MaybeApplied is absent, the retry policy never downgrades it to an
// ambiguous outcome.
type DrainingError struct {
	Addr string
}

// Error describes the draining backend.
func (e *DrainingError) Error() string {
	return fmt.Sprintf("mbdsnet: backend %s draining (request not executed)", e.Addr)
}

// Transient marks the failure as retryable.
func (e *DrainingError) Transient() bool { return true }

// DialOpts tunes a RemoteBackend's reconnect policy. Zero values take the
// defaults.
type DialOpts struct {
	// MaxReconnects bounds reconnect attempts after a mid-exchange failure
	// within one round trip (default 4; negative = none).
	MaxReconnects int
	// ReconnectBackoff is the first reconnect delay, doubling per attempt
	// with ±50% deterministic jitter (default 5ms).
	ReconnectBackoff time.Duration
	// ReconnectBudget caps the total time spent backing off and redialing in
	// one round trip — set it to the controller's request deadline so the
	// client gives up before the caller does (default 250ms).
	ReconnectBudget time.Duration
}

func (o DialOpts) withDefaults() DialOpts {
	if o.MaxReconnects == 0 {
		o.MaxReconnects = 4
	}
	if o.MaxReconnects < 0 {
		o.MaxReconnects = 0
	}
	if o.ReconnectBackoff <= 0 {
		o.ReconnectBackoff = 5 * time.Millisecond
	}
	if o.ReconnectBudget <= 0 {
		o.ReconnectBudget = 250 * time.Millisecond
	}
	return o
}

// RemoteBackend is the controller's client for one remote backend. It
// satisfies mbds.Executor. A single connection is shared; requests are
// serialised over it (the original bus was also a shared medium).
type RemoteBackend struct {
	addr string
	opts DialOpts

	mu   sync.Mutex
	conn net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader
	seq  uint64
	rng  uint64 // xorshift64* state for backoff jitter
}

// Dial connects to a backend server with the default reconnect policy.
func Dial(addr string) (*RemoteBackend, error) {
	return DialWith(addr, DialOpts{})
}

// DialWith connects to a backend server with an explicit reconnect policy.
func DialWith(addr string, opts DialOpts) (*RemoteBackend, error) {
	rb := &RemoteBackend{addr: addr, opts: opts.withDefaults(), rng: 0x9E3779B97F4A7C15}
	if err := rb.connect(); err != nil {
		return nil, err
	}
	return rb, nil
}

// jitter scales d by a deterministic pseudo-random factor in [0.5, 1.5), so
// a fleet of controllers redialing one restarted backend does not thunder in
// lockstep. Caller must hold rb.mu.
func (rb *RemoteBackend) jitter(d time.Duration) time.Duration {
	rb.rng ^= rb.rng << 13
	rb.rng ^= rb.rng >> 7
	rb.rng ^= rb.rng << 17
	f := 0.5 + float64(rb.rng>>11)/float64(uint64(1)<<53)
	return time.Duration(float64(d) * f)
}

func (rb *RemoteBackend) connect() error {
	conn, err := net.Dial("tcp", rb.addr)
	if err != nil {
		return fmt.Errorf("mbdsnet: dialing backend %s: %w", rb.addr, err)
	}
	rb.conn = conn
	rb.bw = bufio.NewWriter(conn)
	rb.br = bufio.NewReader(conn)
	return nil
}

// Close tears the connection down.
func (rb *RemoteBackend) Close() error {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.conn == nil {
		return nil
	}
	err := rb.conn.Close()
	rb.conn = nil
	return err
}

// dropConn discards the connection so the next round trip redials. Caller
// must hold rb.mu.
func (rb *RemoteBackend) dropConn() {
	if rb.conn != nil {
		_ = rb.conn.Close()
	}
	rb.conn = nil
	rb.bw = nil
	rb.br = nil
}

// roundTrip sends one envelope and waits for its reply. A connection that
// cannot be established at all yields a DownError (the request was never
// delivered; safe to retry). A connection that fails mid-exchange is
// reconnected and the envelope resent only when idem says re-execution is
// harmless; otherwise the delivered-or-not ambiguity is surfaced as an
// AmbiguousError rather than risking a double apply.
func (rb *RemoteBackend) roundTrip(env wire.Envelope, idem bool) (wire.Envelope, error) {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.conn == nil {
		if err := rb.connect(); err != nil {
			return wire.Envelope{}, &DownError{Addr: rb.addr, Err: err}
		}
	}
	rb.seq++
	env.Seq = rb.seq
	send := func() (wire.Envelope, error) {
		if err := wire.WriteEnvelope(rb.bw, &env); err != nil {
			return wire.Envelope{}, err
		}
		if err := rb.bw.Flush(); err != nil {
			return wire.Envelope{}, err
		}
		reply, err := wire.ReadEnvelope(rb.br, 0)
		if err != nil {
			return wire.Envelope{}, err
		}
		return *reply, nil
	}
	reply, err := send()
	if err != nil {
		rb.dropConn()
		if !idem {
			return wire.Envelope{}, &AmbiguousError{Addr: rb.addr, Err: err}
		}
		// The backend may have restarted: reconnect and resend (safe — the
		// request is idempotent) under bounded exponential backoff with
		// jitter, capped by the reconnect budget so the controller's own
		// request deadline wins.
		deadline := time.Now().Add(rb.opts.ReconnectBudget)
		backoff := rb.opts.ReconnectBackoff
		resent := false
		for attempt := 0; attempt < rb.opts.MaxReconnects; attempt++ {
			if attempt > 0 {
				wait := rb.jitter(backoff)
				backoff *= 2
				if time.Now().Add(wait).After(deadline) {
					break
				}
				time.Sleep(wait)
			}
			if time.Now().After(deadline) {
				break
			}
			if cerr := rb.connect(); cerr != nil {
				continue
			}
			reply, err = send()
			if err == nil {
				resent = true
				break
			}
			rb.dropConn()
		}
		if !resent {
			return wire.Envelope{}, &DownError{Addr: rb.addr, Err: err}
		}
	}
	if reply.Seq != env.Seq {
		// The stream is out of sync; poison the connection so the next
		// request starts clean.
		rb.dropConn()
		return wire.Envelope{}, fmt.Errorf("mbdsnet: backend %s replied out of order (%d != %d)", rb.addr, reply.Seq, env.Seq)
	}
	return reply, nil
}

// replyError maps a reply's error fields to a typed error: a CodeDraining
// refusal becomes a *DrainingError (retryable, never executed); anything
// else surfaces as plain text.
func (rb *RemoteBackend) replyError(reply wire.Envelope) error {
	if reply.ErrCode == wire.CodeDraining {
		return &DrainingError{Addr: rb.addr}
	}
	if reply.Err != "" {
		return errors.New(reply.Err)
	}
	return nil
}

// Exec executes one ABDL request on the remote backend.
func (rb *RemoteBackend) Exec(req *abdl.Request) (*kdb.Result, error) {
	// Everything but a fresh-key INSERT is safe to re-execute: retrieves
	// read, DELETE/UPDATE qualify by query and assign absolute values, and
	// a replica-pinned INSERT overwrites its own key.
	idem := req.Kind != abdl.Insert || req.ForceID != 0
	wreq := wire.FromRequest(req)
	reply, err := rb.roundTrip(wire.Envelope{Action: "exec", Req: &wreq}, idem)
	if err != nil {
		return nil, err
	}
	if err := rb.replyError(reply); err != nil {
		return nil, err
	}
	if reply.Res == nil {
		return nil, fmt.Errorf("mbdsnet: backend %s sent an empty reply", rb.addr)
	}
	return reply.Res.ToResult()
}

// ExecBatch executes a slice of ABDL requests on the remote backend as one
// "execbatch" wire message, returning one result per request. It satisfies
// mbds.BatchExecutor, so a controller batch costs one message round per
// backend. The batch is the resend unit: it is re-sent after a mid-exchange
// failure only when every request in it is idempotent.
func (rb *RemoteBackend) ExecBatch(reqs []*abdl.Request) ([]*kdb.Result, error) {
	idem := true
	wreqs := make([]wire.Request, len(reqs))
	for i, req := range reqs {
		if req.Kind == abdl.Insert && req.ForceID == 0 {
			idem = false
		}
		wreqs[i] = wire.FromRequest(req)
	}
	reply, err := rb.roundTrip(wire.Envelope{Action: "execbatch", Reqs: wreqs}, idem)
	if err != nil {
		return nil, err
	}
	if err := rb.replyError(reply); err != nil {
		return nil, err
	}
	if len(reply.Results) != len(reqs) {
		return nil, fmt.Errorf("mbdsnet: backend %s answered %d results for a %d-request batch",
			rb.addr, len(reply.Results), len(reqs))
	}
	out := make([]*kdb.Result, len(reply.Results))
	for i := range reply.Results {
		if out[i], err = reply.Results[i].ToResult(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Len reports the remote partition's record count.
func (rb *RemoteBackend) Len() (int, error) {
	reply, err := rb.roundTrip(wire.Envelope{Action: "len"}, true)
	if err != nil {
		return 0, err
	}
	if err := rb.replyError(reply); err != nil {
		return 0, err
	}
	return reply.N, nil
}

// ExportSince pages out the remote partition's records touched at or after
// the epoch (see kdb.Store.ExportSince). It satisfies the controller's
// migration source interface; the verb is idempotent, so it rides the full
// reconnect policy.
func (rb *RemoteBackend) ExportSince(since uint64, after abdm.RecordID, limit int) ([]kdb.MigRecord, abdm.RecordID, uint64, error) {
	reply, err := rb.roundTrip(wire.Envelope{Action: "export", Since: since, After: uint64(after), Limit: limit}, true)
	if err != nil {
		return nil, 0, 0, err
	}
	if err := rb.replyError(reply); err != nil {
		return nil, 0, 0, err
	}
	recs := make([]kdb.MigRecord, len(reply.Migs))
	for i := range reply.Migs {
		if recs[i], err = reply.Migs[i].ToMig(); err != nil {
			return nil, 0, 0, err
		}
	}
	return recs, abdm.RecordID(reply.Next), reply.Epoch, nil
}

// ImportPartition installs exported records on the remote partition (see
// kdb.Store.ImportPartition). Imports replace whole per-key states, so the
// verb is idempotent and safely resent.
func (rb *RemoteBackend) ImportPartition(recs []kdb.MigRecord) (int, error) {
	migs := make([]wire.Mig, len(recs))
	for i := range recs {
		migs[i] = wire.FromMig(&recs[i])
	}
	reply, err := rb.roundTrip(wire.Envelope{Action: "import", Migs: migs}, true)
	if err != nil {
		return 0, err
	}
	if err := rb.replyError(reply); err != nil {
		return 0, err
	}
	return reply.N, nil
}

// DropRecords removes the given records — live state and version chains —
// from the remote partition (see kdb.Store.DropRecords).
func (rb *RemoteBackend) DropRecords(ids []abdm.RecordID) (int, error) {
	wids := make([]uint64, len(ids))
	for i, id := range ids {
		wids[i] = uint64(id)
	}
	reply, err := rb.roundTrip(wire.Envelope{Action: "drop", IDs: wids}, true)
	if err != nil {
		return 0, err
	}
	if err := rb.replyError(reply); err != nil {
		return 0, err
	}
	return reply.N, nil
}
