package mbdsnet

import (
	"fmt"
	"testing"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/kdb"
	"mlds/internal/mbds"
)

func testDir(t *testing.T) *abdm.Directory {
	t.Helper()
	d := abdm.NewDirectory()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(d.DefineAttr("name", abdm.KindString))
	must(d.DefineAttr("dept", abdm.KindString))
	must(d.DefineAttr("salary", abdm.KindInt))
	must(d.DefineFile("employee", []string{"name", "dept", "salary"}))
	return d
}

// startCluster launches n backend servers on ephemeral ports and returns a
// controller over them.
func startCluster(t *testing.T, n int) *mbds.System {
	t.Helper()
	dir := testDir(t)
	var execs []mbds.Executor
	for i := 0; i < n; i++ {
		store := kdb.NewStore(dir.Clone(), kdb.WithStrideIDs(uint64(i+1), uint64(n)))
		srv, err := Listen("127.0.0.1:0", store)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		rb, err := Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = rb.Close() })
		execs = append(execs, rb)
	}
	sys, err := mbds.NewWithExecutors(dir, mbds.DefaultConfig(n), execs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return sys
}

func loadCluster(t *testing.T, sys *mbds.System, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		rec := abdm.NewRecord("employee",
			abdm.Keyword{Attr: "name", Val: abdm.String(fmt.Sprintf("emp%03d", i))},
			abdm.Keyword{Attr: "dept", Val: abdm.String([]string{"CS", "EE"}[i%2])},
			abdm.Keyword{Attr: "salary", Val: abdm.Int(int64(1000 + i))})
		if _, err := sys.Exec(abdl.NewInsert(rec)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRemoteClusterEndToEnd(t *testing.T) {
	sys := startCluster(t, 3)
	loadCluster(t, sys, 30)
	if sys.Len() != 30 {
		t.Fatalf("Len over the bus = %d", sys.Len())
	}
	sizes := sys.PartitionSizes()
	for i, sz := range sizes {
		if sz != 10 {
			t.Errorf("partition %d = %d, want 10", i, sz)
		}
	}
	res, err := sys.Exec(abdl.NewRetrieve(abdm.And(
		abdm.Predicate{Attr: "dept", Op: abdm.OpEq, Val: abdm.String("CS")},
	), "name", "salary"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 15 {
		t.Fatalf("CS employees = %d", len(res.Records))
	}
	// Database keys must not collide across the remote partitions.
	seen := map[abdm.RecordID]bool{}
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range snap {
		if seen[sr.ID] {
			t.Fatalf("key %d duplicated across remote backends", sr.ID)
		}
		seen[sr.ID] = true
	}
	if len(seen) != 30 {
		t.Errorf("snapshot over the bus = %d records", len(seen))
	}
}

func TestRemoteUpdateDeleteAggregate(t *testing.T) {
	sys := startCluster(t, 2)
	loadCluster(t, sys, 20)
	upd, err := sys.Exec(abdl.NewUpdate(abdm.And(
		abdm.Predicate{Attr: "dept", Op: abdm.OpEq, Val: abdm.String("CS")},
	), abdl.Modifier{Attr: "salary", Val: abdm.Int(7)}))
	if err != nil {
		t.Fatal(err)
	}
	if upd.Count != 10 {
		t.Fatalf("updated %d", upd.Count)
	}
	agg, err := sys.Exec(&abdl.Request{
		Kind:  abdl.Retrieve,
		Query: abdm.And(abdm.Predicate{Attr: "salary", Op: abdm.OpEq, Val: abdm.Int(7)}),
		Target: []abdl.TargetItem{
			{Agg: abdl.AggCount, Attr: "name"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Groups[0].Aggs[0].Val.AsInt() != 10 {
		t.Errorf("count = %v", agg.Groups[0].Aggs[0].Val)
	}
	del, err := sys.Exec(abdl.NewDelete(abdm.And(
		abdm.Predicate{Attr: "salary", Op: abdm.OpEq, Val: abdm.Int(7)},
	)))
	if err != nil {
		t.Fatal(err)
	}
	if del.Count != 10 || sys.Len() != 10 {
		t.Errorf("delete count = %d, remaining = %d", del.Count, sys.Len())
	}
}

func TestRemoteErrorPropagation(t *testing.T) {
	sys := startCluster(t, 2)
	bad := abdl.NewDelete(abdm.And(
		abdm.Predicate{Attr: "nosuch", Op: abdm.OpEq, Val: abdm.Int(1)}))
	if _, err := sys.Exec(bad); err == nil {
		t.Error("remote validation error not propagated")
	}
}

func TestRemoteReconnect(t *testing.T) {
	dir := testDir(t)
	store := kdb.NewStore(dir.Clone())
	srv, err := Listen("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	if _, err := rb.Len(); err != nil {
		t.Fatal(err)
	}
	// Restart the server on the same address; the client must reconnect.
	addr := srv.Addr()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, err := Listen(addr, store)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	if _, err := rb.Len(); err != nil {
		t.Fatalf("reconnect failed: %v", err)
	}
}

func TestRemoteBackendDirect(t *testing.T) {
	dir := testDir(t)
	store := kdb.NewStore(dir.Clone())
	srv, err := Listen("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rb, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()

	rec := abdm.NewRecord("employee",
		abdm.Keyword{Attr: "name", Val: abdm.String("x")},
		abdm.Keyword{Attr: "dept", Val: abdm.String("CS")},
		abdm.Keyword{Attr: "salary", Val: abdm.Int(5)})
	if _, err := rb.Exec(abdl.NewInsert(rec)); err != nil {
		t.Fatal(err)
	}
	res, err := rb.Exec(abdl.NewRetrieve(nil, abdl.AllAttrs))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 || !res.Records[0].Rec.Equal(rec) {
		t.Errorf("round-tripped record differs: %v", res.Records)
	}
	n, err := rb.Len()
	if err != nil || n != 1 {
		t.Errorf("Len = %d, %v", n, err)
	}
	if srv.Store() != store {
		t.Error("Store() accessor wrong")
	}
}
