package mbdsnet

import (
	"net"
	"net/http"

	"mlds/internal/obs"
)

// Instrument wires the backend server into a metrics registry: wire-level
// exec counters plus gauges over the served store's record count and
// lifetime kernel cost, all carrying the given labels. Call before traffic
// flows; without it the server runs unmetered.
func (s *BackendServer) Instrument(reg *obs.Registry, labels ...obs.Label) {
	s.mExec = reg.Counter("mlds_server_exec_total",
		"ABDL requests served over the wire", labels...)
	s.mBatch = reg.Counter("mlds_server_batch_total",
		"execbatch wire messages served", labels...)
	s.mBatchReqs = reg.Counter("mlds_server_batch_requests_total",
		"ABDL requests carried inside execbatch wire messages", labels...)
	s.mErrors = reg.Counter("mlds_server_exec_errors_total",
		"wire requests that returned an error", labels...)
	store := s.store
	reg.GaugeFunc("mlds_store_cache_hits",
		"retrieve-result cache hits in this partition",
		func() float64 { return float64(store.Stats().CacheHits) }, labels...)
	reg.GaugeFunc("mlds_store_cache_misses",
		"retrieve-result cache misses in this partition",
		func() float64 { return float64(store.Stats().CacheMisses) }, labels...)
	reg.GaugeFunc("mlds_store_records",
		"records held by this partition",
		func() float64 { return float64(store.Len()) }, labels...)
	reg.GaugeFunc("mlds_store_blocks_read",
		"cumulative disk-model blocks read by this partition",
		func() float64 { return float64(store.Stats().BlocksRead) }, labels...)
	reg.GaugeFunc("mlds_store_blocks_written",
		"cumulative disk-model blocks written by this partition",
		func() float64 { return float64(store.Stats().BlocksWrit) }, labels...)
	reg.GaugeFunc("mlds_store_records_examined",
		"cumulative records examined by this partition",
		func() float64 { return float64(store.Stats().RecordsExam) }, labels...)
}

// OpsServer is an HTTP endpoint serving /metrics (Prometheus text format)
// and /healthz next to a backend's data port.
type OpsServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeOps starts an ops endpoint on the TCP address (":0" for ephemeral).
// healthy gates /healthz; nil means always healthy.
func ServeOps(addr string, reg *obs.Registry, healthy func() bool) (*OpsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: obs.Handler(reg, healthy)}
	go func() { _ = srv.Serve(ln) }()
	return &OpsServer{ln: ln, srv: srv}, nil
}

// Addr reports the ops endpoint's listen address.
func (o *OpsServer) Addr() string { return o.ln.Addr().String() }

// Close stops the ops endpoint.
func (o *OpsServer) Close() error { return o.srv.Close() }
