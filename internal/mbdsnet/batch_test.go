package mbdsnet

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/kdb"
	"mlds/internal/mbds"
	"mlds/internal/obs"
)

// startCountedCluster is startCluster, additionally returning the backend
// servers so tests can assert on their wire-level op counters.
func startCountedCluster(t *testing.T, n int) (*mbds.System, []*BackendServer) {
	t.Helper()
	dir := testDir(t)
	var execs []mbds.Executor
	var servers []*BackendServer
	for i := 0; i < n; i++ {
		store := kdb.NewStore(dir.Clone(), kdb.WithStrideIDs(uint64(i+1), uint64(n)))
		srv, err := Listen("127.0.0.1:0", store)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		rb, err := Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = rb.Close() })
		execs = append(execs, rb)
		servers = append(servers, srv)
	}
	sys, err := mbds.NewWithExecutors(dir, mbds.DefaultConfig(n), execs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return sys, servers
}

// TestBatchOneWireMessagePerBackend is the acceptance check for the batch
// wire op: a batched bulk load reaches each backend as exactly one execbatch
// message, not one message per request.
func TestBatchOneWireMessagePerBackend(t *testing.T) {
	sys, servers := startCountedCluster(t, 3)
	const n = 30
	reqs := make([]*abdl.Request, n)
	for i := range reqs {
		reqs[i] = abdl.NewInsert(abdm.NewRecord("employee",
			abdm.Keyword{Attr: "name", Val: abdm.String(fmt.Sprintf("emp%03d", i))},
			abdm.Keyword{Attr: "dept", Val: abdm.String("CS")},
			abdm.Keyword{Attr: "salary", Val: abdm.Int(int64(1000 + i))}))
	}
	results, _, err := sys.ExecBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != n {
		t.Fatalf("batch returned %d results, want %d", len(results), n)
	}
	if sys.Len() != n {
		t.Fatalf("cluster holds %d records, want %d", sys.Len(), n)
	}
	totalReqs := uint64(0)
	for i, srv := range servers {
		oc := srv.OpCounts()
		if oc.Batch != 1 {
			t.Errorf("backend %d served %d execbatch messages, want exactly 1", i, oc.Batch)
		}
		if oc.Exec != 0 {
			t.Errorf("backend %d served %d single-request messages during the batch, want 0", i, oc.Exec)
		}
		if oc.Errors != 0 {
			t.Errorf("backend %d reported %d op errors", i, oc.Errors)
		}
		totalReqs += oc.BatchReqs
	}
	if totalReqs != n {
		t.Errorf("batched requests across backends = %d, want %d (one slot per insert)", totalReqs, n)
	}

	// A broadcast in a second batch is one more message per backend.
	q := abdm.And(abdm.Predicate{Attr: "dept", Op: abdm.OpEq, Val: abdm.String("CS")})
	res, _, err := sys.ExecBatch([]*abdl.Request{abdl.NewRetrieve(q, abdl.AllAttrs)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0].Records) != n {
		t.Fatalf("batched broadcast retrieve saw %d records, want %d", len(res[0].Records), n)
	}
	for i, srv := range servers {
		if oc := srv.OpCounts(); oc.Batch != 2 {
			t.Errorf("backend %d served %d execbatch messages after two batches, want 2", i, oc.Batch)
		}
	}
}

// TestRemoteExecBatchDirect exercises the client side without a controller.
func TestRemoteExecBatchDirect(t *testing.T) {
	dir := testDir(t)
	store := kdb.NewStore(dir.Clone())
	srv, err := Listen("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	rb, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rb.Close() })

	reqs := []*abdl.Request{
		abdl.NewInsert(abdm.NewRecord("employee",
			abdm.Keyword{Attr: "name", Val: abdm.String("ada")},
			abdm.Keyword{Attr: "dept", Val: abdm.String("CS")},
			abdm.Keyword{Attr: "salary", Val: abdm.Int(5000)})),
		abdl.NewRetrieve(abdm.And(abdm.Predicate{Attr: "dept", Op: abdm.OpEq, Val: abdm.String("CS")}), abdl.AllAttrs),
	}
	results, err := rb.ExecBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	if results[0].Count != 1 || len(results[1].Records) != 1 {
		t.Fatalf("batch results: insert count %d, retrieve %d records", results[0].Count, len(results[1].Records))
	}
	if v, _ := results[1].Records[0].Rec.Get("name"); v.AsString() != "ada" {
		t.Fatalf("retrieved %q, want ada", v.AsString())
	}

	// A failing request surfaces as one batch error, and the server counts it.
	bad := []*abdl.Request{{Kind: abdl.Delete}}
	if _, err := rb.ExecBatch(bad); err == nil {
		t.Fatal("invalid batch succeeded over the wire")
	}
	if oc := srv.OpCounts(); oc.Errors != 1 {
		t.Fatalf("server op errors = %d, want 1", oc.Errors)
	}
}

// TestBatchCountersInMetrics checks the Instrumented counters surface in
// Prometheus exposition, including the store's cache hit/miss gauges.
func TestBatchCountersInMetrics(t *testing.T) {
	dir := testDir(t)
	store := kdb.NewStore(dir.Clone())
	srv, err := Listen("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	reg := obs.NewRegistry()
	srv.Instrument(reg, obs.L("backend", "0"))
	rb, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rb.Close() })

	var reqs []*abdl.Request
	for i := 0; i < 5; i++ {
		reqs = append(reqs, abdl.NewInsert(abdm.NewRecord("employee",
			abdm.Keyword{Attr: "name", Val: abdm.String("n" + strconv.Itoa(i))},
			abdm.Keyword{Attr: "dept", Val: abdm.String("CS")},
			abdm.Keyword{Attr: "salary", Val: abdm.Int(int64(i))})))
	}
	if _, err := rb.ExecBatch(reqs); err != nil {
		t.Fatal(err)
	}
	// Same retrieve twice: second one hits the store's result cache.
	ret := abdl.NewRetrieve(abdm.And(abdm.Predicate{Attr: "dept", Op: abdm.OpEq, Val: abdm.String("CS")}), abdl.AllAttrs)
	for i := 0; i < 2; i++ {
		if _, err := rb.Exec(ret); err != nil {
			t.Fatal(err)
		}
	}

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`mlds_server_batch_total{backend="0"} 1`,
		`mlds_server_batch_requests_total{backend="0"} 5`,
		`mlds_store_cache_hits{backend="0"} 1`,
		`mlds_store_cache_misses{backend="0"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q\n%s", want, text)
		}
	}
}
