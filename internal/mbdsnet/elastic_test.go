package mbdsnet

import (
	"fmt"
	"testing"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/kdb"
	"mlds/internal/mbds"
)

// TestReconnectBackoffDoubleRestart: a backend daemon restarted twice
// mid-stream is transparently re-reached by the client's bounded
// exponential-backoff reconnect — idempotent requests resend, and the
// controller never sees a failure.
func TestReconnectBackoffDoubleRestart(t *testing.T) {
	store := kdb.NewStore(testDir(t).Clone())
	if _, err := store.Insert(employee("stable")); err != nil {
		t.Fatal(err)
	}
	srv, err := Listen("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	rb, err := DialWith(addr, DialOpts{
		MaxReconnects:    8,
		ReconnectBackoff: 2 * time.Millisecond,
		ReconnectBudget:  2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	if _, err := rb.Exec(abdl.NewRetrieve(nil, abdl.AllAttrs)); err != nil {
		t.Fatal(err)
	}

	for restart := 1; restart <= 2; restart++ {
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
		// The daemon comes back on the same address only after a beat: the
		// client's first reconnect attempts must fail, back off, and retry.
		restarted := make(chan *BackendServer, 1)
		go func() {
			time.Sleep(30 * time.Millisecond)
			for i := 0; i < 100; i++ {
				s2, err := Listen(addr, store)
				if err == nil {
					restarted <- s2
					return
				}
				time.Sleep(10 * time.Millisecond)
			}
			restarted <- nil
		}()
		res, err := rb.Exec(abdl.NewRetrieve(nil, abdl.AllAttrs))
		if err != nil {
			t.Fatalf("restart %d: idempotent retrieve not re-sent across restart: %v", restart, err)
		}
		if len(res.Records) != 1 {
			t.Fatalf("restart %d: retrieve = %d records, want 1", restart, len(res.Records))
		}
		srv = <-restarted
		if srv == nil {
			t.Fatalf("restart %d: could not rebind %s", restart, addr)
		}
	}
	t.Cleanup(func() { _ = srv.Close() })
	// Non-idempotent requests still refuse to resend mid-exchange: covered
	// by TestDroppedInsertNotResent; here the stream stays healthy.
	if _, err := rb.Exec(abdl.NewInsert(employee("after"))); err != nil {
		t.Fatalf("insert on recovered stream: %v", err)
	}
	if store.Len() != 2 {
		t.Fatalf("store has %d records, want 2", store.Len())
	}
}

// TestRemoteMigrationVerbs: the export/import/drop migration verbs round-trip
// over the wire, pending versions included.
func TestRemoteMigrationVerbs(t *testing.T) {
	dir := testDir(t)
	src := kdb.NewStore(dir.Clone(), kdb.WithStrideIDs(1, 2))
	dst := kdb.NewStore(dir.Clone(), kdb.WithStrideIDs(2, 2))
	for i := 0; i < 5; i++ {
		if _, err := src.Insert(employee(fmt.Sprintf("mig%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	pend := abdl.NewInsert(employee("pending"))
	pend.TxnID = 42
	if _, err := src.Exec(pend); err != nil {
		t.Fatal(err)
	}

	srvSrc, err := Listen("127.0.0.1:0", src)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srvSrc.Close() })
	srvDst, err := Listen("127.0.0.1:0", dst)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srvDst.Close() })
	rbSrc, err := Dial(srvSrc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rbSrc.Close() })
	rbDst, err := Dial(srvDst.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rbDst.Close() })

	// Page the whole partition over the wire.
	var all []kdb.MigRecord
	var after abdm.RecordID
	for {
		recs, next, epoch, err := rbSrc.ExportSince(0, after, 2)
		if err != nil {
			t.Fatal(err)
		}
		if epoch == 0 {
			t.Fatal("export reported epoch 0")
		}
		all = append(all, recs...)
		if next == 0 {
			break
		}
		after = next
	}
	if len(all) != 6 {
		t.Fatalf("exported %d records over the wire, want 6", len(all))
	}

	n, err := rbDst.ImportPartition(all)
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("imported %d records, want 6", n)
	}
	if dst.Len() != 6 {
		t.Fatalf("dst has %d records, want 6", dst.Len())
	}
	// The imported pending version registered: a later commit finds and
	// stamps it on the destination.
	res, err := dst.Exec(&abdl.Request{Kind: abdl.MvccCommit, TxnID: 42, MvccEpoch: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 1 {
		t.Fatalf("commit stamped %d imported pending versions, want 1", res.Count)
	}

	ids := make([]abdm.RecordID, 0, len(all))
	for _, r := range all {
		ids = append(ids, r.ID)
	}
	dropped, err := rbDst.DropRecords(ids)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 6 {
		t.Fatalf("dropped %d records, want 6", dropped)
	}
	if dst.Len() != 0 {
		t.Fatalf("dst has %d records after drop, want 0", dst.Len())
	}
}

// TestRemoteDrain: a controller over TCP backends drains one of them live —
// the migration verbs run over the wire and reads stay exact.
func TestRemoteDrain(t *testing.T) {
	const n = 3
	dir := testDir(t)
	cfg := mbds.DefaultConfig(n)
	cfg.RequestTimeout = time.Second

	var execs []mbds.Executor
	for i := 0; i < n; i++ {
		store := kdb.NewStore(dir.Clone(), kdb.WithStrideIDs(uint64(i+1), n))
		srv, err := Listen("127.0.0.1:0", store)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		rb, err := Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = rb.Close() })
		execs = append(execs, rb)
	}
	sys, err := mbds.NewWithExecutors(dir, cfg, execs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)

	for i := 0; i < 30; i++ {
		if _, err := sys.Exec(abdl.NewInsert(employee(fmt.Sprintf("rd%03d", i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.DrainBackend(1); err != nil {
		t.Fatal(err)
	}
	if sys.Backends() != 2 {
		t.Fatalf("%d backends after remote drain, want 2", sys.Backends())
	}
	res, err := sys.Exec(abdl.NewRetrieve(nil, abdl.AllAttrs))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 30 {
		t.Fatalf("retrieve after remote drain = %d records, want 30", len(res.Records))
	}
	if got := sys.Len(); got != 30 {
		t.Fatalf("Len = %d after remote drain, want 30", got)
	}
}
