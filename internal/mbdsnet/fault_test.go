package mbdsnet

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/kdb"
	"mlds/internal/mbds"
	"mlds/internal/wire"
)

// droppyServer is a backend that, for the first `drops` requests, executes
// the request against its store but closes the connection without replying —
// modeling a backend that crashes between applying a request and
// acknowledging it. Subsequent requests are served normally.
type droppyServer struct {
	ln    net.Listener
	store *kdb.Store
	drops int32
	wg    sync.WaitGroup
}

func startDroppy(t *testing.T, store *kdb.Store, drops int32) *droppyServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d := &droppyServer{ln: ln, store: store, drops: drops}
	d.wg.Add(1)
	go d.accept()
	t.Cleanup(func() {
		_ = ln.Close()
		d.wg.Wait()
	})
	return d
}

func (d *droppyServer) addr() string { return d.ln.Addr().String() }

func (d *droppyServer) accept() {
	defer d.wg.Done()
	for {
		conn, err := d.ln.Accept()
		if err != nil {
			return
		}
		d.wg.Add(1)
		go d.serve(conn)
	}
}

func (d *droppyServer) serve(conn net.Conn) {
	defer d.wg.Done()
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		envp, err := wire.ReadEnvelope(br, 0)
		if err != nil {
			return
		}
		env := *envp
		apply := func() (*kdb.Result, error) {
			if env.Req == nil {
				return nil, nil
			}
			req, err := env.Req.ToRequest()
			if err != nil {
				return nil, err
			}
			return d.store.Exec(req)
		}
		if atomic.AddInt32(&d.drops, -1) >= 0 {
			_, _ = apply() // executed, but never acknowledged
			return
		}
		reply := wire.Envelope{Seq: env.Seq}
		switch env.Action {
		case "", "exec":
			res, err := apply()
			switch {
			case err != nil:
				reply.Err = err.Error()
			case res != nil:
				w := wire.FromResult(res)
				reply.Res = &w
			}
		case "len":
			reply.N = d.store.Len()
		}
		if err := wire.WriteEnvelope(bw, &reply); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

func employee(name string) *abdm.Record {
	return abdm.NewRecord("employee",
		abdm.Keyword{Attr: "name", Val: abdm.String(name)},
		abdm.Keyword{Attr: "dept", Val: abdm.String("CS")},
		abdm.Keyword{Attr: "salary", Val: abdm.Int(1)})
}

func TestDroppedInsertNotResent(t *testing.T) {
	// A fresh-key INSERT whose connection dies before the reply may have
	// been applied; resending would double-apply it. The client must
	// surface the ambiguity instead.
	store := kdb.NewStore(testDir(t).Clone())
	d := startDroppy(t, store, 1)
	rb, err := Dial(d.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()

	_, err = rb.Exec(abdl.NewInsert(employee("amb")))
	var amb *AmbiguousError
	if !errors.As(err, &amb) {
		t.Fatalf("err = %v, want AmbiguousError", err)
	}
	if !amb.MaybeApplied() || !amb.Transient() {
		t.Errorf("AmbiguousError flags wrong: %+v", amb)
	}
	if store.Len() != 1 {
		t.Fatalf("store has %d records, want exactly 1 (no double apply)", store.Len())
	}
}

func TestDroppedRetrieveResent(t *testing.T) {
	// Retrieves are idempotent: a mid-exchange failure is retried
	// transparently on a fresh connection.
	store := kdb.NewStore(testDir(t).Clone())
	if _, err := store.Insert(employee("safe")); err != nil {
		t.Fatal(err)
	}
	d := startDroppy(t, store, 1)
	rb, err := Dial(d.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()

	res, err := rb.Exec(abdl.NewRetrieve(nil, abdl.AllAttrs))
	if err != nil {
		t.Fatalf("idempotent retrieve not resent: %v", err)
	}
	if len(res.Records) != 1 {
		t.Errorf("retrieve after resend = %d records", len(res.Records))
	}
}

func TestDroppedForcedInsertResent(t *testing.T) {
	// A replica-pinned INSERT overwrites its own key, so re-execution is
	// harmless and the client resends it.
	store := kdb.NewStore(testDir(t).Clone())
	d := startDroppy(t, store, 1)
	rb, err := Dial(d.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()

	req := abdl.NewInsert(employee("pinned"))
	req.ForceID = 7
	if _, err := rb.Exec(req); err != nil {
		t.Fatalf("pinned insert not resent: %v", err)
	}
	// Applied twice (once per attempt) but at the same key: one record.
	if store.Len() != 1 {
		t.Fatalf("store has %d records, want 1", store.Len())
	}
}

func TestUnreachableBackendDownError(t *testing.T) {
	store := kdb.NewStore(testDir(t).Clone())
	srv, err := Listen("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = rb.Exec(abdl.NewRetrieve(nil, abdl.AllAttrs))
	var down *DownError
	if !errors.As(err, &down) {
		t.Fatalf("err = %v, want DownError", err)
	}
	if !down.Transient() {
		t.Error("DownError must be transient")
	}
}

// TestClusterSurvivesKilledBackend is the end-to-end acceptance scenario:
// with Replicas=1 over TCP backends, killing one backend mid-workload leaves
// retrieve results identical to the healthy run, Health reports the backend
// down, and a restarted backend is probed back up.
func TestClusterSurvivesKilledBackend(t *testing.T) {
	const n = 3
	dir := testDir(t)
	cfg := mbds.DefaultConfig(n)
	cfg.Replicas = 1
	cfg.RequestTimeout = 500 * time.Millisecond
	cfg.MaxRetries = 1
	cfg.RetryBackoff = time.Millisecond
	cfg.BreakerThreshold = 2
	cfg.ProbePeriod = 5 * time.Millisecond

	stores := make([]*kdb.Store, n)
	servers := make([]*BackendServer, n)
	var execs []mbds.Executor
	for i := 0; i < n; i++ {
		stores[i] = kdb.NewStore(dir.Clone())
		srv, err := Listen("127.0.0.1:0", stores[i])
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
		t.Cleanup(func() { _ = srv.Close() })
		rb, err := Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = rb.Close() })
		execs = append(execs, rb)
	}
	sys, err := mbds.NewWithExecutors(dir, cfg, execs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)

	names := func() []string {
		t.Helper()
		res, err := sys.Exec(abdl.NewRetrieve(abdm.And(
			abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("employee")},
		), "name"))
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, 0, len(res.Records))
		for _, sr := range res.Records {
			v, _ := sr.Rec.Get("name")
			out = append(out, v.AsString())
		}
		sort.Strings(out)
		return out
	}

	for i := 0; i < 30; i++ {
		if _, err := sys.Exec(abdl.NewInsert(employee(fmt.Sprintf("emp%03d", i)))); err != nil {
			t.Fatal(err)
		}
	}
	healthy := names()
	if len(healthy) != 30 {
		t.Fatalf("healthy retrieve = %d records", len(healthy))
	}

	// Kill backend 1 mid-workload.
	addr := servers[1].Addr()
	if err := servers[1].Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		got := names()
		if len(got) != len(healthy) {
			t.Fatalf("degraded retrieve %d = %d records, want %d", i, len(got), len(healthy))
		}
		for j := range got {
			if got[j] != healthy[j] {
				t.Fatalf("degraded retrieve differs at %d: %q vs %q", j, got[j], healthy[j])
			}
		}
	}
	if h := sys.Health()[1]; h.Up {
		t.Fatalf("killed backend not reported down: %+v", h)
	}

	// Writes keep landing while the backend is dead: every record has at
	// least one live replica holder.
	for i := 0; i < 10; i++ {
		if _, err := sys.Exec(abdl.NewInsert(employee(fmt.Sprintf("down%03d", i)))); err != nil {
			t.Fatalf("insert with dead backend: %v", err)
		}
	}
	if got := names(); len(got) != 40 {
		t.Fatalf("degraded retrieve after inserts = %d, want 40", len(got))
	}

	// Restart the backend on the same address and let the probe find it.
	srv2, err := Listen(addr, stores[1])
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	t.Cleanup(func() { _ = srv2.Close() })
	recovered := false
	for i := 0; i < 100; i++ {
		time.Sleep(10 * time.Millisecond)
		names()
		if sys.Health()[1].Up {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatalf("restarted backend never recovered: %+v", sys.Health()[1])
	}
	if got := names(); len(got) != 40 {
		t.Fatalf("post-recovery retrieve = %d, want 40", len(got))
	}
}

func TestDrainTypedRefusal(t *testing.T) {
	// A draining backend must answer exec traffic with a typed, retryable
	// refusal on the live connection — not the raw reset Close causes —
	// and the refusal must promise the request was never executed.
	store := kdb.NewStore(testDir(t).Clone())
	srv, err := Listen("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rb, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()

	if _, err := rb.Exec(abdl.NewInsert(employee("pre"))); err != nil {
		t.Fatal(err)
	}
	srv.Drain()
	if !srv.Draining() {
		t.Fatal("Draining() = false after Drain")
	}

	_, err = rb.Exec(abdl.NewInsert(employee("refused")))
	var de *DrainingError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want DrainingError", err)
	}
	if !de.Transient() {
		t.Error("DrainingError must be transient (safe to retry elsewhere)")
	}
	if ma, ok := err.(interface{ MaybeApplied() bool }); ok && ma.MaybeApplied() {
		t.Error("DrainingError must not claim maybe-applied: drained requests are never executed")
	}
	if _, err := rb.ExecBatch([]*abdl.Request{abdl.NewInsert(employee("b"))}); !errors.As(err, &de) {
		t.Fatalf("batch err = %v, want DrainingError", err)
	}
	if store.Len() != 1 {
		t.Fatalf("store has %d records, want 1 (refused inserts must not apply)", store.Len())
	}

	// Maintenance verbs keep working during drain: migration needs them.
	if n, err := rb.Len(); err != nil || n != 1 {
		t.Fatalf("Len during drain = %d, %v", n, err)
	}
	if _, _, _, err := rb.ExportSince(0, 0, 10); err != nil {
		t.Fatalf("ExportSince during drain: %v", err)
	}
}
