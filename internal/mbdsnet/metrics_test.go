package mbdsnet

import (
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/kdb"
	"mlds/internal/mbds"
	"mlds/internal/obs"
	"mlds/internal/univgen"
)

// promLine matches one sample of the Prometheus text exposition format
// (version 0.0.4): metric name, optional label set, and a float value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? ([-+0-9.eE]+|[-+]?Inf|NaN)$`)

// TestMetricsEndpointUnderFaults is the acceptance scenario: a replicated
// TCP cluster with a killed backend serves per-backend request, retry and
// breaker-trip counters over /metrics in valid Prometheus text format.
func TestMetricsEndpointUnderFaults(t *testing.T) {
	const backends = 3
	db, err := univgen.Generate(univgen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	servers := make([]*BackendServer, backends)
	var execs []mbds.Executor
	for i := 0; i < backends; i++ {
		srv, err := Listen("127.0.0.1:0", kdb.NewStore(db.AB.Dir.Clone()))
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
		defer srv.Close()
		srv.Instrument(reg, obs.L("backend", strconv.Itoa(i)))
		rb, err := Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer rb.Close()
		execs = append(execs, rb)
	}

	cfg := mbds.DefaultConfig(backends)
	cfg.Replicas = 1
	cfg.RequestTimeout = 500 * time.Millisecond
	cfg.MaxRetries = 1
	cfg.RetryBackoff = time.Millisecond
	cfg.BreakerThreshold = 2
	cfg.ProbePeriod = time.Hour // keep the dead backend down for the test
	cfg.Metrics = reg
	cfg.DBName = "university"
	sys, err := mbds.NewWithExecutors(db.AB.Dir, cfg, execs)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := db.Load(sys); err != nil {
		t.Fatal(err)
	}

	ops, err := ServeOps("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ops.Close()

	// Kill one backend and run retrievals: replication keeps the answers
	// whole while the controller records failures, a retry, and a breaker
	// trip for the dead backend.
	if err := servers[1].Close(); err != nil {
		t.Fatal(err)
	}
	query := abdl.NewRetrieve(abdm.And(abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("student")}), "major")
	for i := 0; i < 3; i++ {
		if _, err := sys.Exec(query); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get("http://" + ops.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	// Every non-comment line must be a well-formed sample.
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}

	sample := func(name string, labels string) float64 {
		prefix := name + "{" + labels + "} "
		for _, line := range strings.Split(text, "\n") {
			if strings.HasPrefix(line, prefix) {
				v, err := strconv.ParseFloat(strings.TrimPrefix(line, prefix), 64)
				if err != nil {
					t.Fatalf("%s: %v", line, err)
				}
				return v
			}
		}
		t.Errorf("no sample %s{%s} in exposition:\n%s", name, labels, text)
		return 0
	}

	// Per-backend counters: the live backends served requests; the dead one
	// accumulated failures, a retry, and a breaker trip.
	for i := 0; i < backends; i++ {
		labels := `backend="` + strconv.Itoa(i) + `",db="university"`
		reqs := sample("mlds_backend_requests_total", labels)
		if i != 1 && reqs == 0 {
			t.Errorf("backend %d served no requests", i)
		}
	}
	dead := `backend="1",db="university"`
	if sample("mlds_backend_failures_total", dead) == 0 {
		t.Error("dead backend recorded no failures")
	}
	if sample("mlds_backend_retries_total", dead) == 0 {
		t.Error("dead backend recorded no retries")
	}
	if sample("mlds_backend_breaker_trips_total", dead) == 0 {
		t.Error("dead backend recorded no breaker trips")
	}
	if sample("mlds_kernel_requests_total", `db="university"`) == 0 {
		t.Error("kernel recorded no requests")
	}

	// /healthz answers, and flips with the gate.
	hresp, err := http.Get("http://" + ops.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("GET /healthz: %s", hresp.Status)
	}
}
