package client

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"mlds/internal/core"
	"mlds/internal/txn"
	"mlds/internal/wire"
)

// OpenOption configures a remote session at open time.
type OpenOption func(*openCfg)

type openCfg struct{ snap bool }

// Snapshot opens the session in snapshot mode: every implicit statement
// reads a lock-free snapshot (core.SnapshotSession on the server side).
func Snapshot() OpenOption { return func(o *openCfg) { o.snap = true } }

// Open opens a remote session on the named database in the given language
// (same names and aliases as core.System.Open). The returned Session
// implements core.Session.
func (c *Client) Open(ctx context.Context, db, language string, opts ...OpenOption) (*Session, error) {
	var cfg openCfg
	for _, o := range opts {
		o(&cfg)
	}
	c.mu.Lock()
	c.nextSID++
	sid := c.nextSID
	c.mu.Unlock()
	m := &wire.Msg{Kind: wire.MsgOpen, SID: sid, DB: db, Language: language}
	if cfg.snap {
		m.Flags |= wire.SnapFlag
	}
	reply, err := c.roundTrip(ctx, m)
	if err != nil {
		return nil, err
	}
	if reply.Code != wire.CodeOK {
		return nil, remoteError(reply)
	}
	return &Session{c: c, sid: sid, db: db, lang: reply.Language}, nil
}

// Session is a remote session. It satisfies core.Session: statements,
// transaction control and outcomes behave exactly as in process, with the
// network in between.
type Session struct {
	c    *Client
	sid  uint32
	db   string
	lang string

	inTxn  atomic.Bool // mirrored from the server's InTxnFlag
	closed atomic.Bool
}

var _ core.Session = (*Session)(nil)

// ExecuteCtx executes one statement, bounded by the context.
func (s *Session) ExecuteCtx(ctx context.Context, text string) (*core.Outcome, error) {
	if s.closed.Load() {
		return nil, errors.New("client: session closed")
	}
	reply, err := s.c.roundTrip(ctx, &wire.Msg{Kind: wire.MsgExec, SID: s.sid, Stmt: text})
	if err != nil {
		return nil, err
	}
	s.inTxn.Store(reply.Flags&wire.InTxnFlag != 0)
	out := &core.Outcome{
		Language: reply.Language,
		Text:     text,
		Rendered: reply.Rendered,
		Code:     reply.Code,
		Wall:     time.Duration(reply.WallUS) * time.Microsecond,
		Sim:      time.Duration(reply.SimUS) * time.Microsecond,
	}
	if out.Language == "" {
		out.Language = s.lang
	}
	if reply.Watch != 0 {
		out.Watch = s.c.takeWatch(reply.Watch)
	}
	if reply.Code != wire.CodeOK {
		return out, remoteError(reply)
	}
	return out, nil
}

// Execute executes one statement under the client's default timeout
// (core.Session form). The wait derives from the client's lifetime context,
// so a concurrent Client.Close cancels it immediately.
func (s *Session) Execute(text string) (*core.Outcome, error) {
	ctx, cancel := s.c.opCtx()
	defer cancel()
	return s.ExecuteCtx(ctx, text)
}

// Language reports the session's language interface.
func (s *Session) Language() string { return s.lang }

// control runs one transaction-control statement, discarding the outcome.
func (s *Session) control(stmt string) error {
	_, err := s.Execute(stmt)
	return err
}

// Begin opens an explicit transaction.
func (s *Session) Begin() error { return s.control("BEGIN WORK") }

// BeginSnapshot opens an explicit read-only snapshot transaction.
func (s *Session) BeginSnapshot() error { return s.control("BEGIN WORK READ ONLY") }

// Commit commits the open explicit transaction.
func (s *Session) Commit() error { return s.control("COMMIT WORK") }

// Rollback aborts the open explicit transaction.
func (s *Session) Rollback() error { return s.control("ROLLBACK WORK") }

// InTxn reports whether an explicit transaction is open, as of the last
// reply seen from the server.
func (s *Session) InTxn() bool { return s.inTxn.Load() }

// Close closes the remote session, rolling back any open transaction.
func (s *Session) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	ctx, cancel := s.c.opCtx()
	defer cancel()
	reply, err := s.c.roundTrip(ctx, &wire.Msg{Kind: wire.MsgClose, SID: s.sid})
	if err != nil {
		return err
	}
	if reply.Code != wire.CodeOK {
		return remoteError(reply)
	}
	return nil
}

// Error is a typed failure from the server for codes that have no richer
// local form. Code classification (Retryable, NotExecuted) comes with it.
type Error struct {
	Code wire.Code
	Txn  uint64 // aborted transaction id, when the code is a txn abort
	Msg  string
}

func (e *Error) Error() string {
	if e.Msg != "" {
		return e.Msg
	}
	return fmt.Sprintf("mlds server error: %s", e.Code)
}

// Retryable reports whether retrying the request can succeed.
func (e *Error) Retryable() bool { return e.Code.Retryable() }

// NotExecuted reports the server's promise that the statement never ran, so
// retrying cannot double-apply it.
func (e *Error) NotExecuted() bool { return e.Code.NotExecuted() }

// remoteError reconstructs the richest local error form for a reply code,
// so remote callers keep using errors.Is/errors.As exactly as local ones:
// deadlocks come back as *txn.AbortedError wrapping txn.ErrDeadlock,
// catalog misses wrap core.ErrNoDatabase, and so on. Codes with no local
// analogue (draining, rate limits, backpressure) become *Error.
func remoteError(m *wire.Msg) error {
	switch m.Code {
	case wire.CodeOK:
		return nil
	case wire.CodeDeadlock:
		return &txn.AbortedError{ID: m.Txn, Cause: txn.ErrDeadlock}
	case wire.CodeLockTimeout:
		return &txn.AbortedError{ID: m.Txn, Cause: txn.ErrLockTimeout}
	case wire.CodeTxnAborted:
		return &txn.AbortedError{ID: m.Txn, Cause: errors.New(abortCause(m))}
	case wire.CodeReadOnly:
		return fmt.Errorf("%w (%s)", txn.ErrReadOnly, m.Code)
	case wire.CodeNoDatabase:
		return fmt.Errorf("%w: %s", core.ErrNoDatabase, m.Err)
	case wire.CodeWrongModel:
		return fmt.Errorf("%w: %s", core.ErrWrongModel, m.Err)
	case wire.CodeUnknownLanguage:
		return fmt.Errorf("%w: %s", core.ErrUnknownLanguage, m.Err)
	case wire.CodeNoTxn:
		return core.ErrNoTxn
	default:
		return &Error{Code: m.Code, Txn: m.Txn, Msg: m.Err}
	}
}

// abortCause strips the server-side AbortedError prefix ("txn N aborted: ")
// from the error text, so reconstructing the wrapper does not double it.
func abortCause(m *wire.Msg) string {
	prefix := fmt.Sprintf("txn %d aborted: ", m.Txn)
	if rest, ok := strings.CutPrefix(m.Err, prefix); ok {
		return rest
	}
	return m.Err
}
