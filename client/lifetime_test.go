package client_test

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"mlds/client"
	"mlds/internal/wire"
)

// fakeServer accepts one connection and answers the handshake and session
// opens, then applies mode to every later request: "silent" reads and
// discards them without ever replying (a hung server); "deaf" stops reading
// entirely (a stalled server whose socket buffers fill).
func fakeServer(t *testing.T, mode string) net.Addr {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			m, err := wire.ReadMsg(conn, 0)
			if err != nil {
				return
			}
			switch m.Kind {
			case wire.MsgHello, wire.MsgOpen:
				reply := &wire.Msg{Kind: m.Kind, Seq: m.Seq, Code: wire.CodeOK, Language: "daplex"}
				if err := wire.WriteMsg(conn, reply); err != nil {
					return
				}
			default:
				switch mode {
				case "silent":
					// Swallow the request; the client waits forever.
				case "deaf":
					// Stop servicing the socket altogether.
					for {
						time.Sleep(time.Hour)
					}
				}
			}
		}
	}()
	return ln.Addr()
}

// TestCloseCancelsInFlightOps: the context-free core.Session methods wait on
// the client's lifetime context, so Close must cancel an Execute blocked on
// a hung server immediately — not leave it to run out its 30s timeout.
func TestCloseCancelsInFlightOps(t *testing.T) {
	addr := fakeServer(t, "silent")
	c, err := client.Dial(context.Background(), addr.String())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := c.Open(context.Background(), "university", "daplex")
	if err != nil {
		t.Fatal(err)
	}

	const inflight = 3
	done := make(chan error, inflight)
	var started sync.WaitGroup
	for i := 0; i < inflight; i++ {
		started.Add(1)
		go func(i int) {
			started.Done()
			var err error
			switch i % 3 {
			case 0:
				_, err = sess.Execute("FOR EACH department PRINT dname;")
			case 1:
				err = sess.Begin()
			default:
				err = sess.Commit()
			}
			done <- err
		}(i)
	}
	started.Wait()
	time.Sleep(50 * time.Millisecond) // let the ops reach their waits
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	deadline := time.After(2 * time.Second)
	for i := 0; i < inflight; i++ {
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("in-flight op succeeded against a hung server")
			}
			if !errors.Is(err, context.Canceled) && !strings.Contains(err.Error(), "closed") {
				t.Fatalf("in-flight op failed with %v, want cancellation/closure", err)
			}
		case <-deadline:
			t.Fatal("Close did not cancel in-flight ops (still blocked after 2s)")
		}
	}
}

// TestWriteFailureFailsAllWaiters: a failed frame write desynchronizes the
// stream, so the whole connection must die — a waiter blocked mid-write and
// every queued request behind it return promptly instead of hanging to their
// timeouts.
func TestWriteFailureFailsAllWaiters(t *testing.T) {
	addr := fakeServer(t, "deaf")
	c, err := client.Dial(context.Background(), addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	sess, err := c.Open(context.Background(), "university", "daplex")
	if err != nil {
		t.Fatal(err)
	}

	// A statement large enough to overrun the socket buffers of a server
	// that stopped reading: the sender blocks inside the frame write.
	big := strings.Repeat("x", 8<<20)
	done := make(chan error, 2)
	go func() {
		_, err := sess.ExecuteCtx(context.Background(), big)
		done <- err
	}()
	go func() {
		_, err := sess.ExecuteCtx(context.Background(), big)
		done <- err
	}()
	time.Sleep(100 * time.Millisecond) // let both reach the write path

	// Severing the connection turns the blocked write into a hard error; the
	// client must fail the connection and wake every waiter.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("write against a dead connection succeeded")
			}
		case <-deadline:
			t.Fatal("write failure left waiters hanging")
		}
	}
	// The connection is terminally dead: new requests refuse immediately.
	start := time.Now()
	if err := c.Ping(context.Background()); err == nil {
		t.Fatal("ping succeeded on a failed connection")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("post-failure request took %v, want immediate refusal", elapsed)
	}
}
