package client_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"mlds/client"
	"mlds/internal/core"
	"mlds/internal/mbds"
	"mlds/internal/server"
	"mlds/internal/txn"
	"mlds/internal/univ"
	"mlds/internal/wire"
)

// startServer builds a lightly seeded system and serves it on loopback.
func startServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	sys := core.NewSystem(core.Config{Kernel: mbds.DefaultConfig(2)})
	t.Cleanup(sys.Close)
	if _, err := sys.CreateFunctional("university", univ.SchemaDDL); err != nil {
		t.Fatal(err)
	}
	dap, err := sys.Open("university", "daplex")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dap.Execute("CREATE department (dname := 'History', building := 'Hall H');"); err != nil {
		t.Fatal(err)
	}
	_ = dap.Close()
	if _, err := sys.CreateRelational("shop",
		"CREATE TABLE emp (ename CHAR(20) NOT NULL, pay INTEGER);"); err != nil {
		t.Fatal(err)
	}
	srv, err := server.Listen("127.0.0.1:0", sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv
}

func dial(t *testing.T, srv *server.Server, opts ...client.Option) *client.Client {
	t.Helper()
	c, err := client.Dial(context.Background(), srv.Addr(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestDialPingDatabases(t *testing.T) {
	srv := startServer(t, server.Config{})
	c := dial(t, srv)
	ctx := context.Background()
	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	dbs, err := c.Databases(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, db := range dbs {
		names = append(names, db.Name+"/"+db.Model)
	}
	got := strings.Join(names, " ")
	if !strings.Contains(got, "university/functional") || !strings.Contains(got, "shop/relational") {
		t.Errorf("Databases() = %s", got)
	}
}

func TestDialFailures(t *testing.T) {
	if _, err := client.Dial(context.Background(), "127.0.0.1:1"); err == nil {
		t.Error("dial to closed port succeeded")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := client.Dial(ctx, "127.0.0.1:1"); err == nil {
		t.Error("dial with canceled context succeeded")
	}
}

// TestSessionIsCoreSession drives the full core.Session surface remotely.
func TestSessionIsCoreSession(t *testing.T) {
	srv := startServer(t, server.Config{})
	c := dial(t, srv)
	ctx := context.Background()
	sess, err := c.Open(ctx, "university", "daplex")
	if err != nil {
		t.Fatal(err)
	}
	var _ core.Session = sess
	if sess.Language() != "daplex" {
		t.Errorf("Language() = %q", sess.Language())
	}

	out, err := sess.Execute("FOR EACH department PRINT dname;")
	if err != nil {
		t.Fatal(err)
	}
	if out.Code != wire.CodeOK || !strings.Contains(out.Rendered, "History") ||
		out.Language != "daplex" || out.Wall <= 0 {
		t.Errorf("outcome = %+v", out)
	}

	// Explicit transaction, mirrored InTxn, commit.
	if sess.InTxn() {
		t.Error("fresh session reports open txn")
	}
	if err := sess.Begin(); err != nil {
		t.Fatal(err)
	}
	if !sess.InTxn() {
		t.Error("InTxn false after Begin")
	}
	if _, err := sess.ExecuteCtx(ctx, "CREATE department (dname := 'Math', building := 'M');"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}
	if sess.InTxn() {
		t.Error("InTxn true after Commit")
	}

	// Rollback undoes.
	if err := sess.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ExecuteCtx(ctx, "CREATE department (dname := 'Gone', building := 'G');"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Rollback(); err != nil {
		t.Fatal(err)
	}
	out, err = sess.Execute("FOR EACH department PRINT dname;")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.Rendered, "Gone") || !strings.Contains(out.Rendered, "Math") {
		t.Errorf("rollback/commit mix-up: %q", out.Rendered)
	}

	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Execute("FOR EACH department PRINT dname;"); err == nil {
		t.Error("execute on closed session succeeded")
	}
	if err := sess.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestSnapshotSession(t *testing.T) {
	srv := startServer(t, server.Config{})
	c := dial(t, srv)
	ctx := context.Background()
	sess, err := c.Open(ctx, "university", "daplex", client.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ExecuteCtx(ctx, "FOR EACH department PRINT dname;"); err != nil {
		t.Fatalf("snapshot read: %v", err)
	}
	if _, err := sess.ExecuteCtx(ctx, "CREATE department (dname := 'X', building := 'X');"); !errors.Is(err, txn.ErrReadOnly) {
		t.Errorf("snapshot mutation: %v, want ErrReadOnly", err)
	}
}

func TestErrorReconstruction(t *testing.T) {
	srv := startServer(t, server.Config{})
	c := dial(t, srv)
	ctx := context.Background()
	if _, err := c.Open(ctx, "missing", "sql"); !errors.Is(err, core.ErrNoDatabase) {
		t.Errorf("no database: %v", err)
	}
	if _, err := c.Open(ctx, "shop", "daplex"); !errors.Is(err, core.ErrWrongModel) {
		t.Errorf("wrong model: %v", err)
	}
	if _, err := c.Open(ctx, "shop", "fortran"); !errors.Is(err, core.ErrUnknownLanguage) {
		t.Errorf("unknown language: %v", err)
	}
	sess, err := c.Open(ctx, "shop", "sql")
	if err != nil {
		t.Fatal(err)
	}
	var ce *client.Error
	if _, err := sess.ExecuteCtx(ctx, "SELEKT WRONG"); !errors.As(err, &ce) || ce.Code != wire.CodeParse {
		t.Errorf("parse error: %v", err)
	}
	if ce.Retryable() || ce.NotExecuted() {
		t.Error("parse errors are neither retryable nor admission refusals")
	}
	if err := sess.Commit(); !errors.Is(err, core.ErrNoTxn) {
		t.Errorf("commit without txn: %v", err)
	}
	if err := sess.Rollback(); !errors.Is(err, core.ErrNoTxn) {
		t.Errorf("rollback without txn: %v", err)
	}
	// The failed statement still carries its outcome code.
	out, _ := sess.ExecuteCtx(ctx, "SELEKT WRONG")
	if out == nil || out.Code != wire.CodeParse {
		t.Errorf("failed outcome = %+v", out)
	}
}

func TestContextCancellation(t *testing.T) {
	srv := startServer(t, server.Config{})
	c := dial(t, srv)
	sess, err := c.Open(context.Background(), "university", "daplex")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.ExecuteCtx(ctx, "FOR EACH department PRINT dname;"); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled exec: %v", err)
	}
	// The connection survives an abandoned request.
	if _, err := sess.ExecuteCtx(context.Background(), "FOR EACH department PRINT dname;"); err != nil {
		t.Errorf("exec after canceled request: %v", err)
	}
}

func TestServerGoneFailsPending(t *testing.T) {
	srv := startServer(t, server.Config{})
	c := dial(t, srv, client.WithTimeout(2*time.Second))
	sess, err := c.Open(context.Background(), "university", "daplex")
	if err != nil {
		t.Fatal(err)
	}
	_ = srv.Close()
	if _, err := sess.Execute("FOR EACH department PRINT dname;"); err == nil {
		t.Error("execute against closed server succeeded")
	}
	if err := c.Ping(context.Background()); err == nil {
		t.Error("ping against closed server succeeded")
	}
}

// TestConcurrentSessionsOneConn exercises the multiplexing paths under the
// race detector from the client side.
func TestConcurrentSessionsOneConn(t *testing.T) {
	srv := startServer(t, server.Config{})
	c := dial(t, srv)
	var wg sync.WaitGroup
	errCh := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			sess, err := c.Open(ctx, "university", "daplex")
			if err != nil {
				errCh <- err
				return
			}
			defer sess.Close()
			for k := 0; k < 3; k++ {
				if _, err := sess.ExecuteCtx(ctx, "FOR EACH department PRINT dname;"); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("session failed: %v", err)
	}
}
