package client

import (
	"context"
	"errors"
	"strings"

	"mlds/internal/cdc"
	"mlds/internal/wire"
)

// Remote watches. A WATCH statement executes like any other; its reply
// carries a server-assigned watch id, and the server then pushes MsgEvent
// batches for that id until either side closes the watch. The client read
// loop routes pushes into a cdc pipe (an unboundedly-buffered Watcher), so
// the watch surfaces exactly the local API: a channel of cdc.Change ending
// with an OpReady-terminated load, then live changes.

// registerWatch creates the pipe for a server watch id. Runs on the read
// loop before the WATCH reply is forwarded, so no push can miss it.
func (c *Client) registerWatch(id uint64) {
	w := cdc.NewPipe(func() { c.unwatch(id) })
	c.mu.Lock()
	c.watches[id] = w
	c.mu.Unlock()
}

// takeWatch fetches the pipe registered for a watch id (it stays registered
// for event routing).
func (c *Client) takeWatch(id uint64) *cdc.Watcher {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.watches[id]
}

// unwatch runs when the consumer closes a watch pipe: forget it and tell
// the server, so the pusher stops. Fire-and-forget — the watch is already
// gone locally, and a server that beat us to it answers CodeNoWatch.
func (c *Client) unwatch(id uint64) {
	c.mu.Lock()
	_, known := c.watches[id]
	delete(c.watches, id)
	c.mu.Unlock()
	if !known {
		return
	}
	go func() {
		ctx, cancel := c.opCtx()
		defer cancel()
		_, _ = c.roundTrip(ctx, &wire.Msg{Kind: wire.MsgWatchClose, Watch: id})
	}()
}

// feedWatch routes one MsgEvent batch into its watch pipe.
func (c *Client) feedWatch(m *wire.Msg) {
	w := c.takeWatch(m.Watch)
	if w == nil {
		return
	}
	for _, e := range m.Events {
		change, err := cdc.ChangeFromEvent(e)
		if err != nil {
			w.Fail(err)
			return
		}
		w.Feed(change)
	}
}

// endWatch handles a server-initiated MsgWatchClose: the watch ended on the
// server (session closed, maintenance error). Buffered events still drain,
// then the pipe's channel closes with the server's reason as Err.
func (c *Client) endWatch(m *wire.Msg) {
	c.mu.Lock()
	w := c.watches[m.Watch]
	delete(c.watches, m.Watch)
	c.mu.Unlock()
	if w == nil {
		return
	}
	if m.Code != wire.CodeOK {
		w.Fail(&Error{Code: m.Code, Msg: m.Err})
	} else {
		w.Fail(nil)
	}
}

// WatchCtx opens a change subscription on the session's database, bounded
// by the context (which covers only the open round trip; the returned
// watcher lives until closed). The query is a single-file SQL SELECT,
// optionally prefixed with WATCH.
func (s *Session) WatchCtx(ctx context.Context, query string) (*cdc.Watcher, error) {
	text := query
	if !strings.HasPrefix(strings.ToUpper(strings.TrimSpace(text)), "WATCH") {
		text = "WATCH " + text
	}
	out, err := s.ExecuteCtx(ctx, text)
	if err != nil {
		return nil, err
	}
	if out.Watch == nil {
		return nil, errors.New("client: statement opened no watch")
	}
	return out.Watch, nil
}

// Watch opens a change subscription under the client's default timeout
// (core.Session form).
func (s *Session) Watch(query string) (*cdc.Watcher, error) {
	ctx, cancel := s.c.opCtx()
	defer cancel()
	return s.WatchCtx(ctx, query)
}
