// Package client is the remote, context-first MLDS client: it speaks the
// framing-v2 client protocol (internal/wire) to a serving-tier front end
// (internal/server, cmd/mldsserver) and hands back sessions that implement
// core.Session — the same interface local sessions satisfy, so code written
// against an in-process system moves to the network unchanged.
//
// One Client multiplexes every session it opens over a single TCP
// connection: requests carry a session id and a connection-unique sequence
// number, replies interleave in completion order, and a background reader
// routes each reply to its waiter. All blocking calls take a
// context.Context; Session.Execute (the core.Session form, which has no
// context) applies the dial option WithTimeout.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mlds/internal/cdc"
	"mlds/internal/wire"
)

// Option configures a Client at dial time.
type Option func(*Client)

// WithTimeout sets the per-statement timeout used by the context-free
// core.Session methods (Execute, Begin, Commit, …). Default 30s; 0 means no
// timeout.
func WithTimeout(d time.Duration) Option { return func(c *Client) { c.timeout = d } }

// WithMaxFrame caps the size of inbound reply frames (default
// wire.DefaultMaxFrame).
func WithMaxFrame(n int) Option { return func(c *Client) { c.maxFrame = n } }

// DBInfo describes one database in the server's catalog.
type DBInfo = wire.DBInfo

// Client is one multiplexed connection to an MLDS server.
type Client struct {
	c        net.Conn
	br       *bufio.Reader
	timeout  time.Duration
	maxFrame int

	// base is the connection's lifetime context: every context the client
	// builds itself (the context-free core.Session methods) derives from it,
	// so Close cancels in-flight Begin/Commit/Execute waits instead of
	// leaving them to run out their timeouts.
	base   context.Context
	cancel context.CancelFunc

	wmu sync.Mutex // serializes frame writes
	bw  *bufio.Writer

	mu      sync.Mutex
	seq     uint64
	nextSID uint32
	pending map[uint64]chan *wire.Msg
	watches map[uint64]*cdc.Watcher // live watch pipes, keyed by server watch id
	closed  bool
	err     error // terminal connection error, set once

	draining atomic.Bool
}

// Dial connects and performs the protocol handshake. The context bounds the
// whole dial, connection included.
func Dial(ctx context.Context, addr string, opts ...Option) (*Client, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		c:       nc,
		br:      bufio.NewReader(nc),
		bw:      bufio.NewWriter(nc),
		timeout: 30 * time.Second,
		pending: make(map[uint64]chan *wire.Msg),
		watches: make(map[uint64]*cdc.Watcher),
	}
	// The dial context bounds the dial only; the connection's own lifetime
	// context starts fresh from it (cancelled by Close, not by the dialer's
	// deadline expiring later).
	c.base, c.cancel = context.WithCancel(context.WithoutCancel(ctx))
	for _, o := range opts {
		o(c)
	}
	go c.readLoop()
	if _, err := c.roundTrip(ctx, &wire.Msg{Kind: wire.MsgHello}); err != nil {
		_ = c.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	return c, nil
}

// readLoop routes every reply to its waiter until the connection dies, then
// fails all waiters with the terminal error. Server pushes (MsgEvent,
// server-initiated MsgWatchClose) never park the loop: watch pipes buffer
// without bound, so one slow watch consumer cannot stall the other sessions
// multiplexed on the connection.
func (c *Client) readLoop() {
	for {
		m, err := wire.ReadMsg(c.br, c.maxFrame)
		if err != nil {
			c.fail(err)
			return
		}
		if m.Flags&wire.DrainingFlag != 0 {
			c.draining.Store(true)
		}
		switch m.Kind {
		case wire.MsgEvent:
			c.feedWatch(m)
			continue
		case wire.MsgWatchClose:
			c.endWatch(m)
			continue
		}
		if m.Kind == wire.MsgReply && m.Watch != 0 {
			// The reply to a WATCH statement: register its pipe before the
			// waiter sees the reply, so pushed events arriving immediately
			// after have somewhere to go.
			c.registerWatch(m.Watch)
		}
		c.mu.Lock()
		ch := c.pending[m.Seq]
		delete(c.pending, m.Seq)
		c.mu.Unlock()
		if ch != nil {
			ch <- m
		}
	}
}

// fail marks the connection dead, wakes every waiter and fails every watch.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = make(map[uint64]chan *wire.Msg)
	watches := c.watches
	c.watches = make(map[uint64]*cdc.Watcher)
	c.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
	for _, w := range watches {
		w.Fail(err)
	}
}

// roundTrip sends one request and waits for its reply, the context, or
// connection death.
func (c *Client) roundTrip(ctx context.Context, m *wire.Msg) (*wire.Msg, error) {
	ch := make(chan *wire.Msg, 1)
	c.mu.Lock()
	if c.closed || c.err != nil {
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = errors.New("client: connection closed")
		}
		return nil, err
	}
	c.seq++
	m.Seq = c.seq
	c.pending[m.Seq] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := wire.WriteMsg(c.bw, m)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		// A failed write may have left a partial frame on the wire: the
		// stream is desynchronized, so the whole connection is dead — fail
		// every waiter now rather than letting them hang to their timeouts.
		c.mu.Lock()
		delete(c.pending, m.Seq)
		c.mu.Unlock()
		c.fail(err)
		_ = c.c.Close()
		return nil, err
	}

	select {
	case reply, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			if err == nil {
				err = errors.New("client: connection closed")
			}
			return nil, err
		}
		return reply, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, m.Seq)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// withTimeout applies the client's default statement timeout for the
// context-free core.Session methods.
func (c *Client) withTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.timeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, c.timeout)
}

// opCtx builds the context for a context-free core.Session call: the
// client's lifetime context (so Close cancels the wait) bounded by the
// default statement timeout.
func (c *Client) opCtx() (context.Context, context.CancelFunc) {
	return c.withTimeout(c.base)
}

// Ping round-trips the connection.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.roundTrip(ctx, &wire.Msg{Kind: wire.MsgPing})
	return err
}

// Databases lists the server's catalog.
func (c *Client) Databases(ctx context.Context) ([]DBInfo, error) {
	reply, err := c.roundTrip(ctx, &wire.Msg{Kind: wire.MsgListDBs})
	if err != nil {
		return nil, err
	}
	if reply.Code != wire.CodeOK {
		return nil, remoteError(reply)
	}
	return reply.DBs, nil
}

// Draining reports whether any reply has carried the server's draining
// flag: finish open transactions and redial elsewhere.
func (c *Client) Draining() bool { return c.draining.Load() }

// Close tears down the connection; server-side sessions are closed and
// their open transactions rolled back.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.cancel()
	err := c.c.Close()
	c.fail(errors.New("client: connection closed"))
	return err
}
