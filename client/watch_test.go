package client_test

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mlds/client"
	"mlds/internal/cdc"
	"mlds/internal/core"
	"mlds/internal/kc"
	"mlds/internal/mbds"
	"mlds/internal/server"
	"mlds/internal/wire"
)

// watchServer builds a system whose shop database journals to a file — the
// lossless resync path a network watch rides on — and serves it on loopback.
// The system is returned too, so tests can drive local sessions (e.g. writes
// after a drain, which refuses new wire statements).
func watchServer(t *testing.T, cfg server.Config) (*server.Server, *core.System) {
	t.Helper()
	sys := core.NewSystem(core.Config{Kernel: mbds.DefaultConfig(2)})
	t.Cleanup(sys.Close)
	if _, err := sys.CreateRelational("shop",
		"CREATE TABLE emp (ename CHAR(20) NOT NULL, pay INTEGER);"); err != nil {
		t.Fatal(err)
	}
	db, ok := sys.Database("shop")
	if !ok {
		t.Fatal("shop vanished")
	}
	jf, err := kc.OpenJournalFile(filepath.Join(t.TempDir(), "shop.journal"))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Ctrl.AttachJournalFile(jf); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jf.Close() })
	srv, err := server.Listen("127.0.0.1:0", sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, sys
}

// recvChange reads one change from a remote watch with a deadline.
func recvChange(t *testing.T, w *cdc.Watcher) cdc.Change {
	t.Helper()
	select {
	case c, ok := <-w.C:
		if !ok {
			t.Fatalf("watch closed early: %v", w.Err())
		}
		return c
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for a pushed change")
	}
	panic("unreachable")
}

// drainRemoteLoad consumes the initial load of a remote watch up to OpReady,
// returning the loaded enames.
func drainRemoteLoad(t *testing.T, w *cdc.Watcher) []string {
	t.Helper()
	var names []string
	for {
		c := recvChange(t, w)
		switch c.Op {
		case cdc.OpLoad:
			v, _ := c.Rec.Get("ename")
			names = append(names, v.AsString())
		case cdc.OpReady:
			return names
		default:
			t.Fatalf("unexpected %s during initial load", c.Op)
		}
	}
}

// TestWatchOverWire: the full remote watch lifecycle — snapshot load, pushed
// inserts, membership transitions from updates, and a clean client-side close.
func TestWatchOverWire(t *testing.T) {
	srv, _ := watchServer(t, server.Config{})
	c := dial(t, srv)
	ctx := context.Background()

	writer, err := c.Open(ctx, "shop", "sql")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Execute("INSERT INTO emp (ename, pay) VALUES ('Ann', 900)"); err != nil {
		t.Fatal(err)
	}

	watcher, err := c.Open(ctx, "shop", "sql")
	if err != nil {
		t.Fatal(err)
	}
	w, err := watcher.Watch("SELECT ename, pay FROM emp WHERE pay >= 800")
	if err != nil {
		t.Fatal(err)
	}
	if got := drainRemoteLoad(t, w); len(got) != 1 || got[0] != "Ann" {
		t.Fatalf("initial load = %v, want [Ann]", got)
	}

	// An insert into the predicate pushes an insert event.
	if _, err := writer.Execute("INSERT INTO emp (ename, pay) VALUES ('Bob', 850)"); err != nil {
		t.Fatal(err)
	}
	ev := recvChange(t, w)
	if v, _ := ev.Rec.Get("ename"); ev.Op != cdc.OpInsert || v.AsString() != "Bob" {
		t.Fatalf("after insert: %s, want insert Bob", ev)
	}
	// An update out of the predicate pushes a delete.
	if _, err := writer.Execute("UPDATE emp SET pay = 100 WHERE ename = 'Ann'"); err != nil {
		t.Fatal(err)
	}
	if ev := recvChange(t, w); ev.Op != cdc.OpDelete {
		t.Fatalf("after update-out: %s, want delete", ev)
	}
	// An invisible write (outside the predicate) pushes nothing; the next
	// visible one arrives alone.
	if _, err := writer.Execute("INSERT INTO emp (ename, pay) VALUES ('Eve', 10)"); err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Execute("UPDATE emp SET pay = 975 WHERE ename = 'Eve'"); err != nil {
		t.Fatal(err)
	}
	ev = recvChange(t, w)
	if v, _ := ev.Rec.Get("ename"); ev.Op != cdc.OpInsert || v.AsString() != "Eve" {
		t.Fatalf("after update-in: %s, want insert Eve", ev)
	}

	w.Close()
	w.Close() // idempotent
	for range w.C {
	}
	if err := w.Err(); err != nil {
		t.Fatalf("closed watch reports error: %v", err)
	}
}

// TestWatchMidWriteStorm is the subsystem's acceptance gate: a watch opened
// over the network in the middle of a multi-session write storm delivers a
// snapshot-consistent initial load and then every acknowledged commit after
// it — each row exactly once, no gaps, no duplicates.
func TestWatchMidWriteStorm(t *testing.T) {
	srv, _ := watchServer(t, server.Config{})
	ctx := context.Background()

	const writers, perWriter = 4, 75
	wc := dial(t, srv)
	var (
		mu    sync.Mutex
		acked = make(map[int64]bool) // pay values whose INSERT was acknowledged
	)
	started := make(chan struct{}) // closed once the storm is under way
	var once sync.Once
	var wg sync.WaitGroup
	for wr := 0; wr < writers; wr++ {
		sess, err := wc.Open(ctx, "shop", "sql")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(wr int, sess *client.Session) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				pay := int64(wr*10000 + i + 1)
				stmt := fmt.Sprintf("INSERT INTO emp (ename, pay) VALUES ('w%d', %d)", wr, pay)
				if _, err := sess.Execute(stmt); err != nil {
					t.Errorf("writer %d: %v", wr, err)
					return
				}
				mu.Lock()
				acked[pay] = true
				n := len(acked)
				mu.Unlock()
				if n >= 20 {
					once.Do(func() { close(started) })
				}
			}
		}(wr, sess)
	}

	// Open the watch mid-storm, from its own connection.
	<-started
	watchConn := dial(t, srv)
	sess, err := watchConn.Open(ctx, "shop", "sql")
	if err != nil {
		t.Fatal(err)
	}
	w, err := sess.Watch("SELECT ename, pay FROM emp WHERE pay >= 0")
	if err != nil {
		t.Fatal(err)
	}

	// Consume: loads up to Ready, then pushed inserts. Every pay value must
	// arrive exactly once, at non-decreasing journal positions.
	seen := make(map[int64]bool)
	ready := false
	var lastPos uint64
	deadline := time.After(60 * time.Second)
	record := func(c cdc.Change) {
		v, ok := c.Rec.Get("pay")
		if !ok {
			t.Fatalf("change without pay: %s", c)
		}
		pay := v.AsInt()
		if seen[pay] {
			t.Fatalf("pay %d delivered twice (op %s)", pay, c.Op)
		}
		seen[pay] = true
		if c.Pos < lastPos {
			t.Fatalf("position went backwards: %d after %d", c.Pos, lastPos)
		}
		lastPos = c.Pos
	}
	wg.Wait() // storm done: the full acked set is now fixed
	mu.Lock()
	want := len(acked)
	mu.Unlock()
	if want != writers*perWriter {
		t.Fatalf("only %d of %d inserts acknowledged", want, writers*perWriter)
	}
	for len(seen) < want {
		select {
		case c, ok := <-w.C:
			if !ok {
				t.Fatalf("watch died after %d/%d rows: %v", len(seen), want, w.Err())
			}
			switch c.Op {
			case cdc.OpLoad:
				if ready {
					t.Fatalf("load row after ready: %s", c)
				}
				record(c)
			case cdc.OpReady:
				ready = true
			case cdc.OpInsert:
				if !ready {
					t.Fatalf("insert before ready: %s", c)
				}
				record(c)
			default:
				t.Fatalf("unexpected %s mid-storm", c.Op)
			}
		case <-deadline:
			t.Fatalf("delivered %d of %d rows before timeout", len(seen), want)
		}
	}
	mu.Lock()
	for pay := range acked {
		if !seen[pay] {
			t.Errorf("acknowledged pay %d never delivered", pay)
		}
	}
	mu.Unlock()
	w.Close()
}

// TestWatchSurvivesDrain: draining refuses new statements over the wire but
// established watches keep pushing until the connection goes away.
func TestWatchSurvivesDrain(t *testing.T) {
	srv, sys := watchServer(t, server.Config{})
	c := dial(t, srv)
	ctx := context.Background()

	sess, err := c.Open(ctx, "shop", "sql")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Execute("INSERT INTO emp (ename, pay) VALUES ('Ann', 900)"); err != nil {
		t.Fatal(err)
	}
	w, err := sess.Watch("SELECT ename, pay FROM emp WHERE pay >= 800")
	if err != nil {
		t.Fatal(err)
	}
	if got := drainRemoteLoad(t, w); len(got) != 1 {
		t.Fatalf("initial load = %v", got)
	}

	srv.Drain()
	// New wire statements are refused...
	if _, err := sess.Execute("INSERT INTO emp (ename, pay) VALUES ('Nix', 850)"); err == nil {
		t.Fatal("draining server accepted a statement")
	}
	// ...but a local write on the same system still reaches the watch.
	local, err := sys.Open("shop", "sql")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := local.Execute("INSERT INTO emp (ename, pay) VALUES ('Cy', 850)"); err != nil {
		t.Fatal(err)
	}
	_ = local.Close()
	ev := recvChange(t, w)
	if v, _ := ev.Rec.Get("ename"); ev.Op != cdc.OpInsert || v.AsString() != "Cy" {
		t.Fatalf("after drain: %s, want insert Cy", ev)
	}
	w.Close()
}

// TestWatchPerConnLimit: the per-connection cap refuses the excess WATCH with
// a retryable, not-executed code, and closing a watch frees its slot.
func TestWatchPerConnLimit(t *testing.T) {
	srv, _ := watchServer(t, server.Config{MaxWatchesPerConn: 1})
	c := dial(t, srv)
	sess, err := c.Open(context.Background(), "shop", "sql")
	if err != nil {
		t.Fatal(err)
	}
	w1, err := sess.Watch("SELECT ename, pay FROM emp WHERE pay >= 0")
	if err != nil {
		t.Fatal(err)
	}
	_, err = sess.Watch("SELECT ename, pay FROM emp WHERE pay >= 100")
	var re *client.Error
	if !errors.As(err, &re) || re.Code != wire.CodeWatchLimit {
		t.Fatalf("over-limit watch: %v, want CodeWatchLimit", err)
	}
	if !re.Retryable() || !re.NotExecuted() {
		t.Fatalf("CodeWatchLimit classified %+v, want retryable and not-executed", re)
	}

	// Closing the first watch frees the slot; the close round-trips
	// asynchronously, so retry briefly.
	w1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		w2, err := sess.Watch("SELECT ename, pay FROM emp WHERE pay >= 0")
		if err == nil {
			w2.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed after close: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWatchFailsOnClientClose: closing the client fails its live watches.
func TestWatchFailsOnClientClose(t *testing.T) {
	srv, _ := watchServer(t, server.Config{})
	c, err := client.Dial(context.Background(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := c.Open(context.Background(), "shop", "sql")
	if err != nil {
		t.Fatal(err)
	}
	w, err := sess.Watch("SELECT ename, pay FROM emp WHERE pay >= 0")
	if err != nil {
		t.Fatal(err)
	}
	_ = c.Close()
	for range w.C {
	}
	if w.Err() == nil {
		t.Fatal("watch survived client close without error")
	}
}

// TestWatchFailsOnServerClose: a server shutdown tears the connection and the
// watch fails rather than hanging.
func TestWatchFailsOnServerClose(t *testing.T) {
	srv, _ := watchServer(t, server.Config{})
	c := dial(t, srv)
	sess, err := c.Open(context.Background(), "shop", "sql")
	if err != nil {
		t.Fatal(err)
	}
	w, err := sess.Watch("SELECT ename, pay FROM emp WHERE pay >= 0")
	if err != nil {
		t.Fatal(err)
	}
	drainRemoteLoad(t, w)
	_ = srv.Close()
	select {
	case <-time.After(10 * time.Second):
		t.Fatal("watch channel still open 10s after server close")
	case _, ok := <-w.C:
		for ok {
			_, ok = <-w.C
		}
	}
	if w.Err() == nil {
		t.Fatal("watch ended cleanly despite server close")
	}
}
