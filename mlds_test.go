package mlds

import (
	"errors"
	"strings"
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	sys := New(KernelWith(2))
	defer sys.Close()

	db, err := sys.CreateFunctional("university", UniversityDDL)
	if err != nil {
		t.Fatal(err)
	}
	n, err := PopulateUniversity(db, SmallUniversity())
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing loaded")
	}

	// CODASYL-DML over the functional database.
	dml, err := sys.OpenDML("university")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dml.Execute("MOVE 'Advanced Database' TO title IN course"); err != nil {
		t.Fatal(err)
	}
	out, err := dml.Execute("FIND ANY course USING title IN course")
	if err != nil {
		t.Fatal(err)
	}
	if !out.DML.Found {
		t.Fatal("course not found")
	}
	got, err := dml.Execute("GET course")
	if err != nil {
		t.Fatal(err)
	}
	text := FormatOutcome(got.DML, db.Net)
	if !strings.Contains(text, "'Advanced Database'") {
		t.Errorf("formatted outcome: %s", text)
	}

	// Daplex over the same database.
	dap, err := sys.OpenDaplex("university")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := dap.Execute("FOR EACH course WHERE credits >= 4 PRINT title, credits;")
	if err != nil {
		t.Fatal(err)
	}
	table := FormatRows(rows.Rows, []string{"title", "credits"})
	if !strings.Contains(table, "credits") {
		t.Errorf("formatted rows: %s", table)
	}

	// Raw ABDL over the same database.
	res, err := db.ExecABDL("RETRIEVE ((FILE = course)) (COUNT(title))")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 || res.Groups[0].Aggs[0].Val.AsInt() != int64(SmallUniversity().Courses) {
		t.Errorf("ABDL count: %s", FormatResult(res))
	}

	if SimTime(db) <= 0 {
		t.Error("simulated kernel time should accumulate")
	}
}

func TestValueConstructors(t *testing.T) {
	if Int(3).AsInt() != 3 || Float(2.5).AsFloat() != 2.5 || String("x").AsString() != "x" || !Null().IsNull() {
		t.Error("value constructors broken")
	}
}

// TestPublicTransactionSurface: the re-exported transaction API — session
// verbs, the unified Session methods, and the error sentinels — works
// through the package facade.
func TestPublicTransactionSurface(t *testing.T) {
	sys := New(KernelWith(2))
	defer sys.Close()
	if _, err := sys.CreateFunctional("u", UniversityDDL); err != nil {
		t.Fatal(err)
	}
	sess, err := sys.OpenDaplex("u")
	if err != nil {
		t.Fatal(err)
	}
	var s Session = sess
	if out, err := s.Execute("BEGIN WORK"); err != nil || out.Rendered != "begin" {
		t.Fatalf("BEGIN WORK: %v, rendered %q", err, out.Rendered)
	}
	if !s.InTxn() {
		t.Fatal("InTxn false after BEGIN WORK")
	}
	if err := s.Rollback(); err != nil {
		t.Fatal(err)
	}
	var ae *TxnAbortedError
	if errors.As(errors.New("x"), &ae) {
		t.Fatal("errors.As matched a plain error")
	}
	if ErrDeadlock == nil || ErrLockTimeout == nil {
		t.Fatal("transaction sentinels missing")
	}
}
