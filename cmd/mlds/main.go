// mlds is the interactive MLDS shell over a functional database: it loads
// the University database (or a user schema) and accepts statements for the
// three interfaces that serve it — CODASYL-DML by default, Daplex with a
// \daplex prefix, raw ABDL with \abdl. (Relational and hierarchical
// databases are served through the library API and examples/fivemodels.)
//
// Usage:
//
//	mlds                      start with the populated University database
//	mlds -schema my.daplex    start with a user functional schema (empty)
//	mlds -backends 8          size the kernel
//
// Shell commands:
//
//	FIND ANY course USING title IN course     CODASYL-DML statement
//	BEGIN WORK / COMMIT / ROLLBACK            transaction control (DML session)
//	\daplex FOR EACH course PRINT title;      Daplex statement
//	\abdl RETRIEVE ((FILE = course)) (title)  raw kernel request
//	\schema                                   show the transformed network DDL
//	\cit                                      show the currency indicator table
//	\quit
//
// With a transaction open the prompt changes to "mlds*>"; statements then
// accumulate locks and undo until COMMIT or ROLLBACK. Without one, every
// statement auto-commits.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"mlds"
)

func main() {
	schemaFile := flag.String("schema", "", "Daplex schema file (default: built-in University, populated)")
	backends := flag.Int("backends", 4, "kernel backends per database")
	runFile := flag.String("run", "", "execute a CODASYL-DML transaction file and exit")
	flag.Parse()

	sys := mlds.New(mlds.KernelWith(*backends))
	defer sys.Close()

	ddl := mlds.UniversityDDL
	populate := true
	if *schemaFile != "" {
		data, err := os.ReadFile(*schemaFile)
		if err != nil {
			fatal(err)
		}
		ddl = string(data)
		populate = false
	}
	db, err := sys.CreateFunctional("main", ddl)
	if err != nil {
		fatal(err)
	}
	if populate {
		if _, err := mlds.PopulateUniversity(db, mlds.SmallUniversity()); err != nil {
			fatal(err)
		}
	}
	dml, err := sys.OpenDML("main")
	if err != nil {
		fatal(err)
	}
	dap, err := sys.OpenDaplex("main")
	if err != nil {
		fatal(err)
	}

	if *runFile != "" {
		data, err := os.ReadFile(*runFile)
		if err != nil {
			fatal(err)
		}
		outs, err := dml.RunScript(string(data))
		for _, out := range outs {
			for _, req := range out.Requests {
				fmt.Println("  ->", req)
			}
			fmt.Println(mlds.FormatOutcome(out, db.Net))
		}
		if err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("MLDS shell — functional database %q on %d backends\n", db.Name, db.Kernel.Backends())
	fmt.Println(`CODASYL-DML by default; BEGIN WORK/COMMIT/ROLLBACK; \daplex, \abdl, \schema, \cit, \quit`)
	in := bufio.NewScanner(os.Stdin)
	for {
		// The starred prompt marks an open transaction on the DML session.
		if dml.InTxn() {
			fmt.Print("mlds*> ")
		} else {
			fmt.Print("mlds> ")
		}
		if !in.Scan() {
			return
		}
		line := strings.TrimSpace(in.Text())
		switch {
		case line == "":
			continue
		case line == `\quit` || line == `\q`:
			return
		case line == `\schema`:
			fmt.Println(db.Net.DDL())
		case line == `\cit`:
			fmt.Println(dml.Tr.CIT())
		case strings.HasPrefix(line, `\daplex `):
			out, err := dap.Execute(strings.TrimPrefix(line, `\daplex `))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println(out.Rendered)
		case strings.HasPrefix(line, `\abdl `):
			res, err := db.ExecABDL(strings.TrimPrefix(line, `\abdl `))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println(mlds.FormatResult(res))
		default:
			out, err := dml.Execute(line)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			// Transaction-control verbs have no DML payload.
			if out.DML != nil {
				for _, req := range out.DML.Requests {
					fmt.Println("  ->", req)
				}
			}
			fmt.Println(out.Rendered)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mlds:", err)
	os.Exit(1)
}
