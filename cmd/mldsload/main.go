// mldsload generates a deterministic University database instance, loads it
// into a multi-backend kernel, and reports the load statistics: kernel
// records per file and per backend partition.
//
// Usage:
//
//	mldsload -students 180 -faculty 24 -courses 48 -backends 4
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/univgen"
)

func main() {
	var cfg univgen.Config
	base := univgen.SmallConfig()
	flag.IntVar(&cfg.Departments, "departments", base.Departments, "department entities")
	flag.IntVar(&cfg.Courses, "courses", base.Courses, "course entities")
	flag.IntVar(&cfg.Faculty, "faculty", base.Faculty, "faculty entities")
	flag.IntVar(&cfg.Students, "students", base.Students, "student entities")
	flag.IntVar(&cfg.Staff, "staff", base.Staff, "support staff entities")
	flag.IntVar(&cfg.EnrollPerStudent, "enroll", base.EnrollPerStudent, "enrollments per student")
	flag.IntVar(&cfg.TeachPerFaculty, "teach", base.TeachPerFaculty, "courses taught per faculty")
	backends := flag.Int("backends", 4, "kernel backends")
	flag.Parse()

	db, err := univgen.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	sys, err := db.NewKernel(*backends)
	if err != nil {
		fatal(err)
	}
	defer sys.Close()
	n, err := db.Load(sys)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %d kernel records (max key %d)\n\n", n, db.Instance.MaxKey())

	fmt.Println("records per file:")
	files := db.AB.Dir.Files()
	sort.Strings(files)
	for _, f := range files {
		res, err := sys.Exec(abdl.NewRetrieve(abdm.And(
			abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String(f)},
		), abdm.FileAttr))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  %-16s %6d\n", f, len(res.Records))
	}

	fmt.Println("\nrecords per backend partition:")
	for i, sz := range sys.PartitionSizes() {
		fmt.Printf("  backend %d: %6d\n", i, sz)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mldsload:", err)
	os.Exit(1)
}
