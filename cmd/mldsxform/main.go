// mldsxform runs the MLDS schema transformer on a Daplex schema: it prints
// the functional schema summary, the transformed network DDL (the shape of
// the thesis's Figure 5.1), the set provenance table, and the AB(functional)
// kernel templates (Figure 3.3).
//
// Usage:
//
//	mldsxform                 transform the built-in University schema
//	mldsxform schema.daplex   transform a schema file
//	mldsxform -show net       print only the network DDL
package main

import (
	"flag"
	"fmt"
	"os"

	"mlds/internal/daplex"
	"mlds/internal/univ"
	"mlds/internal/xform"
)

func main() {
	show := flag.String("show", "all", "what to print: functional, net, sets, ab, all")
	flag.Parse()

	src := univ.SchemaDDL
	if flag.NArg() > 0 {
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(data)
	}

	fun, err := daplex.ParseSchema(src)
	if err != nil {
		fatal(err)
	}
	m, err := xform.FunToNet(fun)
	if err != nil {
		fatal(err)
	}
	ab, err := xform.DeriveAB(m)
	if err != nil {
		fatal(err)
	}

	want := func(section string) bool { return *show == "all" || *show == section }
	if want("functional") {
		fmt.Printf("-- functional schema --\n%s\n\n", fun)
	}
	if want("net") {
		fmt.Printf("-- transformed network schema (Figure 5.1) --\n%s\n", m.Net.DDL())
	}
	if want("sets") {
		fmt.Printf("-- set provenance --\n%s\n", m.Describe())
	}
	if want("ab") {
		fmt.Printf("-- AB(functional) kernel templates (Figure 3.3) --\n%s\n", ab.Describe())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mldsxform:", err)
	os.Exit(1)
}
