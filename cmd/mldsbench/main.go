// mldsbench regenerates the paper's figures, tables and claims: the schema
// figures (2.1, 3.3, 5.1–5.5), the Chapter VI translation walkthrough, the
// two MBDS performance sweeps, the cross-model equivalence check, and the
// design-choice ablations.
//
// Usage:
//
//	mldsbench            run every experiment
//	mldsbench -exp e6    run one experiment (e1..e11, a1..a3)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mlds/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "run a single experiment (e1..e11, a1..a3)")
	flag.Parse()

	runners := map[string]func() *experiments.Report{
		"e1":  experiments.E1SchemaParse,
		"e2":  experiments.E2Transform,
		"e3":  experiments.E3ABMapping,
		"e4":  experiments.E4EntitySubtypeGoldens,
		"e5":  experiments.E5Translations,
		"e6":  experiments.E6BackendsScaling,
		"e7":  experiments.E7CapacityGrowth,
		"e8":  experiments.E8CrossModel,
		"e9":  experiments.E9SharedKernel,
		"e10": experiments.E10FiveInterfaces,
		"e11": experiments.E11FaultTolerance,
		"a1":  experiments.AblationIndexVsScan,
		"a2":  experiments.AblationParallelVsSerial,
		"a3":  experiments.AblationDirectVsPreprocess,
	}

	if *exp != "" {
		run, ok := runners[strings.ToLower(*exp)]
		if !ok {
			fmt.Fprintf(os.Stderr, "mldsbench: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		r := run()
		fmt.Println(r)
		if !r.OK {
			os.Exit(1)
		}
		return
	}

	failed := 0
	for _, r := range experiments.All() {
		fmt.Println(r)
		fmt.Println()
		if !r.OK {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "mldsbench: %d experiment(s) mismatched\n", failed)
		os.Exit(1)
	}
}
