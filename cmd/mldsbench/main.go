// mldsbench regenerates the paper's figures, tables and claims: the schema
// figures (2.1, 3.3, 5.1–5.5), the Chapter VI translation walkthrough, the
// two MBDS performance sweeps, the cross-model equivalence check, the
// transaction subsystem's group-commit economics, and the design-choice
// ablations.
//
// Usage:
//
//	mldsbench                     run every experiment
//	mldsbench -exp e6             run one experiment (e1..e19, a1..a3)
//	mldsbench -json BENCH.json    also write a machine-readable summary
//	mldsbench -txn                run the transaction contention workload
//	mldsbench -txn -sessions 16 -txns 50 -ops 4 -conflict 0.25
//	mldsbench -readers 8 -writers 4   reader/writer mix, locked vs MVCC (E14)
//	mldsbench -elastic            grow/drain one live fleet under writes (E15)
//	mldsbench -net                serve >=1000 remote sessions over TCP (E16)
//	mldsbench -net -sessions 2000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mlds/internal/experiments"
)

// benchEntry is one experiment in the machine-readable summary.
type benchEntry struct {
	ID     string  `json:"id"`
	Title  string  `json:"title"`
	OK     bool    `json:"ok"`
	WallMS float64 `json:"wall_ms"`
	SimMS  float64 `json:"sim_ms"`
}

func writeJSON(path string, reports []*experiments.Report) error {
	entries := make([]benchEntry, 0, len(reports))
	for _, r := range reports {
		entries = append(entries, benchEntry{
			ID:     r.ID,
			Title:  r.Title,
			OK:     r.OK,
			WallMS: float64(r.Wall.Microseconds()) / 1000,
			SimMS:  float64(r.Sim.Microseconds()) / 1000,
		})
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// emit prints one report and optionally appends it to the JSON summary,
// exiting non-zero on a mismatch.
func emit(r *experiments.Report, jsonPath string) {
	fmt.Println(r)
	if jsonPath != "" {
		if err := writeJSON(jsonPath, []*experiments.Report{r}); err != nil {
			fmt.Fprintln(os.Stderr, "mldsbench:", err)
			os.Exit(1)
		}
	}
	if !r.OK {
		os.Exit(1)
	}
}

// sessionsSet reports whether -sessions was given explicitly on the command
// line, so -net can default to E16's thousand-session scale while still
// honouring an explicit override.
func sessionsSet(int) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "sessions" {
			set = true
		}
	})
	return set
}

func main() {
	exp := flag.String("exp", "", "run a single experiment (e1..e19, a1..a3)")
	jsonPath := flag.String("json", "", "write a machine-readable summary to this file")
	txnMode := flag.Bool("txn", false, "run the mixed read/write transaction contention workload")
	sessions := flag.Int("sessions", 8, "-txn: concurrent sessions")
	txns := flag.Int("txns", 25, "-txn: transactions per session")
	ops := flag.Int("ops", 3, "-txn: read-modify-write operations per transaction")
	conflict := flag.Float64("conflict", 0.5, "-txn: probability an operation hits the shared hot record")
	readers := flag.Int("readers", 0, "reader/writer mix: read-only sessions (runs E14 at this scale)")
	writers := flag.Int("writers", 0, "reader/writer mix: read-modify-write sessions")
	elastic := flag.Bool("elastic", false, "grow and drain one live fleet under a write workload (E15)")
	netMode := flag.Bool("net", false, "serve concurrent remote sessions over TCP through cmd/mldsserver's tier (E16)")
	flag.Parse()

	if *netMode {
		n := 0 // E16 default: 1000 concurrent sessions
		if sessionsSet(*sessions) {
			n = *sessions
		}
		emit(experiments.Timed(func() *experiments.Report {
			return experiments.E16NetServing(n)
		}), *jsonPath)
		return
	}

	if *elastic {
		emit(experiments.Timed(experiments.E15ElasticScaling), *jsonPath)
		return
	}

	if *readers > 0 || *writers > 0 {
		r, w := *readers, *writers
		if r <= 0 {
			r = 4
		}
		if w <= 0 {
			w = 2
		}
		emit(experiments.Timed(func() *experiments.Report {
			return experiments.E14ReaderWriter(r, w)
		}), *jsonPath)
		return
	}

	if *txnMode {
		emit(experiments.Timed(func() *experiments.Report {
			return experiments.TxnContention(*sessions, *txns, *ops, *conflict)
		}), *jsonPath)
		return
	}

	runners := map[string]func() *experiments.Report{
		"e16": func() *experiments.Report { return experiments.E16NetServing(0) },
		"e1":  experiments.E1SchemaParse,
		"e2":  experiments.E2Transform,
		"e3":  experiments.E3ABMapping,
		"e4":  experiments.E4EntitySubtypeGoldens,
		"e5":  experiments.E5Translations,
		"e6":  experiments.E6BackendsScaling,
		"e7":  experiments.E7CapacityGrowth,
		"e8":  experiments.E8CrossModel,
		"e9":  experiments.E9SharedKernel,
		"e10": experiments.E10FiveInterfaces,
		"e11": experiments.E11FaultTolerance,
		"e12": experiments.E12BatchedLoad,
		"e13": experiments.E13GroupCommit,
		"e14": experiments.E14SnapshotScaling,
		"e15": experiments.E15ElasticScaling,
		"e17": experiments.E17PagedStorage,
		"e18": experiments.E18ChangeCapture,
		"e19": experiments.E19DemandPaging,
		"a1":  experiments.AblationIndexVsScan,
		"a2":  experiments.AblationParallelVsSerial,
		"a3":  experiments.AblationDirectVsPreprocess,
	}

	if *exp != "" {
		run, ok := runners[strings.ToLower(*exp)]
		if !ok {
			fmt.Fprintf(os.Stderr, "mldsbench: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		emit(experiments.Timed(run), *jsonPath)
		return
	}

	reports := experiments.All()
	failed := 0
	for _, r := range reports {
		fmt.Println(r)
		fmt.Println()
		if !r.OK {
			failed++
		}
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, reports); err != nil {
			fmt.Fprintln(os.Stderr, "mldsbench:", err)
			os.Exit(1)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "mldsbench: %d experiment(s) mismatched\n", failed)
		os.Exit(1)
	}
}
