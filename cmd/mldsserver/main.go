// mldsserver is the MLDS front-end server: the host machine of the paper's
// configuration, serving every language interface of one MLDS instance to
// remote clients over the framing-v2 wire protocol (internal/server). One
// TCP port multiplexes any number of client sessions; an optional second
// port serves /metrics and /healthz.
//
// The server starts with a demo catalog so a fresh binary is immediately
// usable from the REPL or the client package: the populated functional
// University database, a relational shop, and a hierarchical school —
// reachable via Daplex, CODASYL-DML, SQL, DL/I and ABDL.
//
// Usage:
//
//	mldsserver                                    # serve on :9400
//	mldsserver -listen :9400 -ops :9480 -backends 4
//	mldsserver -max-sessions 8192 -rate 0 -queue 64
//
// SIGINT drains before closing: new opens and implicit statements are
// refused with the typed draining code (clients see DrainingFlag and
// redial), sessions inside an explicit transaction may finish, and a second
// SIGINT — or the drain grace period — completes the shutdown.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"mlds/internal/core"
	"mlds/internal/mbds"
	"mlds/internal/server"
	"mlds/internal/univ"
	"mlds/internal/univgen"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9400", "TCP listen address for the wire protocol")
	opsAddr := flag.String("ops", "", "HTTP address serving /metrics and /healthz (empty: disabled)")
	backends := flag.Int("backends", 2, "kernel backends per database")
	maxSessions := flag.Int("max-sessions", 0, "global live-session cap (0: default 4096)")
	perDB := flag.Int("max-sessions-per-db", 0, "per-database live-session cap (0: none)")
	queue := flag.Int("queue", 0, "per-session request queue depth (0: default 32)")
	rate := flag.Float64("rate", 0, "per-session statement rate limit per second (0: none)")
	grace := flag.Duration("grace", 10*time.Second, "drain grace period before the final close")
	flag.Parse()

	sys := core.NewSystem(core.Config{Kernel: mbds.DefaultConfig(*backends)})
	defer sys.Close()
	if err := seed(sys); err != nil {
		fatal(err)
	}

	srv, err := server.Listen(*listen, sys, server.Config{
		MaxSessions:      *maxSessions,
		MaxSessionsPerDB: *perDB,
		SessionQueue:     *queue,
		RateLimit:        *rate,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("mldsserver: serving on %s (%d backends per database)\n", srv.Addr(), *backends)
	for _, db := range sys.Databases() {
		fmt.Printf("mldsserver:   %-12s %-12s %d records\n", db.Name, db.Model, db.Records)
	}

	if *opsAddr != "" {
		ln, err := net.Listen("tcp", *opsAddr)
		if err != nil {
			fatal(err)
		}
		ops := &http.Server{Handler: srv.Handler()}
		go func() { _ = ops.Serve(ln) }()
		defer ops.Close()
		fmt.Printf("mldsserver: metrics on http://%s/metrics\n", ln.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("\nmldsserver: draining (open transactions may finish; interrupt again to force)")
	srv.Drain()
	select {
	case <-sig:
	case <-time.After(*grace):
	}
	fmt.Println("mldsserver: shutting down")
	if err := srv.Close(); err != nil {
		fatal(err)
	}
}

// seed builds the demo catalog: the populated University functional
// database plus small relational and hierarchical databases, so all five
// language interfaces have something to serve.
func seed(sys *core.System) error {
	db, err := sys.CreateFunctional("university", univ.SchemaDDL)
	if err != nil {
		return err
	}
	inst, err := univgen.Populate(db.Mapping, db.AB, univgen.SmallConfig())
	if err != nil {
		return err
	}
	if _, err := db.LoadInstance(inst); err != nil {
		return err
	}
	dap, err := sys.Open("university", "daplex")
	if err != nil {
		return err
	}
	if _, err := dap.Execute("CREATE department (dname := 'History', building := 'Hall H');"); err != nil {
		return err
	}
	if err := dap.Close(); err != nil {
		return err
	}

	if _, err := sys.CreateRelational("shop",
		"CREATE TABLE emp (ename CHAR(20) NOT NULL, pay INTEGER);"); err != nil {
		return err
	}
	sq, err := sys.Open("shop", "sql")
	if err != nil {
		return err
	}
	if _, err := sq.Execute("INSERT INTO emp (ename, pay) VALUES ('Ann', 900)"); err != nil {
		return err
	}
	if err := sq.Close(); err != nil {
		return err
	}

	if _, err := sys.CreateHierarchical("school",
		"DBD NAME IS school\nSEGMENT NAME IS dept\n    FIELD dname CHAR 20\nSEGMENT NAME IS course PARENT IS dept\n    FIELD ctitle CHAR 30\n"); err != nil {
		return err
	}
	dl, err := sys.Open("school", "dli")
	if err != nil {
		return err
	}
	for _, call := range []string{"ISRT dept (dname = 'CS')", "ISRT course (ctitle = 'DB')"} {
		if _, err := dl.Execute(call); err != nil {
			return err
		}
	}
	return dl.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mldsserver:", err)
	os.Exit(1)
}
