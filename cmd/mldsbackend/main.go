// mldsbackend runs one MBDS backend as a network server: it holds a
// partition of a kernel database on this machine and executes the ABDL
// requests a remote controller sends over the bus — the slave half of the
// paper's hardware configuration.
//
// The schema is a Daplex file transformed on startup, so every backend of
// one database derives the same kernel directory independently.
//
// Usage:
//
//	mldsbackend -listen :9401 -offset 1 -stride 4            # University schema
//	mldsbackend -listen :9402 -offset 2 -stride 4 -schema my.daplex
//
// offset/stride give this backend its share of the database-key space:
// backend i of n uses -offset i+1 -stride n.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"

	"mlds/internal/daplex"
	"mlds/internal/kdb"
	"mlds/internal/mbdsnet"
	"mlds/internal/obs"
	"mlds/internal/univ"
	"mlds/internal/xform"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9401", "TCP listen address")
	schemaFile := flag.String("schema", "", "Daplex schema file (default: built-in University)")
	offset := flag.Uint64("offset", 1, "record-ID offset for this backend")
	stride := flag.Uint64("stride", 1, "record-ID stride (= backend count)")
	opsAddr := flag.String("ops", "", "HTTP address serving /metrics and /healthz (empty: disabled)")
	flag.Parse()

	src := univ.SchemaDDL
	if *schemaFile != "" {
		data, err := os.ReadFile(*schemaFile)
		if err != nil {
			fatal(err)
		}
		src = string(data)
	}
	fun, err := daplex.ParseSchema(src)
	if err != nil {
		fatal(err)
	}
	m, err := xform.FunToNet(fun)
	if err != nil {
		fatal(err)
	}
	ab, err := xform.DeriveAB(m)
	if err != nil {
		fatal(err)
	}

	store := kdb.NewStore(ab.Dir, kdb.WithStrideIDs(*offset, *stride))
	srv, err := mbdsnet.Listen(*listen, store)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("mldsbackend: serving schema %q on %s (id offset %d stride %d)\n",
		fun.Name, srv.Addr(), *offset, *stride)

	if *opsAddr != "" {
		reg := obs.NewRegistry()
		srv.Instrument(reg, obs.L("backend", strconv.FormatUint(*offset, 10)))
		ops, err := mbdsnet.ServeOps(*opsAddr, reg, nil)
		if err != nil {
			fatal(err)
		}
		defer ops.Close()
		fmt.Printf("mldsbackend: metrics on http://%s/metrics\n", ops.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("\nmldsbackend: shutting down")
	if err := srv.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mldsbackend:", err)
	os.Exit(1)
}
