// Package mlds is a Go implementation of the Multi-Lingual Database System
// (MLDS) of the Naval Postgraduate School Laboratory for Database Systems
// Research, including the first Multi-Model Database System interface:
// accessing a functional (Daplex) database via CODASYL-DML transactions.
//
// MLDS maps every user data model onto a single kernel: the attribute-based
// data model (ABDM) with its data language ABDL, executed by the
// Multi-Backend Database System (MBDS) — a controller plus N parallel
// backends, each owning a partition of the database on its own (simulated)
// disk. Each language interface is the LIL → KMS → KC → KFS pipeline of the
// original system.
//
// # Quick start
//
//	sys := mlds.New(mlds.DefaultConfig())
//	defer sys.Close()
//
//	db, err := sys.CreateFunctional("university", mlds.UniversityDDL)
//	// load data, then access the *functional* database via CODASYL-DML:
//	sess, err := sys.Open("university", "dml")
//	sess.Execute("MOVE 'Advanced Database' TO title IN course")
//	sess.Execute("FIND ANY course USING title IN course")
//	out, err := sess.Execute("GET course")
//
// The same database answers Daplex through sys.Open("university", "daplex")
// and raw ABDL through db.ExecABDL — one kernel, many languages. The same
// sessions are served remotely by cmd/mldsserver; mlds.Dial connects to one
// and hands back Session values with the network in between.
package mlds

import (
	"context"
	"io"
	"time"

	"mlds/client"

	"mlds/internal/abdm"
	"mlds/internal/cdc"
	"mlds/internal/core"
	"mlds/internal/dapkms"
	"mlds/internal/hiekms"
	"mlds/internal/kdb"
	"mlds/internal/kfs"
	"mlds/internal/kms"
	"mlds/internal/loader"
	"mlds/internal/mbds"
	"mlds/internal/netmodel"
	"mlds/internal/relkms"
	"mlds/internal/txn"
	"mlds/internal/univ"
	"mlds/internal/univgen"
	"mlds/internal/wire"
)

// Core engine types.
type (
	// System is one MLDS instance: a catalog of databases, each served by
	// its own multi-backend kernel, shared by every language interface.
	System = core.System
	// Database is one catalog entry with its schemas and kernel.
	Database = core.Database
	// Config configures the engine.
	Config = core.Config
	// Model identifies a database's defining data model.
	Model = core.Model
	// DMLSession is a CODASYL-DML user session.
	DMLSession = core.DMLSession
	// DaplexSession is a Daplex user session.
	DaplexSession = core.DaplexSession
	// SQLSession is a SQL user session on a relational database.
	SQLSession = core.SQLSession
	// DLISession is a DL/I user session on a hierarchical database.
	DLISession = core.DLISession
	// ABDLSession is a raw attribute-based (ABDL) user session.
	ABDLSession = core.ABDLSession
	// Session is the unified interface implemented by all session types.
	Session = core.Session
	// DatabaseInfo describes one catalog entry in a Databases listing.
	DatabaseInfo = core.DatabaseInfo
	// SessionOption configures a session at open time.
	SessionOption = core.SessionOption
	// ResultSet is a SQL statement result.
	ResultSet = relkms.ResultSet
	// DLIOutcome is a DL/I call result.
	DLIOutcome = hiekms.Outcome
	// Outcome is the unified result of one statement through any language
	// interface: timing, optional trace, rendered text, and the typed payload.
	Outcome = core.Outcome
	// DMLOutcome reports what one CODASYL-DML statement did (Outcome.DML).
	DMLOutcome = kms.Outcome
	// Row is one entity of a Daplex FOR EACH result.
	Row = dapkms.Row
	// Value is a typed attribute value of the kernel data model.
	Value = abdm.Value
	// Result is a kernel-level (ABDL) execution result.
	Result = kdb.Result
	// KernelConfig configures a database's multi-backend kernel.
	KernelConfig = mbds.Config
	// DiskModel is the synthetic per-backend disk cost model.
	DiskModel = kdb.DiskModel
	// NetworkSchema is a CODASYL network schema (native or transformed).
	NetworkSchema = netmodel.Schema
	// Instance is a functional database instance under construction.
	Instance = loader.Instance
)

// Database models.
const (
	NetworkModel      = core.NetworkModel
	FunctionalModel   = core.FunctionalModel
	HierarchicalModel = core.HierarchicalModel
	RelationalModel   = core.RelationalModel
)

// New builds an MLDS instance.
func New(cfg Config) *System { return core.NewSystem(cfg) }

// DefaultConfig serves each database with a 4-backend kernel.
func DefaultConfig() Config { return core.DefaultConfig() }

// KernelWith returns a Config whose databases run on n parallel backends.
func KernelWith(n int) Config { return Config{Kernel: mbds.DefaultConfig(n)} }

// Value constructors for UWA assignments and instance building.
var (
	// Int builds an integer value.
	Int = abdm.Int
	// Float builds a floating-point value.
	Float = abdm.Float
	// String builds a string value.
	String = abdm.String
	// Null builds the NULL value.
	Null = abdm.Null
)

// UniversityDDL is Shipman's University database schema (the running example
// of the thesis, Figure 2.1) in Daplex DDL.
const UniversityDDL = univ.SchemaDDL

// UniversityConfig sizes a generated University instance.
type UniversityConfig = univgen.Config

// SmallUniversity is a compact instance configuration.
func SmallUniversity() UniversityConfig { return univgen.SmallConfig() }

// PopulateUniversity generates a deterministic University instance for a
// database created from UniversityDDL and loads it, returning the number of
// kernel records inserted.
func PopulateUniversity(db *Database, cfg UniversityConfig) (int, error) {
	inst, err := univgen.Populate(db.Mapping, db.AB, cfg)
	if err != nil {
		return 0, err
	}
	return db.LoadInstance(inst)
}

// Formatting helpers (the kernel formatting system).
var (
	// FormatOutcome renders a DML outcome for display.
	FormatOutcome = kfs.FormatOutcome
	// FormatRows renders Daplex rows as an aligned table.
	FormatRows = kfs.FormatRows
	// FormatRowsAuto renders Daplex rows with an inferred print list.
	FormatRowsAuto = kfs.FormatRowsAuto
	// FormatResultSet renders a SQL result set.
	FormatResultSet = kfs.FormatResultSet
	// FormatDLI renders a DL/I call outcome.
	FormatDLI = kfs.FormatDLI
	// FormatResult renders a kernel result.
	FormatResult = kfs.FormatResult
)

// Catalog lookup sentinels, for errors.Is on Open errors.
var (
	// ErrNoDatabase reports a name absent from the catalog.
	ErrNoDatabase = core.ErrNoDatabase
	// ErrWrongModel reports a model the requested interface cannot serve.
	ErrWrongModel = core.ErrWrongModel
	// ErrUnknownLanguage reports a language name Open does not recognise.
	ErrUnknownLanguage = core.ErrUnknownLanguage
	// ErrNoTxn reports a COMMIT or ROLLBACK with no transaction open.
	ErrNoTxn = core.ErrNoTxn
)

// Code is the stable machine-readable error code carried by every Outcome
// and by the wire protocol (see internal/wire for the frozen table). CodeOf
// classifies any error from Open, Execute or the transaction methods.
type Code = wire.Code

// CodeOf classifies an error into its stable wire code.
func CodeOf(err error) Code { return core.CodeOf(err) }

// Remote access: the serving tier (cmd/mldsserver) exposes a System over
// TCP; Dial connects to it and Client.Open returns Session values that
// behave exactly like local ones.
type (
	// Client is one multiplexed client connection to an MLDS server.
	Client = client.Client
	// RemoteSession is a session served over the network; it implements
	// Session.
	RemoteSession = client.Session
	// RemoteError is a typed server failure with its wire code.
	RemoteError = client.Error
	// DialOption configures Dial (client.WithTimeout, client.WithMaxFrame).
	DialOption = client.Option
)

// Dial connects to an MLDS server (cmd/mldsserver).
func Dial(ctx context.Context, addr string, opts ...DialOption) (*Client, error) {
	return client.Dial(ctx, addr, opts...)
}

// Transaction errors. Every session is transactional: statements
// auto-commit unless BEGIN WORK (or Session.Begin) opened an explicit
// transaction. When the transaction manager aborts a transaction — deadlock
// victim or lock timeout — the statement fails with a *TxnAbortedError
// wrapping the cause; the client retries from BEGIN.
var (
	// ErrDeadlock is the cause when the transaction was the chosen victim
	// of a detected deadlock (errors.Is against a failed statement).
	ErrDeadlock = txn.ErrDeadlock
	// ErrLockTimeout is the cause when a lock wait exceeded the limit.
	ErrLockTimeout = txn.ErrLockTimeout
	// ErrReadOnly reports a mutation attempted in a read-only snapshot
	// transaction (BEGIN WORK READ ONLY, or a SnapshotSession).
	ErrReadOnly = txn.ErrReadOnly
	// SnapshotSession makes every implicit statement of a session run in
	// its own read-only snapshot transaction: lock-free reads that never
	// wait on writers. Pass it to System.Open or a typed opener.
	SnapshotSession = core.SnapshotSession
)

// TxnAbortedError reports a statement whose transaction the manager rolled
// back; use errors.As to retrieve it and errors.Is for the cause.
type TxnAbortedError = txn.AbortedError

// Change capture. Every Session (embedded or remote) answers WATCH <select>
// and Session.Watch with a *Watcher: a snapshot-consistent load of the
// current matches, then exactly the committed changes after the snapshot, in
// commit order, losslessly. CREATE VIEW <name> AS <select> maintains a
// materialized view incrementally from the same stream.
type (
	// Watcher is one live change subscription; consume its C channel.
	Watcher = cdc.Watcher
	// Change is one event on a watch.
	Change = cdc.Change
	// ChangeOp classifies a Change.
	ChangeOp = cdc.Op
	// View is one incrementally-maintained materialized view.
	View = cdc.View
)

// Change operations: the initial load (OpLoad... OpReady), then
// OpInsert/OpUpdate/OpDelete in commit order; OpResync announces the journal
// was compacted past the watch and a fresh load follows.
const (
	OpLoad   = cdc.OpLoad
	OpReady  = cdc.OpReady
	OpInsert = cdc.OpInsert
	OpUpdate = cdc.OpUpdate
	OpDelete = cdc.OpDelete
	OpResync = cdc.OpResync
)

// View registry sentinels, for errors.Is on CREATE VIEW / DROP VIEW.
var (
	// ErrDupView reports a CREATE VIEW reusing a live view's name.
	ErrDupView = core.ErrDupView
	// ErrNoView reports a DROP VIEW naming no live view.
	ErrNoView = core.ErrNoView
)

// SimTime reports the simulated kernel time a database's controller has
// accumulated — the response-time figure the MBDS experiments sweep.
func SimTime(db *Database) time.Duration { return db.Ctrl.SimTime() }

// SaveDatabase writes a database — schema and contents — to w. The image is
// self-contained (the schema is embedded as regenerated DDL text) and can be
// restored into any System with any backend count.
func SaveDatabase(db *Database, w io.Writer) error { return db.Save(w) }

// RestoreDatabase reads an image written by SaveDatabase and registers the
// database under its original name.
func RestoreDatabase(sys *System, r io.Reader) (*Database, error) { return sys.Restore(r) }
