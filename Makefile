# Standard verify tiers. `make check` is the extended tier: vet (including
# the observability package on its own), formatting, static analysis when
# the tools are installed (staticcheck, govulncheck — both skipped with a
# note otherwise, so the target needs no network), the transaction/kernel
# concurrency tier on its own, and the full test suite under the race
# detector. `make bench` regenerates the paper experiments and writes a
# machine-readable summary.

GO ?= go

.PHONY: build test check fmt bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

check:
	$(GO) vet ./...
	$(GO) vet ./internal/obs
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; \
	fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping"; \
	fi
	$(GO) test -race ./internal/txn ./internal/kc ./internal/core
	$(GO) test -race ./...

bench:
	$(GO) run ./cmd/mldsbench -json BENCH_4.json

fmt:
	gofmt -w .
