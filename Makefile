# Standard verify tiers. `make check` is the extended tier: vet (including
# the observability package on its own), formatting, and the full test suite
# under the race detector. `make bench` regenerates the paper experiments
# and writes a machine-readable summary.

GO ?= go

.PHONY: build test check fmt bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

check:
	$(GO) vet ./...
	$(GO) vet ./internal/obs
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) test -race ./...

bench:
	$(GO) run ./cmd/mldsbench -json BENCH_2.json

fmt:
	gofmt -w .
