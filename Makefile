# Standard verify tiers. `make check` is the extended tier: vet (including
# the observability package on its own), formatting, static analysis when
# the tools are installed (staticcheck, govulncheck — both skipped with a
# note otherwise, so the target needs no network), the full suite with
# shuffled test order, the transaction/kernel concurrency tier, the
# cross-model differential suites (in-memory and larger-than-RAM paged), the
# membership, change-capture and demand-paged-fleet chaos suites, and the
# network serving tier (server + remote client) under the race detector, and
# per-package coverage floors on the transaction, controller, kernel,
# elastic-membership, pager, change-data-capture, serving, and client
# packages.
# `make fuzz-smoke` runs each native fuzz target briefly — corpora and
# checked-in crashers also replay on every plain `go test`. `make bench`
# regenerates the paper experiments and writes a machine-readable summary.

GO ?= go

# Coverage floors for the packages the verify tier guards most closely.
COVER_FLOOR := 70

.PHONY: build test check cover fuzz-smoke fmt bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

check:
	$(GO) vet ./...
	$(GO) vet ./internal/obs
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; \
	fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping"; \
	fi
	$(GO) test -shuffle=on ./...
	$(GO) test -race ./internal/txn ./internal/kc ./internal/core
	$(GO) test -race -run TestCrossModelDifferential ./internal/core
	$(GO) test -race -run TestCrossModelDifferentialPaged ./internal/core
	$(GO) test -race -count=2 -run TestMembershipChaos ./internal/kc
	$(GO) test -race -count=2 -run TestPagedFleetChaos ./internal/kc
	$(GO) test -race -count=2 -run TestCDCChaos ./internal/cdc
	$(GO) test -race ./internal/server ./client
	$(GO) test -race ./...
	$(MAKE) cover

# cover enforces the coverage floors: the transaction manager, kernel
# controller, kernel database, elastic multi-backend system, pager, wire
# codec, change-data-capture subsystem, serving tier, and remote client
# must each stay at or above COVER_FLOOR%.
cover:
	@for pkg in internal/txn internal/kc internal/kdb internal/mbds internal/pager internal/wire internal/cdc internal/server client; do \
		pct=$$($(GO) test -cover ./$$pkg | \
			sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		if [ -z "$$pct" ]; then \
			echo "$$pkg: no coverage reported"; exit 1; \
		fi; \
		ok=$$(awk -v p="$$pct" -v f="$(COVER_FLOOR)" 'BEGIN{print (p>=f)?1:0}'); \
		if [ "$$ok" != 1 ]; then \
			echo "$$pkg: coverage $$pct% is below the $(COVER_FLOOR)% floor"; exit 1; \
		fi; \
		echo "$$pkg: coverage $$pct% (floor $(COVER_FLOOR)%)"; \
	done

# fuzz-smoke gives each native fuzz target a short live fuzzing budget.
# New crashers it finds land in testdata/fuzz and then run on every plain
# `go test` as regression inputs.
FUZZ_TIME ?= 5s

fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZ_TIME) ./internal/sql
	$(GO) test -run '^$$' -fuzz '^FuzzParseDDL$$' -fuzztime $(FUZZ_TIME) ./internal/sql
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZ_TIME) ./internal/abdl
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeEnvelope$$' -fuzztime $(FUZZ_TIME) ./internal/wire
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeMsg$$' -fuzztime $(FUZZ_TIME) ./internal/wire

bench:
	$(GO) run ./cmd/mldsbench -json BENCH_10.json

fmt:
	gofmt -w .
