# Standard verify tiers. `make check` is the extended tier: vet, formatting,
# and the full test suite under the race detector.

GO ?= go

.PHONY: build test check fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

check:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) test -race ./...

fmt:
	gofmt -w .
