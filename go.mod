module mlds

go 1.22
