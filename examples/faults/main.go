// Faults: runs the MBDS cluster over TCP with one replica per record, kills
// a backend server mid-workload, and shows that retrievals keep returning
// the full answer (degraded mode), that the controller's health view marks
// the backend down, and that a restarted backend is probed back into
// service.
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strings"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/kdb"
	"mlds/internal/mbds"
	"mlds/internal/mbdsnet"
	"mlds/internal/obs"
	"mlds/internal/univgen"
)

func main() {
	const backends = 3
	db, err := univgen.Generate(univgen.SmallConfig())
	if err != nil {
		log.Fatal(err)
	}

	// The slaves: one TCP backend server per partition. With replication
	// the controller pins every record's database key, so the stores need
	// no per-partition key striding.
	stores := make([]*kdb.Store, backends)
	servers := make([]*mbdsnet.BackendServer, backends)
	var execs []mbds.Executor
	for i := 0; i < backends; i++ {
		stores[i] = kdb.NewStore(db.AB.Dir.Clone())
		srv, err := mbdsnet.Listen("127.0.0.1:0", stores[i])
		if err != nil {
			log.Fatal(err)
		}
		servers[i] = srv
		defer srv.Close()
		fmt.Printf("backend %d serving on %s\n", i, srv.Addr())
		rb, err := mbdsnet.Dial(srv.Addr())
		if err != nil {
			log.Fatal(err)
		}
		defer rb.Close()
		execs = append(execs, rb)
	}

	// The master: every INSERT goes to a primary backend plus one replica,
	// requests carry a deadline and bounded retries, and a per-backend
	// circuit breaker keeps dead backends out of the broadcast path.
	cfg := mbds.DefaultConfig(backends)
	cfg.Replicas = 1
	cfg.RequestTimeout = 500 * time.Millisecond
	cfg.MaxRetries = 1
	cfg.RetryBackoff = 2 * time.Millisecond
	cfg.BreakerThreshold = 2
	cfg.ProbePeriod = 50 * time.Millisecond
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	cfg.DBName = "university"
	sys, err := mbds.NewWithExecutors(db.AB.Dir, cfg, execs)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// The controller's counters — per-backend requests, retries, breaker
	// trips — are scrapable while the scenario runs.
	ops, err := mbdsnet.ServeOps("127.0.0.1:0", reg, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer ops.Close()
	fmt.Printf("metrics: curl http://%s/metrics\n", ops.Addr())

	n, err := db.Load(sys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nloaded %d kernel records, each on a primary and one replica\n", n)
	fmt.Printf("physical partition sizes: %v\n", sys.PartitionSizes())

	query := abdl.NewRetrieve(abdm.And(
		abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("student")},
		abdm.Predicate{Attr: "major", Op: abdm.OpEq, Val: abdm.String("Computer Science")},
	), "major", "gpa")
	// keys identifies the result set by database key: replication must not
	// change what a retrieve returns, only where the copies live.
	keys := func() []int {
		res, err := sys.Exec(query)
		if err != nil {
			log.Fatal(err)
		}
		out := make([]int, 0, len(res.Records))
		for _, sr := range res.Records {
			out = append(out, int(sr.ID))
		}
		sort.Ints(out)
		return out
	}
	printHealth := func(label string) {
		fmt.Printf("\n%s:\n", label)
		for _, h := range sys.Health() {
			fmt.Printf("  %s\n", h)
		}
	}

	healthy := keys()
	fmt.Printf("\nhealthy run: %d CS student records\n", len(healthy))

	// Kill backend 1's server mid-workload — a real process death, not an
	// injected error: its TCP listener and connections go away.
	addr := servers[1].Addr()
	fmt.Printf("\n*** killing backend 1 (%s) ***\n", addr)
	if err := servers[1].Close(); err != nil {
		log.Fatal(err)
	}
	degraded := keys()
	same := len(degraded) == len(healthy)
	for i := 0; same && i < len(healthy); i++ {
		same = degraded[i] == healthy[i]
	}
	fmt.Printf("degraded run: %d CS student records (identical to healthy: %v)\n", len(degraded), same)
	printHealth("cluster health with backend 1 dead")

	// Restart the backend on the same address; the controller probes it
	// back up on its own.
	fmt.Printf("\n*** restarting backend 1 on %s ***\n", addr)
	srv2, err := mbdsnet.Listen(addr, stores[1])
	if err != nil {
		log.Fatalf("rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	for i := 0; i < 100 && !sys.Health()[1].Up; i++ {
		time.Sleep(20 * time.Millisecond)
		keys()
	}
	final := keys()
	fmt.Printf("post-recovery run: %d CS student records\n", len(final))
	printHealth("cluster health after recovery")

	// Scrape the ops endpoint and show what the fault left in the counters.
	resp, err := http.Get("http://" + ops.Addr() + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Println("\nper-backend fault counters from /metrics:")
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "mlds_backend_retries_total") ||
			strings.HasPrefix(line, "mlds_backend_breaker_trips_total") ||
			strings.HasPrefix(line, "mlds_backend_failures_total") {
			fmt.Println("  " + line)
		}
	}
}
