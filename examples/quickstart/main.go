// Quickstart: define a functional database in Daplex, load it, and access it
// through all three MLDS language interfaces — CODASYL-DML (via the schema
// transformer), Daplex, and raw ABDL.
package main

import (
	"fmt"
	"log"

	"mlds"
)

func main() {
	sys := mlds.New(mlds.DefaultConfig())
	defer sys.Close()

	// Define the University database (Shipman's schema, Figure 2.1) and
	// load a small deterministic instance.
	db, err := sys.CreateFunctional("university", mlds.UniversityDDL)
	if err != nil {
		log.Fatal(err)
	}
	n, err := mlds.PopulateUniversity(db, mlds.SmallUniversity())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d kernel records into %d backends\n\n", n, db.Kernel.Backends())

	// 1. CODASYL-DML on the functional database: the thesis's contribution.
	fmt.Println("== CODASYL-DML interface ==")
	dml, err := sys.OpenDML("university")
	if err != nil {
		log.Fatal(err)
	}
	for _, stmt := range []string{
		"MOVE 'Advanced Database' TO title IN course",
		"FIND ANY course USING title IN course",
		"GET course",
	} {
		out, err := dml.Execute(stmt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out.Rendered)
	}

	// 2. Daplex on the same database.
	fmt.Println("\n== Daplex interface ==")
	dap, err := sys.OpenDaplex("university")
	if err != nil {
		log.Fatal(err)
	}
	rows, err := dap.Execute("FOR EACH student WHERE major = 'Computer Science' PRINT pname, gpa;")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(mlds.FormatRows(rows.Rows, []string{"pname", "gpa"}))

	// 3. Raw ABDL: the kernel data language.
	fmt.Println("\n== ABDL (kernel) interface ==")
	res, err := db.ExecABDL("RETRIEVE ((FILE = course)) (COUNT(title), AVG(credits))")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(mlds.FormatResult(res))
}
