// Crossmodel: demonstrates the Multi-Model goal — one functional database
// answering the same question through the Daplex interface and through
// CODASYL-DML transactions over the transformed schema, with identical
// results; and updates made in one model visible in the other.
package main

import (
	"fmt"
	"log"
	"sort"

	"mlds"
)

func main() {
	sys := mlds.New(mlds.DefaultConfig())
	defer sys.Close()
	db, err := sys.CreateFunctional("university", mlds.UniversityDDL)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := mlds.PopulateUniversity(db, mlds.SmallUniversity()); err != nil {
		log.Fatal(err)
	}

	dap, err := sys.OpenDaplex("university")
	if err != nil {
		log.Fatal(err)
	}
	dml, err := sys.OpenDML("university")
	if err != nil {
		log.Fatal(err)
	}

	// Question: which students major in Computer Science?
	fmt.Println("Q: students majoring in Computer Science")

	// Via Daplex.
	rows, err := dap.Execute("FOR EACH student WHERE major = 'Computer Science' PRINT pname;")
	if err != nil {
		log.Fatal(err)
	}
	var daplexNames []string
	for _, r := range rows.Rows {
		daplexNames = append(daplexNames, r.Values["pname"][0].AsString())
	}
	sort.Strings(daplexNames)
	fmt.Printf("  Daplex      : %v\n", daplexNames)

	// Via CODASYL-DML: navigate the system set, probe the ISA set, filter.
	var dmlNames []string
	mustExec(dml, "FIND FIRST person WITHIN system_person")
	for {
		out, err := dml.Execute("FIND FIRST student WITHIN person_student")
		if err != nil {
			log.Fatal(err)
		}
		if out.DML.Found {
			g := mustExec(dml, "GET major IN student")
			if g.DML.Values["major"].AsString() == "Computer Science" {
				mustExec(dml, "FIND OWNER WITHIN person_student")
				n := mustExec(dml, "GET pname IN person")
				dmlNames = append(dmlNames, n.DML.Values["pname"].AsString())
			}
		}
		if nxt := mustExec(dml, "FIND NEXT person WITHIN system_person"); nxt.DML.EndOfSet {
			break
		}
	}
	sort.Strings(dmlNames)
	fmt.Printf("  CODASYL-DML : %v\n", dmlNames)

	equal := len(daplexNames) == len(dmlNames)
	for i := range daplexNames {
		if !equal || daplexNames[i] != dmlNames[i] {
			equal = false
			break
		}
	}
	fmt.Printf("  results equal: %v\n\n", equal)

	// Cross-model update: Daplex LET, seen by DML GET.
	fmt.Println("Cross-model update visibility")
	if _, err := dap.Execute("LET credits OF course WHERE title = 'Advanced Database' BE 9;"); err != nil {
		log.Fatal(err)
	}
	mustExec(dml, "MOVE 'Advanced Database' TO title IN course")
	mustExec(dml, "FIND ANY course USING title IN course")
	out := mustExec(dml, "GET credits IN course")
	fmt.Printf("  Daplex LET credits := 9 → DML GET sees credits = %s\n", out.DML.Values["credits"])

	// And back: DML MODIFY, seen by Daplex.
	mustExec(dml, "MOVE 4 TO credits IN course")
	mustExec(dml, "MODIFY credits IN course")
	rows, err = dap.Execute("FOR EACH course WHERE title = 'Advanced Database' PRINT credits;")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  DML MODIFY credits := 4 → Daplex sees credits = %s\n", rows.Rows[0].Values["credits"][0])
}

func mustExec(sess *mlds.DMLSession, stmt string) *mlds.Outcome {
	out, err := sess.Execute(stmt)
	if err != nil {
		log.Fatalf("%s: %v", stmt, err)
	}
	return out
}
