// Fivemodels: the complete MLDS of Figure 1.2 — one system serving all five
// data models via their model-based data languages: hierarchical/DL-I,
// relational/SQL, network/CODASYL-DML, functional/Daplex, and the
// attribute-based kernel language ABDL.
package main

import (
	"fmt"
	"log"

	"mlds"
)

func main() {
	sys := mlds.New(mlds.KernelWith(2))
	defer sys.Close()

	// 1. Functional / Daplex (and, via the schema transformer, CODASYL-DML).
	fmt.Println("== functional / Daplex ==")
	fdb, err := sys.CreateFunctional("university", mlds.UniversityDDL)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := mlds.PopulateUniversity(fdb, mlds.SmallUniversity()); err != nil {
		log.Fatal(err)
	}
	dap, _ := sys.OpenDaplex("university")
	rows, err := dap.Execute("FOR EACH department PRINT dname;")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(mlds.FormatRows(rows.Rows, []string{"dname"}))

	// 2. Network / CODASYL-DML on the same functional database (the thesis).
	fmt.Println("\n== network / CODASYL-DML (on the functional database) ==")
	dml, _ := sys.OpenDML("university")
	must := func(stmt string) *mlds.Outcome {
		out, err := dml.Execute(stmt)
		if err != nil {
			log.Fatalf("%s: %v", stmt, err)
		}
		return out
	}
	must("MOVE 'Advanced Database' TO title IN course")
	must("FIND ANY course USING title IN course")
	fmt.Println(must("GET course").Rendered)

	// 3. Relational / SQL.
	fmt.Println("\n== relational / SQL ==")
	if _, err := sys.CreateRelational("shop", `
CREATE TABLE emp (
    ename CHAR(20) NOT NULL,
    dept  CHAR(10),
    pay   INTEGER
);`); err != nil {
		log.Fatal(err)
	}
	sqlSess, _ := sys.OpenSQL("shop")
	for _, stmt := range []string{
		"INSERT INTO emp (ename, dept, pay) VALUES ('Ann', 'CS', 900)",
		"INSERT INTO emp (ename, dept, pay) VALUES ('Bob', 'CS', 800)",
		"INSERT INTO emp (ename, dept, pay) VALUES ('Cey', 'EE', 950)",
	} {
		if _, err := sqlSess.Execute(stmt); err != nil {
			log.Fatal(err)
		}
	}
	rs, err := sqlSess.Execute("SELECT dept, COUNT(*), AVG(pay) FROM emp GROUP BY dept")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rs.SQL.Columns)
	for _, row := range rs.SQL.Rows {
		fmt.Println(row)
	}

	// 4. Hierarchical / DL-I.
	fmt.Println("\n== hierarchical / DL-I ==")
	if _, err := sys.CreateHierarchical("school", `
DBD NAME IS school
SEGMENT NAME IS dept
    FIELD dname CHAR 20
SEGMENT NAME IS course PARENT IS dept
    FIELD title CHAR 30
`); err != nil {
		log.Fatal(err)
	}
	dliSess, _ := sys.OpenDLI("school")
	for _, call := range []string{
		"ISRT dept (dname = 'CS')",
		"ISRT course (title = 'DB')",
		"ISRT course (title = 'OS')",
	} {
		if _, err := dliSess.Execute(call); err != nil {
			log.Fatal(err)
		}
	}
	out, err := dliSess.Execute("GU dept (dname = 'CS') course (title = 'OS')")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GU found %s #%d: title = %s\n", out.DLI.Segment, out.DLI.Key, out.DLI.Values["title"])

	// 5. Attribute-based / ABDL: the kernel language, direct.
	fmt.Println("\n== attribute-based / ABDL (the kernel) ==")
	res, err := fdb.ExecABDL("RETRIEVE ((FILE = course)) (COUNT(title), AVG(credits))")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(mlds.FormatResult(res))
}
