// Scaling: demonstrates the two MBDS performance claims on the University
// database — response time falls near-reciprocally as backends are added at
// fixed database size, and stays invariant when the database grows
// proportionally with the backends.
package main

import (
	"fmt"
	"log"
	"time"

	"mlds"
)

func main() {
	fmt.Println("MBDS claim 1: fixed database, growing backends (reciprocal decrease)")
	fmt.Printf("%-10s %-14s %s\n", "backends", "response", "speedup vs 1")
	var base time.Duration
	for _, n := range []int{1, 2, 4, 8} {
		rt := responseTime(n, 1)
		if n == 1 {
			base = rt
		}
		fmt.Printf("%-10d %-14v %.2fx\n", n, rt, float64(base)/float64(rt))
	}

	fmt.Println("\nMBDS claim 2: database grows with backends (invariant response)")
	fmt.Printf("%-10s %-12s %s\n", "backends", "db scale", "response")
	for _, n := range []int{1, 2, 4, 8} {
		rt := responseTime(n, n)
		fmt.Printf("%-10d %-12dx %v\n", n, n, rt)
	}
}

// responseTime loads a University instance scaled by dbScale into a kernel
// with n backends and measures the simulated response time of one broad
// retrieval.
func responseTime(n, dbScale int) time.Duration {
	sys := mlds.New(mlds.KernelWith(n))
	defer sys.Close()
	db, err := sys.CreateFunctional("university", mlds.UniversityDDL)
	if err != nil {
		log.Fatal(err)
	}
	cfg := mlds.SmallUniversity()
	cfg.Students *= 24 * dbScale
	cfg.Faculty *= 8 * dbScale
	cfg.Courses *= 8 * dbScale
	if _, err := mlds.PopulateUniversity(db, cfg); err != nil {
		log.Fatal(err)
	}
	before := mlds.SimTime(db)
	if _, err := db.ExecABDL("RETRIEVE ((FILE = student) AND (major = 'Computer Science')) (gpa)"); err != nil {
		log.Fatal(err)
	}
	return mlds.SimTime(db) - before
}
