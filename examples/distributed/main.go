// Distributed: runs the paper's hardware configuration on a real network —
// MBDS backends served over TCP on this machine, a controller reaching them
// through the communication bus — loads the University database across the
// cluster, queries it, and round-trips the database through a saved image.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"

	"mlds"
	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/kdb"
	"mlds/internal/mbds"
	"mlds/internal/mbdsnet"
	"mlds/internal/obs"
	"mlds/internal/univgen"
)

func main() {
	const backends = 3
	db, err := univgen.Generate(univgen.SmallConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Start the slaves: one TCP backend server per partition, each with its
	// own share of the database-key space. One shared registry collects
	// every partition's counters for the /metrics endpoint below.
	reg := obs.NewRegistry()
	var execs []mbds.Executor
	for i := 0; i < backends; i++ {
		store := kdb.NewStore(db.AB.Dir.Clone(), kdb.WithStrideIDs(uint64(i+1), backends))
		srv, err := mbdsnet.Listen("127.0.0.1:0", store)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		srv.Instrument(reg, obs.L("backend", strconv.Itoa(i)))
		fmt.Printf("backend %d serving on %s\n", i, srv.Addr())
		rb, err := mbdsnet.Dial(srv.Addr())
		if err != nil {
			log.Fatal(err)
		}
		defer rb.Close()
		execs = append(execs, rb)
	}

	// The ops endpoint: the whole cluster's metrics in Prometheus text
	// format, plus a health check.
	ops, err := mbdsnet.ServeOps("127.0.0.1:0", reg, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer ops.Close()
	fmt.Printf("metrics: curl http://%s/metrics\n", ops.Addr())

	// The master: a controller whose backends live across the bus.
	kcfg := mbds.DefaultConfig(backends)
	kcfg.Metrics = reg
	kcfg.DBName = "university"
	sys, err := mbds.NewWithExecutors(db.AB.Dir, kcfg, execs)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	n, err := db.Load(sys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nloaded %d kernel records across the cluster\n", n)
	fmt.Printf("partition sizes over the bus: %v\n", sys.PartitionSizes())

	res, err := sys.Exec(abdl.NewRetrieve(abdm.And(
		abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("student")},
		abdm.Predicate{Attr: "major", Op: abdm.OpEq, Val: abdm.String("Computer Science")},
	), "major"))
	if err != nil {
		log.Fatal(err)
	}
	keys := map[int64]bool{}
	for _, sr := range res.Records {
		if v, ok := sr.Rec.Get("major"); ok && !v.IsNull() {
			keys[int64(sr.ID)] = true
		}
	}
	fmt.Printf("CS student record copies retrieved from the cluster: %d\n", len(res.Records))

	// What the workload left in the cluster's counters.
	resp, err := http.Get("http://" + ops.Addr() + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Println("\nfrom /metrics:")
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "mlds_server_exec_total") ||
			strings.HasPrefix(line, "mlds_store_records{") {
			fmt.Println("  " + line)
		}
	}

	// Persistence: save the in-process engine's copy and restore it.
	engine := mlds.New(mlds.KernelWith(2))
	defer engine.Close()
	local, err := engine.CreateFunctional("university", mlds.UniversityDDL)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := mlds.PopulateUniversity(local, mlds.SmallUniversity()); err != nil {
		log.Fatal(err)
	}
	var img bytes.Buffer
	if err := mlds.SaveDatabase(local, &img); err != nil {
		log.Fatal(err)
	}
	imgSize := img.Len()
	engine2 := mlds.New(mlds.KernelWith(4))
	defer engine2.Close()
	restored, err := mlds.RestoreDatabase(engine2, &img)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsaved database image: %d bytes; restored %q with %d records on %d backends\n",
		imgSize, restored.Name, restored.Kernel.Len(), restored.Kernel.Backends())
}
