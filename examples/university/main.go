// University: runs the thesis's Chapter VI worked transactions against the
// transformed University database, printing each CODASYL-DML statement, the
// ABDL requests the kernel mapping system generated for it, and the result —
// the translation walkthrough of the thesis, executable.
package main

import (
	"fmt"
	"log"

	"mlds"
)

func main() {
	sys := mlds.New(mlds.DefaultConfig())
	defer sys.Close()
	db, err := sys.CreateFunctional("university", mlds.UniversityDDL)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := mlds.PopulateUniversity(db, mlds.SmallUniversity()); err != nil {
		log.Fatal(err)
	}
	dml, err := sys.OpenDML("university")
	if err != nil {
		log.Fatal(err)
	}

	run := func(title string, stmts ...string) {
		fmt.Printf("\n--- %s ---\n", title)
		for _, s := range stmts {
			out, err := dml.Execute(s)
			if err != nil {
				fmt.Printf("  %s\n    !! aborted: %v\n", s, err)
				continue
			}
			fmt.Printf("  %s\n", s)
			for _, req := range out.DML.Requests {
				fmt.Printf("    -> %s\n", req)
			}
			switch {
			case out.DML.EndOfSet:
				fmt.Printf("    == END-OF-SET\n")
			case len(out.DML.Values) > 0:
				fmt.Printf("    == %s\n", out.Rendered)
			case out.DML.Found:
				fmt.Printf("    == current %s (key %d)\n", out.DML.Record, out.DML.Key)
			}
		}
	}

	// VI.B.1 — FIND ANY: find any course record whose title is 'Advanced
	// Database' (the thesis's example, verbatim).
	run("FIND ANY (VI.B.1)",
		"MOVE 'Advanced Database' TO title IN course",
		"FIND ANY course USING title IN course",
		"GET course",
	)

	// VI.B.4 — FIND FIRST/NEXT: locate students of a faculty's advisor set.
	run("FIND FIRST/NEXT (VI.B.4)",
		"MOVE 'Faculty 000' TO pname IN person",
		"FIND ANY person USING pname IN person",
		"FIND FIRST employee WITHIN person_employee",
		"FIND FIRST faculty WITHIN employee_faculty",
		"FIND FIRST student WITHIN advisor",
		"GET major IN student",
		"FIND NEXT student WITHIN advisor",
		"FIND NEXT student WITHIN advisor",
		"FIND NEXT student WITHIN advisor",
	)

	// VI.B.5 — FIND OWNER: the advisor of a student.
	run("FIND OWNER (VI.B.5)",
		"MOVE 'Student 0001' TO pname IN person",
		"FIND ANY person USING pname IN person",
		"FIND FIRST student WITHIN person_student",
		"FIND OWNER WITHIN advisor",
		"GET rank IN faculty",
	)

	// VI.G — STORE: create a person, then a student record for the same
	// entity (automatic ISA insertion shares the key).
	run("STORE (VI.G)",
		"MOVE 'Harry Coker' TO pname IN person",
		"MOVE 198706001 TO ssn IN person",
		"STORE person",
		"MOVE 'Computer Science' TO major IN student",
		"MOVE 3.8 TO gpa IN student",
		"STORE student",
	)

	// VI.D — CONNECT: give the new student an advisor.
	run("CONNECT (VI.D)",
		"MOVE 'Faculty 001' TO pname IN person",
		"FIND ANY person USING pname IN person",
		"FIND FIRST employee WITHIN person_employee",
		"FIND FIRST faculty WITHIN employee_faculty",
		"MOVE 'Harry Coker' TO pname IN person",
		"FIND ANY person USING pname IN person",
		"FIND FIRST student WITHIN person_student",
		"CONNECT student TO advisor",
		"FIND OWNER WITHIN advisor",
		"GET pname IN person",
	)

	// VI.F — MODIFY: change the course's credits.
	run("MODIFY (VI.F)",
		"MOVE 'Advanced Database' TO title IN course",
		"FIND ANY course USING title IN course",
		"MOVE 5 TO credits IN course",
		"MODIFY credits IN course",
		"GET credits IN course",
	)

	// VI.E — DISCONNECT: remove the student's advisor again.
	run("DISCONNECT (VI.E)",
		"MOVE 'Harry Coker' TO pname IN person",
		"FIND ANY person USING pname IN person",
		"FIND FIRST student WITHIN person_student",
		"DISCONNECT student FROM advisor",
	)

	// VI.H — ERASE: a referenced course aborts; ERASE ALL is not translated.
	run("ERASE constraints (VI.H)",
		"MOVE 'Advanced Database' TO title IN course",
		"FIND ANY course USING title IN course",
		"ERASE course",
		"ERASE ALL course",
	)

	// A PERFORM loop, the thesis's Chapter VI.B.4 shape: list CS students.
	fmt.Println("\n--- PERFORM loop: Computer Science students ---")
	outs, err := dml.RunScript(`
FIND FIRST person WITHIN system_person
PERFORM UNTIL END-OF-SET
    FIND FIRST student WITHIN person_student
    FIND NEXT person WITHIN system_person
END-PERFORM
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  executed %d statements across the loop\n", len(outs))
}
